"""Cross-module integration: full pipelines over the shared fixture."""

import io

import numpy as np
import pytest

from repro.core.correlation import corroborate_events, fuse_timelines
from repro.core.detector import StreamingDetector
from repro.core.pipeline import PassiveOutagePipeline
from repro.eval.confusion import confusion_for_population
from repro.eval.matching import match_events
from repro.net.addr import Family
from repro.telescope.capture import read_batches, write_batches
from repro.telescope.records import ObservationBatch
from repro.telescope.stream import merge_streams, window_stream

DAY = 86400.0


def to_batch(per_block, family=Family.IPV4):
    times = np.concatenate(list(per_block.values()))
    keys = np.concatenate([np.full(t.size, k, dtype=np.uint64)
                           for k, t in per_block.items()])
    order = np.argsort(times)
    return ObservationBatch(family, times[order], keys[order])


class TestCaptureToDetection:
    def test_detection_survives_capture_roundtrip(self, small_internet,
                                                  small_per_block):
        """Writing observations to the wire format and reading them back
        must not change the detector's verdicts."""
        per_block = small_per_block[Family.IPV4]
        batch = to_batch(per_block)
        buffer = io.BytesIO()
        write_batches(buffer, batch)
        buffer.seek(0)
        reloaded, _ = read_batches(buffer)

        pipeline = PassiveOutagePipeline()
        model_direct = pipeline.train_from_batch(
            batch.time_slice(0, DAY), 0, DAY)
        model_reloaded = pipeline.train_from_batch(
            reloaded.time_slice(0, DAY), 0, DAY)
        assert model_direct.measurable_keys == model_reloaded.measurable_keys

        result_direct = pipeline.detect_from_batch(
            model_direct, batch.time_slice(DAY, 2 * DAY), DAY, 2 * DAY)
        result_reloaded = pipeline.detect_from_batch(
            model_reloaded, reloaded.time_slice(DAY, 2 * DAY), DAY, 2 * DAY)
        for key in result_direct.blocks:
            assert result_direct.blocks[key].timeline == \
                result_reloaded.blocks[key].timeline


class TestBatchVsStreaming:
    def test_same_verdicts_for_long_outages(self, small_internet,
                                            small_per_block):
        per_block = small_per_block[Family.IPV4]
        pipeline = PassiveOutagePipeline()
        train = {k: t[t < DAY] for k, t in per_block.items()}
        evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0, DAY)
        batch_result = pipeline.detect(model, evaluate, DAY, 2 * DAY)

        stream = StreamingDetector(Family.IPV4, model.histories,
                                   model.parameters, DAY)
        batch = to_batch(evaluate)
        for observation in batch.to_observations():
            stream.observe(observation)
        stream_result = stream.finalize(2 * DAY)

        agreements = 0
        comparisons = 0
        for key, batch_block in batch_result.blocks.items():
            stream_block = stream_result[key]
            batch_events = batch_block.timeline.events(600.0)
            stream_events = stream_block.timeline.events(600.0)
            matched = match_events(stream_events, batch_events, slack=600.0)
            comparisons += len(batch_events)
            agreements += len(matched.matched)
        if comparisons:
            assert agreements / comparisons > 0.9

    def test_detection_accuracy_vs_truth(self, small_internet,
                                         small_per_block):
        per_block = small_per_block[Family.IPV4]
        pipeline = PassiveOutagePipeline()
        train = {k: t[t < DAY] for k, t in per_block.items()}
        evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0, DAY)
        result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        truths = {p.key: p.truth.clip(DAY, 2 * DAY)
                  for p in small_internet.family_profiles(Family.IPV4)}
        confusion = confusion_for_population(
            {k: b.timeline for k, b in result.blocks.items()}, truths)
        assert confusion.precision > 0.99
        assert confusion.recall > 0.98


class TestMultiVantage:
    def test_split_vantages_fuse_to_one_picture(self, small_internet,
                                                small_per_block):
        """Two vantage points each see a random half of every block's
        queries; fused verdicts should recover what a single full view
        concludes for dense blocks."""
        rng = np.random.default_rng(0)
        per_block = small_per_block[Family.IPV4]
        view_a, view_b = {}, {}
        for key, times in per_block.items():
            mask = rng.random(times.size) < 0.5
            view_a[key] = times[mask]
            view_b[key] = times[~mask]

        pipeline = PassiveOutagePipeline()
        timelines = []
        for view in (view_a, view_b):
            train = {k: t[t < DAY] for k, t in view.items()}
            evaluate = {k: t[t >= DAY] for k, t in view.items()}
            model = pipeline.train(Family.IPV4, train, 0, DAY)
            result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
            timelines.append({k: b.timeline
                              for k, b in result.blocks.items()})

        truths = {p.key: p.truth.clip(DAY, 2 * DAY)
                  for p in small_internet.family_profiles(Family.IPV4)}
        common = set(timelines[0]) & set(timelines[1])
        fused = {key: fuse_timelines([timelines[0][key], timelines[1][key]],
                                     quorum=1)
                 for key in common}
        confusion = confusion_for_population(fused, truths)
        assert confusion.precision > 0.98
        assert confusion.recall > 0.97

    def test_corroboration_over_detected_events(self, small_internet,
                                                small_per_block):
        per_block = small_per_block[Family.IPV4]
        pipeline = PassiveOutagePipeline()
        train = {k: t[t < DAY] for k, t in per_block.items()}
        evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0, DAY)
        result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        events_by_block = {k: b.timeline.events(300.0)
                           for k, b in result.blocks.items()}
        corroborated = corroborate_events(events_by_block, levels=8)
        assert len(corroborated) == sum(
            len(v) for v in events_by_block.values())


class TestIpv6EndToEnd:
    def test_ipv6_detection_matches_truth(self, small_internet,
                                          small_per_block):
        """The full pipeline on /48 keys (48-bit uint64 block keys)."""
        per_block = small_per_block[Family.IPV6]
        assert per_block, "fixture must include IPv6 blocks"
        pipeline = PassiveOutagePipeline()
        train = {k: t[t < DAY] for k, t in per_block.items()}
        evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV6, train, 0, DAY)
        result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        assert result.blocks, "no measurable IPv6 blocks"
        truths = {p.key: p.truth.clip(DAY, 2 * DAY)
                  for p in small_internet.family_profiles(Family.IPV6)}
        confusion = confusion_for_population(
            {k: b.timeline for k, b in result.blocks.items()}, truths)
        assert confusion.precision > 0.98
        assert confusion.recall > 0.97

    def test_ipv6_keys_preserved_through_capture(self, small_per_block):
        per_block = small_per_block[Family.IPV6]
        batch = to_batch(per_block, family=Family.IPV6)
        buffer = io.BytesIO()
        write_batches(buffer, batch)
        buffer.seek(0)
        _, reloaded = read_batches(buffer)
        assert set(np.unique(reloaded.block_keys)) == \
            set(np.unique(batch.block_keys))
        # /48 keys need all 48 bits; make sure we exercise the range.
        assert int(batch.block_keys.max()) > 1 << 44


class TestStreamingWindows:
    def test_window_stream_feeds_detector(self, small_per_block):
        per_block = small_per_block[Family.IPV4]
        pipeline = PassiveOutagePipeline()
        train = {k: t[t < DAY] for k, t in per_block.items()}
        evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0, DAY)

        detector = StreamingDetector(Family.IPV4, model.histories,
                                     model.parameters, DAY)
        batch = to_batch(evaluate)
        rows = batch.to_observations()
        fed = 0
        for _, window_end, observations in window_stream(rows, DAY, 300.0):
            for observation in observations:
                detector.observe(observation)
            detector.advance(window_end)
            fed += len(observations)
        results = detector.finalize(2 * DAY)
        assert fed == len(rows)
        assert len(results) == len(model.measurable_keys)

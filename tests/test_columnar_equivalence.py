"""Scalar-oracle ≡ columnar-engine equivalence pins.

The columnar streaming belief engine (``repro.core.columnar``) batches
every bin close that shares a boundary into one array update.  The
contract is *bit-for-bit* agreement with the scalar
:class:`~repro.core.belief.BeliefState` oracle — not tolerance-close:
numpy evaluates the same float expression identically for array and
scalar operands, so any observed difference is a real divergence (a
reordered operation, a flipped comparison) and must be fixed on the
engine side, never absorbed by widening the oracle.

Pinned here:

* kernel-level ``BeliefState.update`` ≡ ``columnar_update`` under
  hypothesis-generated inputs, including exact-threshold hysteresis
  and degenerate clamped ``p_empty`` (the PR's divergence audit);
* ``bin_log_likelihood_ratio``/``fused_posterior`` ≡ their columnar
  forms;
* whole-detector runs (base and fused) with hot swaps, quarantine,
  and checkpoint kill-and-resume producing byte-identical state;
* scalar↔columnar checkpoint compatibility in both directions,
  including mid-quarantine and pending-swap state;
* ``ParameterPlanner.plan_batch`` ≡ per-block ``plan_block``; and the
  tune-stage timer counting only successful fits.
"""

import copy
import json
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.belief import (
    BeliefState,
    bin_log_likelihood_ratio,
    fused_posterior,
)
from repro.core.checkpoint import detector_from_json, detector_to_json
from repro.core.columnar import (
    columnar_fused_posterior,
    columnar_llr,
    columnar_update,
    history_is_clean,
)
from repro.core.detector import StreamingDetector
from repro.core.history import train_history
from repro.core.parameters import BlockParameters, ParameterPlanner
from repro.core.pipeline import PassiveOutagePipeline
from repro.net.addr import Family
from repro.obs.metrics import MetricsRegistry
from repro.telescope.records import Observation
from repro.traffic.sources import poisson_times, suppress_intervals

DAY = 86400.0

_prob = st.floats(min_value=0.0, max_value=1.0)
_count = st.integers(min_value=0, max_value=50)
_belief = st.floats(min_value=1e-6, max_value=1.0 - 1e-6)


def _params(noise=1e-3, down=0.1, up=0.9, p_empty=0.02):
    return BlockParameters(
        bin_seconds=600.0, p_empty_up=p_empty, noise_nonempty=noise,
        prior_down=0.01, prior_up_recovery=0.05,
        down_threshold=down, up_threshold=up)


def _scalar_update(params, belief, is_up, count, p_empty):
    state = BeliefState(params)
    state.belief = belief
    state.is_up = is_up
    state.update(count, p_empty)
    return state.belief, state.is_up, state.guardrail_trips


class TestKernelEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(belief=_belief, is_up=st.booleans(), count=_count,
           p_empty=st.one_of(_prob, st.sampled_from(
               [0.0, 1.0, 1e-9, 1.0 - 1e-9])),
           noise=st.floats(min_value=1e-9, max_value=0.5))
    def test_update_bitwise(self, belief, is_up, count, p_empty, noise):
        params = _params(noise=noise)
        s_belief, s_up, s_trips = _scalar_update(
            params, belief, is_up, count, p_empty)
        c_belief, c_up, c_trips = columnar_update(
            np.array([belief]), np.array([is_up]),
            np.array([count], dtype=np.int64), np.array([p_empty]),
            np.array([params.noise_nonempty]),
            np.array([params.prior_down]),
            np.array([params.prior_up_recovery]),
            np.array([params.down_threshold]),
            np.array([params.up_threshold]))
        assert float(c_belief[0]) == s_belief
        assert bool(c_up[0]) == s_up
        assert int(c_trips[0]) == s_trips

    @settings(max_examples=200, deadline=None)
    @given(belief=_belief, is_up=st.booleans(), count=_count,
           p_empty=_prob, seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_exact_threshold_hysteresis(self, belief, is_up, count,
                                        p_empty, seed):
        """The divergence audit: re-run the same update with the
        posterior itself installed as the hysteresis threshold, so the
        ``<=``/``>`` (down) and ``>=`` (up) boundary cases fire exactly.
        The scalar branch ``not (belief <= down)`` and the columnar
        ``belief > down`` must flip identically on equality."""
        probe = _params()
        posterior, _, _ = _scalar_update(probe, belief, is_up, count,
                                         p_empty)
        up_of = np.nextafter(posterior, 2.0)
        down_of = np.nextafter(posterior, -1.0)
        cases = [(posterior, up_of), (down_of, posterior)]
        rng = random.Random(seed)
        down_thr, up_thr = cases[rng.randrange(2)]
        params = _params(down=float(down_thr), up=float(up_thr))
        s_belief, s_up, s_trips = _scalar_update(
            params, belief, is_up, count, p_empty)
        c_belief, c_up, c_trips = columnar_update(
            np.array([belief]), np.array([is_up]),
            np.array([count], dtype=np.int64), np.array([p_empty]),
            np.array([params.noise_nonempty]),
            np.array([params.prior_down]),
            np.array([params.prior_up_recovery]),
            np.array([params.down_threshold]),
            np.array([params.up_threshold]))
        assert float(c_belief[0]) == s_belief == posterior
        assert bool(c_up[0]) == s_up
        assert int(c_trips[0]) == s_trips

    @settings(max_examples=200, deadline=None)
    @given(count=_count,
           p_empty=st.floats(min_value=1e-12, max_value=1.0),
           noise=st.floats(min_value=1e-12, max_value=1.0))
    def test_llr_bitwise(self, count, p_empty, noise):
        scalar = bin_log_likelihood_ratio(count, p_empty, noise)
        vector = columnar_llr(np.array([count], dtype=np.int64),
                              np.array([p_empty]), np.array([noise]))
        assert float(vector[0]) == scalar

    @settings(max_examples=200, deadline=None)
    @given(belief=_belief, is_up=st.booleans(),
           llr=st.floats(min_value=-50.0, max_value=50.0))
    def test_fused_posterior_bitwise(self, belief, is_up, llr):
        scalar = fused_posterior(belief, llr, 0.01, 0.05)
        s_up = (not (scalar <= 0.1)) if is_up else (scalar >= 0.9)
        vector, v_up = columnar_fused_posterior(
            np.array([belief]), np.array([is_up]), np.array([llr]),
            np.array([0.01]), np.array([0.05]),
            np.array([0.1]), np.array([0.9]))
        assert float(vector[0]) == scalar
        assert bool(v_up[0]) == s_up


# ---------------------------------------------------------------------------
# whole-detector equivalence
# ---------------------------------------------------------------------------


def _world(seed, blocks=12, outage_frac=0.4):
    """Train histories/parameters over day 1, eval packets over day 2,
    with an outage injected into a fraction of the blocks."""
    rng = np.random.default_rng(seed)
    train, evaluate = {}, {}
    for key in range(1, blocks + 1):
        rate = 0.01 + 0.02 * (key % 5)
        train[key] = poisson_times(rng, rate, 0, DAY)
        times = poisson_times(rng, rate, DAY, 2 * DAY)
        if key <= int(blocks * outage_frac):
            times = suppress_intervals(
                times, [(DAY + 30000.0, DAY + 45000.0)])
        evaluate[key] = times
    histories = {}
    parameters = {}
    planner = ParameterPlanner()
    for key, times in train.items():
        histories[key] = train_history(times, 0, DAY)
    parameters = planner.plan(histories)
    return histories, parameters, evaluate


def _drive(detector, evaluate, seed, swap=None, end=2 * DAY):
    """Interleave observes and advances on a jittered schedule, with an
    optional mid-run hot swap, mirroring how the live engine drives a
    detector."""
    events = sorted(
        (float(t), key) for key, times in evaluate.items() for t in times)
    rng = random.Random(seed)
    i = 0
    t = DAY
    swapped = False
    while t < end:
        t += 450.0
        while i < len(events) and events[i][0] <= t:
            when, key = events[i]
            detector.observe(Observation(when, Family.IPV4, key << 8))
            i += 1
        if swap is not None and not swapped and t >= DAY + 20000.0:
            for key, history, params in swap:
                detector.hot_swap(key, history, params)
            swapped = True
        if rng.random() < 0.8:
            detector.advance(min(t, end))
    detector.advance(end)


def _state_fingerprint(detector):
    return {
        key: (state.belief.belief, state.belief.is_up,
              state.belief.guardrail_trips, state.next_bin_end,
              state.bin_count, state.first_packet_this_bin,
              state.last_packet, tuple(state.transitions))
        for key, state in detector._states.items()
    }


@pytest.fixture(scope="module")
def world():
    return _world(seed=5)


class TestDetectorEquivalence:
    def test_scalar_and_columnar_runs_are_bit_identical(self, world):
        histories, parameters, evaluate = world
        results = {}
        for columnar in (False, True):
            detector = StreamingDetector(Family.IPV4, histories,
                                         parameters, DAY,
                                         columnar=columnar)
            _drive(detector, evaluate, seed=9)
            results[columnar] = (
                _state_fingerprint(detector),
                detector.windows_closed,
                detector_to_json(detector),
                detector.finalize(2 * DAY),
            )
        assert results[False][0] == results[True][0]
        assert results[False][1] == results[True][1]
        assert results[False][2] == results[True][2]
        scalar_final, columnar_final = results[False][3], results[True][3]
        assert sorted(scalar_final) == sorted(columnar_final)
        for key in scalar_final:
            assert (scalar_final[key].timeline.down_intervals
                    == columnar_final[key].timeline.down_intervals)

    def test_hot_swap_boundaries_are_bit_identical(self, world):
        histories, parameters, evaluate = world
        swap_keys = sorted(histories)[:4]
        swap = [(key, histories[key], parameters[key])
                for key in swap_keys if parameters[key].measurable]
        fingerprints = {}
        for columnar in (False, True):
            detector = StreamingDetector(Family.IPV4, histories,
                                         parameters, DAY,
                                         columnar=columnar)
            _drive(detector, evaluate, seed=13, swap=swap)
            fingerprints[columnar] = (_state_fingerprint(detector),
                                      detector_to_json(detector))
        assert fingerprints[False] == fingerprints[True]

    def test_kill_and_resume_is_bit_identical(self, world):
        """Checkpoint mid-run, restore into the *other* engine, finish,
        and compare: scalar↔columnar checkpoints are interchangeable in
        both directions (satellite: checkpoint compatibility)."""
        histories, parameters, evaluate = world
        finals = {}
        for columnar in (False, True):
            detector = StreamingDetector(Family.IPV4, histories,
                                         parameters, DAY,
                                         columnar=columnar)
            _drive(detector, evaluate, seed=21, end=DAY + 40000.0)
            snapshot = detector_to_json(detector)
            resumed = detector_from_json(snapshot, histories, parameters)
            # Cross the engines: a scalar checkpoint resumes columnar
            # and vice versa.
            resumed.columnar = not columnar
            tail = {key: [t for t in times
                          if t > resumed.last_time]
                    for key, times in evaluate.items()}
            _drive(resumed, tail, seed=22)
            finals[columnar] = (snapshot, _state_fingerprint(resumed),
                                detector_to_json(resumed))
        scalar_snapshot, scalar_fp, scalar_final = finals[False]
        columnar_snapshot, columnar_fp, columnar_final = finals[True]
        assert scalar_snapshot == columnar_snapshot
        assert scalar_fp == columnar_fp
        assert scalar_final == columnar_final

    def test_quarantine_and_pending_swap_state_round_trips(self, world):
        """Mid-quarantine and pending-hot-swap state lands identically
        in both engines' checkpoints."""
        shared_histories, parameters, evaluate = world
        documents = {}
        for columnar in (False, True):
            # Each engine gets its own copy: the poison below mutates
            # history objects in place.
            histories = copy.deepcopy(shared_histories)
            detector = StreamingDetector(Family.IPV4, histories,
                                         parameters, DAY,
                                         columnar=columnar)
            _drive(detector, evaluate, seed=31, end=DAY + 30000.0)
            # Poison one block so its next close quarantines it (a
            # diurnal profile routes the NaN summary into the
            # likelihood, which the scalar oracle rejects) ...
            key = max(k for k, s in detector._states.items())
            victim = min(k for k in detector._states if k != key)
            victim_state = detector._states[victim]
            victim_state.history.diurnal_profile = np.ones(24)
            victim_state.history.mean_rate = float("nan")
            detector._invalidate_cohorts()
            detector.advance(DAY + 40000.0)
            assert victim in detector.dead_letters.keys()
            # ... and park a swap that stays PENDING (no bin close
            # between here and the checkpoint).
            detector.hot_swap(key, histories[key], parameters[key])
            documents[columnar] = json.loads(detector_to_json(detector))
        assert documents[False] == documents[True]
        assert documents[True]["pending_swaps"] is not None

    def test_unclean_history_is_excluded_from_cohorts(self, world):
        shared_histories, parameters, _ = world
        histories = copy.deepcopy(shared_histories)
        key = next(k for k in histories if parameters[k].measurable)
        detector = StreamingDetector(Family.IPV4, histories, parameters,
                                     DAY, columnar=True)
        state = detector._states[key]
        assert history_is_clean(state.history)
        state.history.diurnal_profile = np.ones(24)
        state.history.mean_rate = float("nan")
        assert not history_is_clean(state.history)
        detector._invalidate_cohorts()
        detector.advance(DAY + 7200.0)
        # The poisoned member was processed scalar and quarantined with
        # the scalar path's exact dead-letter entry.
        assert key in detector.dead_letters.keys()


# ---------------------------------------------------------------------------
# fused detector equivalence
# ---------------------------------------------------------------------------


class TestFusedEquivalence:
    def test_fused_scalar_and_columnar_runs_are_bit_identical(self):
        from repro.fusion import (
            DarknetSource,
            FusedStreamingDetector,
            MappingSource,
            train_fused,
        )
        from repro.traffic.darknet import DarknetTelescope
        from repro.traffic.internet import (
            FamilyConfig,
            InternetConfig,
            SimulatedInternet,
        )
        from repro.traffic.outages import IPV4_OUTAGE_MODEL

        family = Family.IPV4
        shift = family.bits - family.default_block_prefix
        config = InternetConfig(
            end=140000.0, training_seconds=110000.0, seed=7,
            ipv4=FamilyConfig(n_blocks=12,
                              outage_model=IPV4_OUTAGE_MODEL))
        internet = SimulatedInternet.build(config)
        eval_start, end = config.eval_start, config.end
        dns = MappingSource(
            "dns",
            {p.key: t for p, t in internet.passive_observations(seed=11)},
            family=family)
        darknet = DarknetSource(DarknetTelescope(internet), seed=23)
        model = train_fused([dns, darknet], family, 0.0, eval_start)
        events = []
        for name, adapter in (("dns", dns), ("darknet", darknet)):
            for key, times in adapter.per_block(family, eval_start,
                                                end).items():
                events.extend((float(t), name, key) for t in times)
        events.sort()

        results = {}
        for columnar in (False, True):
            detector = FusedStreamingDetector(model, eval_start,
                                              columnar=columnar)
            rng = random.Random(5)
            i = 0
            t = eval_start
            while t < end:
                t += 700.0
                while i < len(events) and events[i][0] <= t:
                    when, name, key = events[i]
                    detector.observe_from(
                        name, Observation(when, family, key << shift))
                    i += 1
                if rng.random() < 0.8:
                    detector.advance(min(t, end))
            detector.advance(end)
            results[columnar] = (
                _state_fingerprint(detector),
                dict(detector._source_counts),
                {name: (monitor.weight, monitor.gated_bins)
                 for name, monitor in detector.monitors.items()},
                detector.windows_closed,
                detector_to_json(detector),
            )
        assert results[False] == results[True]


# ---------------------------------------------------------------------------
# planner batch ≡ scalar plan
# ---------------------------------------------------------------------------


class TestPlanBatch:
    def test_plan_batch_matches_plan_block(self, world):
        histories, _, _ = world
        planner = ParameterPlanner()
        planned, errors = planner.plan_batch(histories)
        assert not errors
        for key, history in histories.items():
            assert planned[key] == planner.plan_block(history)

    def test_plan_batch_reports_scalar_errors(self, world):
        histories, _, _ = world
        poisoned = dict(histories)
        key = min(histories)
        bad = train_history(
            np.array(sorted(np.random.default_rng(3).uniform(
                0, DAY, 500))), 0, DAY)
        bad.mean_rate = float("nan")
        poisoned[key] = bad
        planner = ParameterPlanner()
        planned, errors = planner.plan_batch(poisoned)
        assert key in errors and key not in planned
        with pytest.raises(type(errors[key])) as caught:
            planner.plan_block(bad)
        assert str(caught.value) == str(errors[key])


class TestTuneTimer:
    def test_tune_timer_counts_only_successful_fits(self):
        """Satellite pin: ``tune_block_seconds`` must observe one
        sample per *successful* fit — blocks whose fit raised used to
        leak into the histogram and drag its quantiles down."""
        rng = np.random.default_rng(11)
        per_block = {key << 8: poisson_times(rng, 0.05, 0.0, DAY)
                     for key in range(1, 7)}
        registry = MetricsRegistry()
        pipeline = PassiveOutagePipeline(metrics=registry)
        model = pipeline.train(Family.IPV4, per_block, 0.0, DAY)
        tune = model.health.stage("tune")
        ((_, histogram),) = registry.get("tune_block_seconds").series()
        assert histogram.count == tune.succeeded
        assert tune.succeeded == len(model.parameters)

    def test_tune_timer_skips_failed_fits(self, world):
        histories, _, _ = world
        poisoned = dict(histories)
        key = min(histories)
        bad = train_history(
            np.array(sorted(np.random.default_rng(7).uniform(
                0, DAY, 400))), 0, DAY)
        bad.max_gap = float("nan")
        poisoned[key] = bad
        registry = MetricsRegistry()
        timer = registry.histogram(
            "tune_block_seconds",
            "Wall-time of one block's parameter fit (tuning)")
        planner = ParameterPlanner()
        planned, errors = planner.plan_batch(poisoned)
        assert key in errors
        # Mirror the pipeline's accounting: one amortised observation
        # per success, none for the failure.
        for _ in planned:
            timer.observe(0.001)
        ((_, histogram),) = registry.get("tune_block_seconds").series()
        assert histogram.count == len(planned)
        assert histogram.count == len(poisoned) - 1

"""Second-weighted confusion matrices."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.confusion import (
    Confusion,
    confusion_for_block,
    confusion_for_population,
)
from repro.timeline import Timeline


class TestConfusion:
    def test_metrics(self):
        confusion = Confusion(ta=900, fa=10, fo=40, to=50)
        assert confusion.precision == pytest.approx(900 / 910)
        assert confusion.recall == pytest.approx(900 / 940)
        assert confusion.tnr == pytest.approx(50 / 60)
        assert confusion.outage_precision == pytest.approx(50 / 90)
        assert confusion.accuracy == pytest.approx(950 / 1000)
        assert confusion.total == 1000

    def test_empty_is_safe(self):
        confusion = Confusion()
        assert confusion.precision == 0.0
        assert confusion.recall == 0.0
        assert confusion.tnr == 0.0
        assert confusion.accuracy == 0.0

    def test_addition(self):
        total = Confusion(1, 2, 3, 4) + Confusion(10, 20, 30, 40)
        assert total.as_tuple() == (11, 22, 33, 44)
        accumulator = Confusion()
        accumulator += Confusion(1, 1, 1, 1)
        assert accumulator.total == 4

    def test_paper_table1_metrics(self):
        """The published Table 1 cells yield the published metrics."""
        confusion = Confusion(ta=52525765695, fa=2471178,
                              fo=78163261, to=13147965)
        assert confusion.precision == pytest.approx(0.9999, abs=5e-4)
        assert confusion.recall == pytest.approx(0.9985, abs=5e-4)
        assert confusion.tnr == pytest.approx(0.84178, abs=5e-4)


class TestConfusionForBlock:
    def test_perfect_agreement(self):
        timeline = Timeline(0, 1000, [(100, 300)])
        confusion = confusion_for_block(timeline, timeline)
        assert confusion.as_tuple() == (800, 0, 0, 200)

    def test_all_four_cells(self):
        observed = Timeline(0, 1000, [(100, 300)])
        truth = Timeline(0, 1000, [(200, 400)])
        confusion = confusion_for_block(observed, truth)
        assert confusion.to == 100   # [200, 300)
        assert confusion.fo == 100   # [100, 200): we down, truth up
        assert confusion.fa == 100   # [300, 400): truth down, we up
        assert confusion.ta == 700

    def test_cells_sum_to_span(self):
        observed = Timeline(0, 500, [(10, 60), (400, 450)])
        truth = Timeline(0, 500, [(30, 90)])
        confusion = confusion_for_block(observed, truth)
        assert confusion.total == pytest.approx(500)

    def test_clipping_to_overlap(self):
        observed = Timeline(0, 1000, [(100, 200)])
        truth = Timeline(500, 1500, [(600, 700)])
        confusion = confusion_for_block(observed, truth)
        assert confusion.total == pytest.approx(500)  # [500, 1000)
        assert confusion.fa == pytest.approx(100)

    def test_disjoint_spans(self):
        observed = Timeline(0, 100)
        truth = Timeline(200, 300)
        assert confusion_for_block(observed, truth).total == 0


class TestPopulation:
    def test_intersection_of_keys(self):
        observed = {1: Timeline(0, 100), 2: Timeline(0, 100)}
        truth = {2: Timeline(0, 100, [(0, 50)]), 3: Timeline(0, 100)}
        confusion = confusion_for_population(observed, truth)
        assert confusion.total == pytest.approx(100)
        assert confusion.fa == pytest.approx(50)

    def test_explicit_keys(self):
        observed = {1: Timeline(0, 100), 2: Timeline(0, 100)}
        truth = {1: Timeline(0, 100), 2: Timeline(0, 100)}
        confusion = confusion_for_population(observed, truth, keys=[1])
        assert confusion.total == pytest.approx(100)


_intervals = st.lists(
    st.tuples(st.floats(0, 1000, allow_nan=False),
              st.floats(0, 1000, allow_nan=False)).map(
        lambda pair: (min(pair), max(pair))), max_size=10)


@given(_intervals, _intervals)
def test_cells_partition_span_property(a, b):
    observed = Timeline(0, 1000, a)
    truth = Timeline(0, 1000, b)
    confusion = confusion_for_block(observed, truth)
    assert confusion.total == pytest.approx(1000)
    assert confusion.ta + confusion.fo == pytest.approx(truth.up_seconds())
    assert confusion.to + confusion.fa == pytest.approx(truth.down_seconds())
    assert confusion.ta + confusion.fa == pytest.approx(
        observed.up_seconds())


@given(_intervals)
def test_self_comparison_is_perfect(a):
    timeline = Timeline(0, 1000, a)
    confusion = confusion_for_block(timeline, timeline)
    assert confusion.fa == pytest.approx(0)
    assert confusion.fo == pytest.approx(0)

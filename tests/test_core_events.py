"""Event extraction and exact-timestamp refinement."""

import numpy as np
import pytest

from repro.core.events import (
    RefinementConfig,
    gap_outages,
    refine_timeline,
    states_to_timeline,
)
from repro.telescope.aggregate import BinGrid
from repro.timeline import Timeline


class TestStatesToTimeline:
    def test_all_up(self):
        grid = BinGrid(0, 1000, 100)
        timeline = states_to_timeline(np.ones(10, dtype=bool), grid)
        assert timeline.down_seconds() == 0

    def test_down_run(self):
        grid = BinGrid(0, 1000, 100)
        states = np.ones(10, dtype=bool)
        states[3:6] = False
        timeline = states_to_timeline(states, grid)
        assert timeline.down_intervals == [(300.0, 600.0)]

    def test_down_at_end(self):
        grid = BinGrid(0, 1000, 100)
        states = np.ones(10, dtype=bool)
        states[8:] = False
        timeline = states_to_timeline(states, grid)
        assert timeline.down_intervals == [(800.0, 1000.0)]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            states_to_timeline(np.ones(5, dtype=bool), BinGrid(0, 1000, 100))


class TestRefinement:
    def test_start_snaps_to_last_packet(self):
        # Dense block: packets every ~10 s until 342 s, detector flags
        # the 400-500 bin (sic: first fully-empty bin is 400).
        times = np.arange(0.0, 343.0, 10.0)
        coarse = Timeline(0, 1000, [(400.0, 700.0)])
        refined = refine_timeline(coarse, times, mean_rate=0.1,
                                  bin_seconds=100.0)
        start = refined.down_intervals[0][0]
        assert 340.0 <= start <= 400.0

    def test_end_snaps_to_first_packet(self):
        times = np.concatenate([np.arange(0.0, 343.0, 10.0),
                                np.arange(675.0, 1000.0, 10.0)])
        coarse = Timeline(0, 1000, [(400.0, 700.0)])
        refined = refine_timeline(coarse, times, 0.1, 100.0)
        end = refined.down_intervals[0][1]
        # first packet after = 675, minus one mean gap (10)
        assert 660.0 <= end <= 676.0

    def test_backfill_clamped_for_sparse(self):
        # Sparse block: last packet long before the outage bin; the start
        # must not be pulled arbitrarily far back.
        times = np.array([100.0, 5000.0])
        coarse = Timeline(0, 20000, [(12000.0, 16000.0)])
        refined = refine_timeline(coarse, times, 1 / 4000.0, 4000.0,
                                  RefinementConfig(max_backfill_bins=1.0))
        start = refined.down_intervals[0][0]
        assert start >= 12000.0 - 4000.0

    def test_no_packets_keeps_coarse_edges(self):
        coarse = Timeline(0, 1000, [(400.0, 700.0)])
        refined = refine_timeline(coarse, np.empty(0), 0.0, 100.0)
        assert refined.down_intervals == [(400.0, 700.0)]

    def test_min_event_filter(self):
        coarse = Timeline(0, 1000, [(400.0, 500.0)])
        config = RefinementConfig(min_event_seconds=200.0)
        refined = refine_timeline(coarse, np.empty(0), 0.0, 100.0, config)
        assert refined.events() == []


class TestGapOutages:
    def test_detects_large_gap_with_exact_edges(self):
        times = np.concatenate([np.arange(0.0, 1000.0, 10.0),
                                np.arange(2000.0, 3000.0, 10.0)])
        intervals = gap_outages(times, gap_threshold=500.0, start=0,
                                end=3000, guard=10.0)
        assert len(intervals) == 1
        start, end = intervals[0]
        assert start == pytest.approx(1000.0, abs=11.0)
        assert end == pytest.approx(1990.0, abs=11.0)

    def test_ignores_normal_gaps(self):
        times = np.arange(0.0, 1000.0, 10.0)
        assert gap_outages(times, 500.0, 0, 1000, 10.0) == []

    def test_leading_and_trailing_gaps(self):
        times = np.array([600.0, 610.0])
        intervals = gap_outages(times, 500.0, 0, 2000, 5.0)
        assert len(intervals) == 2
        assert intervals[0][0] == 0.0
        assert intervals[1][1] == 2000.0

    def test_empty_times_whole_window(self):
        assert gap_outages(np.empty(0), 500.0, 0, 1000, 5.0) == [(0, 1000)]
        assert gap_outages(np.empty(0), 1500.0, 0, 1000, 5.0) == []

    def test_disabled_threshold(self):
        times = np.array([0.0, 1e6])
        assert gap_outages(times, float("inf"), 0, 2e6, 5.0) == []
        assert gap_outages(times, 0.0, 0, 2e6, 5.0) == []

    def test_window_filtering(self):
        times = np.array([-50.0, 100.0, 5000.0])
        intervals = gap_outages(times, 1000.0, 0, 6000, 5.0)
        assert len(intervals) == 1
        assert intervals[0][0] == pytest.approx(105.0)

"""Unit tests for the dependency-free metrics registry."""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    NULL_REGISTRY,
    SNAPSHOT_FORMAT,
    MetricsRegistry,
    get_registry,
    log_spaced_buckets,
    render_snapshot,
    resolve_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("hits_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_refused(self):
        counter = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_integer_counts_stay_integers(self):
        counter = MetricsRegistry().counter("hits_total")
        counter.inc(3)
        assert isinstance(counter.value, int)


class TestGauge:
    def test_moves_both_directions(self):
        gauge = MetricsRegistry().gauge("occupancy")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 8

    def test_set_to_max_is_a_high_watermark(self):
        gauge = MetricsRegistry().gauge("peak")
        gauge.set_to_max(5)
        gauge.set_to_max(3)
        assert gauge.value == 5
        gauge.set_to_max(9)
        assert gauge.value == 9


class TestHistogram:
    def test_le_bucket_semantics(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.1)    # lands in le=0.1 exactly
        histogram.observe(0.5)    # le=1
        histogram.observe(50.0)   # +Inf overflow
        assert histogram._default().bucket_counts() == [1, 1, 0, 1]
        assert histogram._default().cumulative_counts() == [1, 2, 2, 3]

    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("x", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.0):
            histogram.observe(value)
        child = histogram._default()
        assert child.count == 3
        assert child.sum == pytest.approx(3.0)
        assert child.mean == pytest.approx(1.0)
        assert child.minimum == 0.5
        assert child.maximum == 1.5

    def test_quantiles_clamped_to_observed_range(self):
        histogram = MetricsRegistry().histogram("x", buckets=(1.0, 10.0))
        for _ in range(100):
            histogram.observe(2.0)
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        assert histogram.quantile(0.99) <= 2.0
        assert histogram.quantile(0.0) >= 2.0 - 1e-12

    def test_empty_quantile_is_nan(self):
        histogram = MetricsRegistry().histogram("x")
        assert math.isnan(histogram.quantile(0.5))

    def test_timer_context_manager_observes(self):
        histogram = MetricsRegistry().histogram("x")
        with histogram.time():
            pass
        child = histogram._default()
        assert child.count == 1
        assert child.sum >= 0.0

    def test_default_buckets_span_microseconds_to_kiloseconds(self):
        assert DEFAULT_SECONDS_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_SECONDS_BUCKETS[-1] >= 1e3

    def test_log_spaced_buckets_monotone(self):
        bounds = log_spaced_buckets(1e-3, 10.0, 4)
        assert list(bounds) == sorted(bounds)
        assert len(bounds) == len(set(bounds))

    def test_bad_bucket_spec_rejected(self):
        with pytest.raises(ValueError):
            log_spaced_buckets(0.0, 1.0)
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("x", buckets=(1.0, 1.0))

    def test_nan_observation_counts_without_poisoning(self):
        # A NaN sample must not land in the lowest bucket (NaN compares
        # false against every bound, and bisect would misroute it) and
        # must not poison sum/min/max; it still counts, so "how many
        # observations" stays truthful.
        histogram = MetricsRegistry().histogram("x", buckets=(1.0, 2.0))
        histogram.observe(1.5)
        histogram.observe(float("nan"))
        child = histogram._default()
        assert child.count == 2
        assert child.bucket_counts() == [0, 1, 1]  # NaN -> +Inf bucket
        assert child.sum == pytest.approx(1.5)
        assert child.minimum == 1.5
        assert child.maximum == 1.5

    def test_infinite_observation_lands_in_overflow(self):
        histogram = MetricsRegistry().histogram("x", buckets=(1.0,))
        histogram.observe(float("inf"))
        child = histogram._default()
        assert child.bucket_counts() == [0, 1]
        assert child.count == 1


class TestLabels:
    def test_children_are_independent(self):
        family = MetricsRegistry().counter("events_total",
                                           labelnames=("kind",))
        family.labels(kind="up").inc(2)
        family.labels(kind="down").inc(5)
        assert family.labels(kind="up").value == 2
        assert family.labels(kind="down").value == 5

    def test_wrong_label_names_rejected(self):
        family = MetricsRegistry().counter("events_total",
                                           labelnames=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(direction="up")

    def test_unlabelled_proxy_refused_on_labelled_family(self):
        family = MetricsRegistry().counter("events_total",
                                           labelnames=("kind",))
        with pytest.raises(ValueError, match="address a child"):
            family.inc()


class TestRegistration:
    def test_same_registration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("runs_total", "help one")
        second = registry.counter("runs_total", "help two")
        assert first is second
        assert first.help == "help one"

    def test_conflicting_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_conflicting_labels_raise(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_get_and_families_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zebra_total")
        registry.gauge("aardvark")
        assert [f.name for f in registry.families()] == ["aardvark",
                                                         "zebra_total"]
        assert registry.get("zebra_total").kind == "counter"
        assert registry.get("missing") is None


def build_reference_registry():
    registry = MetricsRegistry()
    registry.counter("runs_total", "Total runs").inc(7)
    events = registry.counter("events_total", "Events by kind",
                              labelnames=("kind",))
    events.labels(kind="up").inc(2)
    events.labels(kind="down").inc(3)
    registry.gauge("occupancy", "Current occupancy").set(4)
    latency = registry.histogram("latency_seconds", "Latency",
                                 buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        latency.observe(value)
    return registry


class TestSnapshotRestore:
    def test_snapshot_is_deterministic(self):
        first = build_reference_registry().snapshot()
        second = build_reference_registry().snapshot()
        assert first == second
        assert first["format"] == SNAPSHOT_FORMAT

    def test_restore_round_trips_bit_for_bit(self):
        source = build_reference_registry()
        # Through JSON text, exactly as a checkpoint would carry it.
        document = json.loads(source.to_json())
        target = MetricsRegistry()
        target.restore(document)
        assert target.snapshot() == source.snapshot()
        assert target.to_json() == source.to_json()

    def test_restore_preserves_integer_counters(self):
        source = MetricsRegistry()
        source.counter("n_total").inc(41)
        target = MetricsRegistry()
        target.restore(json.loads(source.to_json()))
        value = target.get("n_total").value
        assert value == 41 and isinstance(value, int)

    def test_restore_overwrites_existing_values(self):
        source = build_reference_registry()
        target = MetricsRegistry()
        target.counter("runs_total").inc(100)
        target.restore(source.snapshot())
        assert target.get("runs_total").value == 7

    def test_restore_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="snapshot"):
            MetricsRegistry().restore({"format": "something-else"})

    def test_restore_rejects_bucket_mismatch(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = source.snapshot()
        snapshot["metrics"][0]["buckets"] = [1.0, 2.0, 3.0]
        with pytest.raises(ValueError, match="buckets"):
            MetricsRegistry().restore(snapshot)

    def test_merge_snapshot_adds_counters_and_histograms(self):
        # The parallel pipeline's fold-in path: worker snapshots merge
        # additively into the parent instead of overwriting it.
        parent = MetricsRegistry()
        parent.counter("n_total").inc(2)
        parent.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry()
        worker.counter("n_total").inc(3)
        worker.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        worker.histogram("h", buckets=(1.0, 2.0)).observe(5.0)
        parent.merge_snapshot(json.loads(worker.to_json()))
        value = parent.get("n_total").value
        assert value == 5 and isinstance(value, int)
        child = parent.get("h")._default()
        assert child.count == 3
        assert child.bucket_counts() == [1, 1, 1]
        assert child.sum == pytest.approx(7.0)
        assert child.minimum == 0.5
        assert child.maximum == 5.0

    def test_merge_snapshot_registers_missing_families(self):
        worker = MetricsRegistry()
        worker.counter("only_in_worker_total",
                       labelnames=("stage",)).labels(stage="a").inc(4)
        worker.gauge("g").set(7.0)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        family = parent.get("only_in_worker_total")
        assert family.labels(stage="a").value == 4
        assert parent.get("g").value == 7.0

    def test_merge_snapshot_gauges_keep_the_maximum(self):
        # Gauges are levels, not totals: two workers' peak occupancy
        # merges as the larger peak, not the sum.
        parent = MetricsRegistry()
        parent.gauge("g").set(10.0)
        low = MetricsRegistry()
        low.gauge("g").set(3.0)
        parent.merge_snapshot(low.snapshot())
        assert parent.get("g").value == 10.0

    def test_merge_snapshot_is_associative_over_workers(self):
        def worker(n):
            registry = MetricsRegistry()
            registry.counter("n_total").inc(n)
            registry.histogram("h", buckets=(1.0,)).observe(float(n))
            return registry.snapshot()

        one = MetricsRegistry()
        for snap in (worker(1), worker(2), worker(3)):
            one.merge_snapshot(snap)
        other = MetricsRegistry()
        for snap in (worker(3), worker(1), worker(2)):
            other.merge_snapshot(snap)
        assert one.snapshot() == other.snapshot()

    def test_merge_snapshot_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="snapshot"):
            MetricsRegistry().merge_snapshot({"format": "bogus"})

    def test_null_registry_merge_snapshot_is_inert(self):
        NULL_REGISTRY.merge_snapshot(build_reference_registry().snapshot())
        assert NULL_REGISTRY.families() == []

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x_total").inc()
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        with NULL_REGISTRY.histogram("h").time():
            pass
        assert NULL_REGISTRY.counter("x_total").value == 0
        assert NULL_REGISTRY.snapshot() == {"format": SNAPSHOT_FORMAT,
                                            "metrics": []}
        assert NULL_REGISTRY.to_prometheus() == ""
        assert NULL_REGISTRY.get("x_total") is None

    def test_labels_chain_to_noop(self):
        child = NULL_REGISTRY.counter("x_total",
                                      labelnames=("a",)).labels(a="b")
        child.inc(10)
        assert child.value == 0


class TestGlobalRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_set_and_restore(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
            assert resolve_registry(None) is registry
            other = MetricsRegistry()
            assert resolve_registry(other) is other
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_set_none_resets_to_null(self):
        previous = set_registry(MetricsRegistry())
        set_registry(None)
        assert get_registry() is NULL_REGISTRY
        set_registry(previous)


class TestRenderSnapshot:
    def test_renders_tables(self):
        text = render_snapshot(build_reference_registry().snapshot())
        assert "counters and gauges" in text
        assert "stage latency (histograms)" in text
        assert 'events_total{kind="down"}' in text
        assert "runs_total" in text
        assert "latency_seconds" in text
        # The gauge is marked so operators don't read it as cumulative.
        assert "(gauge)" in text

    def test_empty_snapshot(self):
        text = render_snapshot({"format": SNAPSHOT_FORMAT, "metrics": []})
        assert "empty" in text

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError, match="snapshot"):
            render_snapshot({"format": "nope"})

"""Unit tests for the dependency-free metrics registry."""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    NULL_REGISTRY,
    SNAPSHOT_FORMAT,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    log_spaced_buckets,
    negate_snapshot,
    render_snapshot,
    resolve_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("hits_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_refused(self):
        counter = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_integer_counts_stay_integers(self):
        counter = MetricsRegistry().counter("hits_total")
        counter.inc(3)
        assert isinstance(counter.value, int)


class TestGauge:
    def test_moves_both_directions(self):
        gauge = MetricsRegistry().gauge("occupancy")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 8

    def test_set_to_max_is_a_high_watermark(self):
        gauge = MetricsRegistry().gauge("peak")
        gauge.set_to_max(5)
        gauge.set_to_max(3)
        assert gauge.value == 5
        gauge.set_to_max(9)
        assert gauge.value == 9


class TestHistogram:
    def test_le_bucket_semantics(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.1)    # lands in le=0.1 exactly
        histogram.observe(0.5)    # le=1
        histogram.observe(50.0)   # +Inf overflow
        assert histogram._default().bucket_counts() == [1, 1, 0, 1]
        assert histogram._default().cumulative_counts() == [1, 2, 2, 3]

    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("x", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.0):
            histogram.observe(value)
        child = histogram._default()
        assert child.count == 3
        assert child.sum == pytest.approx(3.0)
        assert child.mean == pytest.approx(1.0)
        assert child.minimum == 0.5
        assert child.maximum == 1.5

    def test_quantiles_clamped_to_observed_range(self):
        histogram = MetricsRegistry().histogram("x", buckets=(1.0, 10.0))
        for _ in range(100):
            histogram.observe(2.0)
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        assert histogram.quantile(0.99) <= 2.0
        assert histogram.quantile(0.0) >= 2.0 - 1e-12

    def test_empty_quantile_is_nan(self):
        histogram = MetricsRegistry().histogram("x")
        assert math.isnan(histogram.quantile(0.5))

    def test_timer_context_manager_observes(self):
        histogram = MetricsRegistry().histogram("x")
        with histogram.time():
            pass
        child = histogram._default()
        assert child.count == 1
        assert child.sum >= 0.0

    def test_default_buckets_span_microseconds_to_kiloseconds(self):
        assert DEFAULT_SECONDS_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_SECONDS_BUCKETS[-1] >= 1e3

    def test_log_spaced_buckets_monotone(self):
        bounds = log_spaced_buckets(1e-3, 10.0, 4)
        assert list(bounds) == sorted(bounds)
        assert len(bounds) == len(set(bounds))

    def test_bad_bucket_spec_rejected(self):
        with pytest.raises(ValueError):
            log_spaced_buckets(0.0, 1.0)
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("x", buckets=(1.0, 1.0))

    def test_nan_observation_counts_without_poisoning(self):
        # A NaN sample must not land in the lowest bucket (NaN compares
        # false against every bound, and bisect would misroute it) and
        # must not poison sum/min/max; it still counts, so "how many
        # observations" stays truthful.
        histogram = MetricsRegistry().histogram("x", buckets=(1.0, 2.0))
        histogram.observe(1.5)
        histogram.observe(float("nan"))
        child = histogram._default()
        assert child.count == 2
        assert child.bucket_counts() == [0, 1, 1]  # NaN -> +Inf bucket
        assert child.sum == pytest.approx(1.5)
        assert child.minimum == 1.5
        assert child.maximum == 1.5

    def test_infinite_observation_lands_in_overflow(self):
        histogram = MetricsRegistry().histogram("x", buckets=(1.0,))
        histogram.observe(float("inf"))
        child = histogram._default()
        assert child.bucket_counts() == [0, 1]
        assert child.count == 1


class TestLabels:
    def test_children_are_independent(self):
        family = MetricsRegistry().counter("events_total",
                                           labelnames=("kind",))
        family.labels(kind="up").inc(2)
        family.labels(kind="down").inc(5)
        assert family.labels(kind="up").value == 2
        assert family.labels(kind="down").value == 5

    def test_wrong_label_names_rejected(self):
        family = MetricsRegistry().counter("events_total",
                                           labelnames=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(direction="up")

    def test_unlabelled_proxy_refused_on_labelled_family(self):
        family = MetricsRegistry().counter("events_total",
                                           labelnames=("kind",))
        with pytest.raises(ValueError, match="address a child"):
            family.inc()


class TestRegistration:
    def test_same_registration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("runs_total", "help one")
        second = registry.counter("runs_total", "help two")
        assert first is second
        assert first.help == "help one"

    def test_conflicting_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_conflicting_labels_raise(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_get_and_families_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zebra_total")
        registry.gauge("aardvark")
        assert [f.name for f in registry.families()] == ["aardvark",
                                                         "zebra_total"]
        assert registry.get("zebra_total").kind == "counter"
        assert registry.get("missing") is None


def build_reference_registry():
    registry = MetricsRegistry()
    registry.counter("runs_total", "Total runs").inc(7)
    events = registry.counter("events_total", "Events by kind",
                              labelnames=("kind",))
    events.labels(kind="up").inc(2)
    events.labels(kind="down").inc(3)
    registry.gauge("occupancy", "Current occupancy").set(4)
    latency = registry.histogram("latency_seconds", "Latency",
                                 buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        latency.observe(value)
    return registry


class TestSnapshotRestore:
    def test_snapshot_is_deterministic(self):
        first = build_reference_registry().snapshot()
        second = build_reference_registry().snapshot()
        assert first == second
        assert first["format"] == SNAPSHOT_FORMAT

    def test_restore_round_trips_bit_for_bit(self):
        source = build_reference_registry()
        # Through JSON text, exactly as a checkpoint would carry it.
        document = json.loads(source.to_json())
        target = MetricsRegistry()
        target.restore(document)
        assert target.snapshot() == source.snapshot()
        assert target.to_json() == source.to_json()

    def test_restore_preserves_integer_counters(self):
        source = MetricsRegistry()
        source.counter("n_total").inc(41)
        target = MetricsRegistry()
        target.restore(json.loads(source.to_json()))
        value = target.get("n_total").value
        assert value == 41 and isinstance(value, int)

    def test_restore_overwrites_existing_values(self):
        source = build_reference_registry()
        target = MetricsRegistry()
        target.counter("runs_total").inc(100)
        target.restore(source.snapshot())
        assert target.get("runs_total").value == 7

    def test_restore_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="snapshot"):
            MetricsRegistry().restore({"format": "something-else"})

    def test_restore_rejects_bucket_mismatch(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = source.snapshot()
        snapshot["metrics"][0]["buckets"] = [1.0, 2.0, 3.0]
        with pytest.raises(ValueError, match="buckets"):
            MetricsRegistry().restore(snapshot)

    def test_merge_snapshot_adds_counters_and_histograms(self):
        # The parallel pipeline's fold-in path: worker snapshots merge
        # additively into the parent instead of overwriting it.
        parent = MetricsRegistry()
        parent.counter("n_total").inc(2)
        parent.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry()
        worker.counter("n_total").inc(3)
        worker.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        worker.histogram("h", buckets=(1.0, 2.0)).observe(5.0)
        parent.merge_snapshot(json.loads(worker.to_json()))
        value = parent.get("n_total").value
        assert value == 5 and isinstance(value, int)
        child = parent.get("h")._default()
        assert child.count == 3
        assert child.bucket_counts() == [1, 1, 1]
        assert child.sum == pytest.approx(7.0)
        assert child.minimum == 0.5
        assert child.maximum == 5.0

    def test_merge_snapshot_registers_missing_families(self):
        worker = MetricsRegistry()
        worker.counter("only_in_worker_total",
                       labelnames=("stage",)).labels(stage="a").inc(4)
        worker.gauge("g").set(7.0)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        family = parent.get("only_in_worker_total")
        assert family.labels(stage="a").value == 4
        assert parent.get("g").value == 7.0

    def test_merge_snapshot_gauges_keep_the_maximum(self):
        # Gauges are levels, not totals: two workers' peak occupancy
        # merges as the larger peak, not the sum.
        parent = MetricsRegistry()
        parent.gauge("g").set(10.0)
        low = MetricsRegistry()
        low.gauge("g").set(3.0)
        parent.merge_snapshot(low.snapshot())
        assert parent.get("g").value == 10.0

    def test_merge_snapshot_is_associative_over_workers(self):
        def worker(n):
            registry = MetricsRegistry()
            registry.counter("n_total").inc(n)
            registry.histogram("h", buckets=(1.0,)).observe(float(n))
            return registry.snapshot()

        one = MetricsRegistry()
        for snap in (worker(1), worker(2), worker(3)):
            one.merge_snapshot(snap)
        other = MetricsRegistry()
        for snap in (worker(3), worker(1), worker(2)):
            other.merge_snapshot(snap)
        assert one.snapshot() == other.snapshot()

    def test_merge_snapshot_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="snapshot"):
            MetricsRegistry().merge_snapshot({"format": "bogus"})

    def test_null_registry_merge_snapshot_is_inert(self):
        NULL_REGISTRY.merge_snapshot(build_reference_registry().snapshot())
        assert NULL_REGISTRY.families() == []

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x_total").inc()
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        with NULL_REGISTRY.histogram("h").time():
            pass
        assert NULL_REGISTRY.counter("x_total").value == 0
        assert NULL_REGISTRY.snapshot() == {"format": SNAPSHOT_FORMAT,
                                            "metrics": []}
        assert NULL_REGISTRY.to_prometheus() == ""
        assert NULL_REGISTRY.get("x_total") is None

    def test_labels_chain_to_noop(self):
        child = NULL_REGISTRY.counter("x_total",
                                      labelnames=("a",)).labels(a="b")
        child.inc(10)
        assert child.value == 0


class TestGlobalRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_set_and_restore(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
            assert resolve_registry(None) is registry
            other = MetricsRegistry()
            assert resolve_registry(other) is other
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_set_none_resets_to_null(self):
        previous = set_registry(MetricsRegistry())
        set_registry(None)
        assert get_registry() is NULL_REGISTRY
        set_registry(previous)


class TestRenderSnapshot:
    def test_renders_tables(self):
        text = render_snapshot(build_reference_registry().snapshot())
        assert "counters and gauges" in text
        assert "stage latency (histograms)" in text
        assert 'events_total{kind="down"}' in text
        assert "runs_total" in text
        assert "latency_seconds" in text
        # The gauge is marked so operators don't read it as cumulative.
        assert "(gauge)" in text

    def test_empty_snapshot(self):
        text = render_snapshot({"format": SNAPSHOT_FORMAT, "metrics": []})
        assert "empty" in text

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError, match="snapshot"):
            render_snapshot({"format": "nope"})


class TestGaugeMergePolicy:
    """Per-gauge merge policy: "max" (default watermark) vs "last"."""

    def test_default_policy_is_max(self):
        registry = MetricsRegistry()
        assert registry.gauge("peak").merge == "max"

    def test_max_policy_pins_the_high_watermark(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.gauge("peak").set(9)
        worker.gauge("peak").set(4)
        parent.merge_snapshot(worker.snapshot())
        assert parent.value("peak") == 9

    def test_last_policy_lets_the_delivered_value_win(self):
        # Freshness gauges (watermark lag) must *fall* when a worker
        # catches up; a max fold would pin them at their worst-ever
        # reading forever.
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.gauge("lag_seconds", merge="last").set(120.0)
        worker.gauge("lag_seconds", merge="last").set(3.0)
        parent.merge_snapshot(worker.snapshot())
        assert parent.value("lag_seconds") == 3.0

    def test_policy_travels_inside_the_snapshot(self):
        # A parent that first learns about the family from the wire
        # must still fold it per the declared policy.
        worker = MetricsRegistry()
        worker.gauge("lag_seconds", merge="last").set(50.0)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        assert parent.get("lag_seconds").merge == "last"
        worker.gauge("lag_seconds").set(2.0)
        parent.merge_snapshot(worker.snapshot())
        assert parent.value("lag_seconds") == 2.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="merge policy"):
            MetricsRegistry().gauge("bad", merge="average")

    def test_conflicting_policy_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("lag_seconds", merge="last")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("lag_seconds", merge="max")


class TestSnapshotArithmetic:
    """diff/negate: the heartbeat-delta encoding and its rollback."""

    def build(self, hits=0, lag=0.0, observations=()):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", labelnames=("kind",))
        counter.labels(kind="exact").inc(hits)
        registry.gauge("lag_seconds", merge="last").set(lag)
        histogram = registry.histogram("latency_seconds",
                                       buckets=(0.1, 1.0))
        for value in observations:
            histogram.observe(value)
        return registry

    def test_none_previous_ships_the_full_snapshot(self):
        snapshot = self.build(hits=3).snapshot()
        assert diff_snapshots(snapshot, None) == snapshot

    def test_counters_and_histograms_subtract(self):
        registry = self.build(hits=3, observations=(0.05, 0.5))
        before = registry.snapshot()
        registry.get("hits_total").labels(kind="exact").inc(4)
        registry.get("latency_seconds").observe(5.0)
        delta = diff_snapshots(registry.snapshot(), before)
        by_name = {entry["name"]: entry for entry in delta["metrics"]}
        assert by_name["hits_total"]["series"][0]["value"] == 4
        assert by_name["latency_seconds"]["series"][0]["count"] == 1

    def test_unchanged_series_are_dropped(self):
        registry = self.build(hits=3, observations=(0.5,))
        before = registry.snapshot()
        delta = diff_snapshots(registry.snapshot(), before)
        # Only the gauge survives (last-value readings always ship).
        assert [entry["name"] for entry in delta["metrics"]] \
            == ["lag_seconds"]

    def test_telescoping_deltas_reproduce_the_full_fold(self):
        # Folding every delta d_i = s_i - s_{i-1} must land the parent
        # bit-for-bit where folding the final full snapshot would —
        # the incremental aggregation plane's core identity.
        worker = self.build()
        parent_deltas, baseline = MetricsRegistry(), None
        for step in range(1, 4):
            worker.get("hits_total").labels(kind="exact").inc(step)
            worker.get("lag_seconds").set(100.0 / step)
            worker.get("latency_seconds").observe(0.01 * step)
            current = worker.snapshot()
            parent_deltas.merge_snapshot(diff_snapshots(current, baseline))
            baseline = current
        parent_full = MetricsRegistry()
        parent_full.merge_snapshot(worker.snapshot())
        assert parent_deltas.snapshot() == parent_full.snapshot()

    def test_negate_retracts_a_merged_snapshot(self):
        worker = self.build(hits=5, lag=9.0, observations=(0.05, 5.0))
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        parent.merge_snapshot(negate_snapshot(worker.snapshot()))
        assert parent.value("hits_total", kind="exact") == 0
        entry = [e for e in parent.snapshot()["metrics"]
                 if e["name"] == "latency_seconds"][0]
        assert entry["series"][0]["count"] == 0
        assert not any(entry["series"][0]["bucket_counts"])
        # Gauges are not retracted: a last-value reading cannot be
        # "un-observed"; the next heartbeat refreshes it.
        assert parent.value("lag_seconds") == 9.0

    def test_restart_rollback_does_not_double_count(self):
        # The supervisor's restart sequence in miniature: fold two
        # deltas, retract the incarnation's shadow, then fold the
        # restarted worker's full first delta — counts match a clean
        # single-incarnation run exactly.
        worker = self.build()
        parent, shadow, baseline = MetricsRegistry(), MetricsRegistry(), None
        for _ in range(2):
            worker.get("hits_total").labels(kind="exact").inc(2)
            current = worker.snapshot()
            delta = diff_snapshots(current, baseline)
            parent.merge_snapshot(delta)
            shadow.merge_snapshot(delta)
            baseline = current
        # The worker dies; the checkpoint held only the first increment.
        parent.merge_snapshot(negate_snapshot(shadow.snapshot()))
        restarted = self.build(hits=2)  # restored from the checkpoint
        restarted.get("hits_total").labels(kind="exact").inc(2)
        parent.merge_snapshot(diff_snapshots(restarted.snapshot(), None))
        assert parent.value("hits_total", kind="exact") == 4

    def test_diff_rejects_wrong_format(self):
        good = MetricsRegistry().snapshot()
        with pytest.raises(ValueError, match="snapshot"):
            diff_snapshots({"format": "nope"}, None)
        with pytest.raises(ValueError, match="snapshot"):
            diff_snapshots(good, {"format": "nope"})
        with pytest.raises(ValueError, match="snapshot"):
            negate_snapshot({"format": "nope"})


class TestConcurrentExposition:
    def test_exposition_during_label_child_creation(self):
        # A scrape must never crash or emit a torn line while worker
        # threads are minting new label children mid-render.
        registry = MetricsRegistry()
        family = registry.counter("events_total", labelnames=("kind",))
        stop = threading.Event()
        errors = []

        def mint(prefix):
            try:
                for index in range(500):
                    if stop.is_set():
                        break
                    family.labels(kind=f"{prefix}{index}").inc()
            except Exception as error:  # pragma: no cover — the assert
                errors.append(error)

        workers = [threading.Thread(target=mint, args=(chr(97 + i),))
                   for i in range(4)]
        for worker in workers:
            worker.start()
        try:
            rendered = [registry.to_prometheus() for _ in range(20)]
        finally:
            stop.set()
            for worker in workers:
                worker.join()
        assert not errors
        for text in rendered:
            for line in text.splitlines():
                if line.startswith("#"):
                    continue
                name, value = line.rsplit(" ", 1)
                assert name.startswith("events_total")
                float(value)  # every sample line is complete
        final = registry.to_prometheus()
        assert final.count('kind="') == sum(
            len(family.series()) for family in [registry.get("events_total")])

"""Bootstrap intervals and block drill-down rendering."""

import numpy as np
import pytest

from repro.core.detector import PassiveDetector
from repro.core.history import train_histories
from repro.core.parameters import ParameterPlanner
from repro.eval.bootstrap import MetricInterval, bootstrap_confusion
from repro.eval.drilldown import drilldown, render_belief_strip
from repro.net.addr import Family
from repro.timeline import Timeline
from repro.traffic.sources import poisson_times, suppress_intervals

DAY = 86400.0


class TestBootstrap:
    def make_population(self, n_blocks=40, seed=0):
        rng = np.random.default_rng(seed)
        observed, truth = {}, {}
        for key in range(n_blocks):
            has_outage = rng.random() < 0.4
            if has_outage:
                start = rng.uniform(0, DAY - 4000)
                interval = (start, start + rng.uniform(600, 3600))
                truth[key] = Timeline(0, DAY, [interval])
                # observed detects with small edge error
                jitter = rng.normal(0, 60, 2)
                observed[key] = Timeline(
                    0, DAY, [(interval[0] + jitter[0],
                              interval[1] + jitter[1])])
            else:
                truth[key] = Timeline(0, DAY)
                observed[key] = Timeline(0, DAY)
        return observed, truth

    def test_point_estimates_inside_intervals(self):
        observed, truth = self.make_population()
        intervals = bootstrap_confusion(observed, truth, replicates=200)
        for interval in intervals.values():
            assert interval.low <= interval.estimate <= interval.high
            assert 0.0 <= interval.low <= interval.high <= 1.0

    def test_perfect_detector_degenerate_interval(self):
        truth = {k: Timeline(0, DAY, [(1000.0 * (k + 1), 1000.0 * (k + 1)
                                       + 500)])
                 for k in range(10)}
        intervals = bootstrap_confusion(truth, truth, replicates=100)
        assert intervals["precision"].estimate == 1.0
        assert intervals["precision"].low == 1.0
        assert intervals["tnr"].estimate == 1.0

    def test_deterministic_given_seed(self):
        observed, truth = self.make_population()
        a = bootstrap_confusion(observed, truth, replicates=50, seed=3)
        b = bootstrap_confusion(observed, truth, replicates=50, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confusion({}, {}, replicates=10)
        observed, truth = self.make_population(n_blocks=5)
        with pytest.raises(ValueError):
            bootstrap_confusion(observed, truth, confidence=1.5)

    def test_interval_str_and_contains(self):
        interval = MetricInterval(0.9, 0.85, 0.95, 0.95)
        assert "0.9000" in str(interval)
        assert interval.contains(0.9)
        assert not interval.contains(0.5)


class TestDrilldown:
    @pytest.fixture(scope="class")
    def block_result(self):
        rng = np.random.default_rng(9)
        outage = (DAY + 30000.0, DAY + 36000.0)
        train = {5: poisson_times(rng, 0.1, 0, DAY)}
        evaluate = {5: suppress_intervals(
            poisson_times(rng, 0.1, DAY, 2 * DAY), [outage])}
        histories = train_histories(train, 0, DAY)
        parameters = ParameterPlanner().plan(histories)
        detector = PassiveDetector(keep_belief_traces=True)
        results = detector.detect(Family.IPV4, evaluate, histories,
                                  parameters, DAY, 2 * DAY)
        return results[5], evaluate[5]

    def test_render_belief_strip(self):
        beliefs = np.ones(300)
        beliefs[100:120] = 0.0
        strip = render_belief_strip(beliefs, width=60)
        assert len(strip) == 60
        assert " " in strip       # the outage shows as the DOWN glyph
        assert strip[0] == "@"    # healthy start pinned UP

    def test_strip_preserves_short_dips(self):
        beliefs = np.ones(1000)
        beliefs[500] = 0.0  # single-bin dip must survive downsampling
        assert " " in render_belief_strip(beliefs, width=50)

    def test_strip_empty(self):
        assert render_belief_strip(np.empty(0)) == ""

    def test_drilldown_text(self, block_result):
        result, times = block_result
        report = drilldown(result, DAY, 2 * DAY, times)
        text = str(report)
        assert f"block {result.key:#x}" in text
        assert "trained:" in text and "tuned:" in text
        assert "belief" in text
        assert "arrivals" in text
        assert "outage event" in text

    def test_drilldown_without_extras(self, block_result):
        result, _ = block_result
        bare = drilldown(
            type(result)(key=result.key, family=result.family,
                         params=result.params, history=result.history,
                         timeline=result.timeline,
                         coarse_timeline=result.coarse_timeline),
            DAY, 2 * DAY)
        assert "belief" not in str(bare)

"""Longest-prefix-match trie."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import Address, Family
from repro.net.blocks import Block
from repro.net.trie import PrefixTrie


@pytest.fixture
def trie():
    t = PrefixTrie(Family.IPV4)
    t.insert(Block.parse("192.0.0.0/16"), "coarse")
    t.insert(Block.parse("192.0.2.0/24"), "fine")
    t.insert(Block.parse("10.0.0.0/8"), "ten")
    return t


class TestLookup:
    def test_longest_prefix_wins(self, trie):
        value, matched = trie.lookup(Address.parse("192.0.2.9"))
        assert value == "fine"
        assert str(matched) == "192.0.2.0/24"

    def test_falls_back_to_shorter(self, trie):
        value, matched = trie.lookup(Address.parse("192.0.9.9"))
        assert value == "coarse"
        assert matched.prefix_len == 16

    def test_miss(self, trie):
        assert trie.lookup(Address.parse("8.8.8.8")) is None

    def test_family_mismatch_rejected(self, trie):
        with pytest.raises(ValueError):
            trie.lookup(Address.parse("::1"))

    def test_default_route(self):
        t = PrefixTrie(Family.IPV4)
        t.insert(Block.parse("0.0.0.0/0"), "default")
        value, matched = t.lookup(Address.parse("203.0.113.1"))
        assert value == "default"
        assert matched.prefix_len == 0


class TestMutation:
    def test_len_counts_prefixes(self, trie):
        assert len(trie) == 3

    def test_insert_replaces(self, trie):
        trie.insert(Block.parse("192.0.2.0/24"), "fine2")
        assert trie.get(Block.parse("192.0.2.0/24")) == "fine2"
        assert len(trie) == 3

    def test_remove(self, trie):
        assert trie.remove(Block.parse("192.0.2.0/24"))
        assert trie.get(Block.parse("192.0.2.0/24")) is None
        # lookup now falls through to the /16
        value, _ = trie.lookup(Address.parse("192.0.2.9"))
        assert value == "coarse"
        assert len(trie) == 2

    def test_remove_absent(self, trie):
        assert not trie.remove(Block.parse("172.16.0.0/12"))
        assert len(trie) == 3

    def test_remove_does_not_break_descendants(self):
        t = PrefixTrie(Family.IPV4)
        t.insert(Block.parse("192.0.0.0/16"), "outer")
        t.insert(Block.parse("192.0.2.0/24"), "inner")
        assert t.remove(Block.parse("192.0.0.0/16"))
        assert t.get(Block.parse("192.0.2.0/24")) == "inner"

    def test_items_enumerates_all(self, trie):
        found = {str(block): value for block, value in trie.items()}
        assert found == {"192.0.0.0/16": "coarse",
                         "192.0.2.0/24": "fine",
                         "10.0.0.0/8": "ten"}


@given(st.dictionaries(
    st.integers(min_value=0, max_value=(1 << 24) - 1),
    st.integers(), min_size=1, max_size=50),
    st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_matches_reference_at_fixed_length(table, probe_value):
    """At a single prefix length, LPM degenerates to exact dict lookup."""
    trie = PrefixTrie(Family.IPV4)
    for prefix, value in table.items():
        trie.insert(Block(Family.IPV4, prefix, 24), value)
    assert len(trie) == len(table)
    probe = Address(Family.IPV4, probe_value)
    expected = table.get(probe_value >> 8)
    result = trie.lookup(probe)
    if expected is None:
        assert result is None
    else:
        assert result[0] == expected

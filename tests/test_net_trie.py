"""Longest-prefix-match trie."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import Address, Family
from repro.net.blocks import Block
from repro.net.trie import PrefixTrie


@pytest.fixture
def trie():
    t = PrefixTrie(Family.IPV4)
    t.insert(Block.parse("192.0.0.0/16"), "coarse")
    t.insert(Block.parse("192.0.2.0/24"), "fine")
    t.insert(Block.parse("10.0.0.0/8"), "ten")
    return t


class TestLookup:
    def test_longest_prefix_wins(self, trie):
        value, matched = trie.lookup(Address.parse("192.0.2.9"))
        assert value == "fine"
        assert str(matched) == "192.0.2.0/24"

    def test_falls_back_to_shorter(self, trie):
        value, matched = trie.lookup(Address.parse("192.0.9.9"))
        assert value == "coarse"
        assert matched.prefix_len == 16

    def test_miss(self, trie):
        assert trie.lookup(Address.parse("8.8.8.8")) is None

    def test_family_mismatch_rejected(self, trie):
        with pytest.raises(ValueError):
            trie.lookup(Address.parse("::1"))

    def test_default_route(self):
        t = PrefixTrie(Family.IPV4)
        t.insert(Block.parse("0.0.0.0/0"), "default")
        value, matched = t.lookup(Address.parse("203.0.113.1"))
        assert value == "default"
        assert matched.prefix_len == 0


class TestMutation:
    def test_len_counts_prefixes(self, trie):
        assert len(trie) == 3

    def test_insert_replaces(self, trie):
        trie.insert(Block.parse("192.0.2.0/24"), "fine2")
        assert trie.get(Block.parse("192.0.2.0/24")) == "fine2"
        assert len(trie) == 3

    def test_remove(self, trie):
        assert trie.remove(Block.parse("192.0.2.0/24"))
        assert trie.get(Block.parse("192.0.2.0/24")) is None
        # lookup now falls through to the /16
        value, _ = trie.lookup(Address.parse("192.0.2.9"))
        assert value == "coarse"
        assert len(trie) == 2

    def test_remove_absent(self, trie):
        assert not trie.remove(Block.parse("172.16.0.0/12"))
        assert len(trie) == 3

    def test_remove_does_not_break_descendants(self):
        t = PrefixTrie(Family.IPV4)
        t.insert(Block.parse("192.0.0.0/16"), "outer")
        t.insert(Block.parse("192.0.2.0/24"), "inner")
        assert t.remove(Block.parse("192.0.0.0/16"))
        assert t.get(Block.parse("192.0.2.0/24")) == "inner"

    def test_items_enumerates_all(self, trie):
        found = {str(block): value for block, value in trie.items()}
        assert found == {"192.0.0.0/16": "coarse",
                         "192.0.2.0/24": "fine",
                         "10.0.0.0/8": "ten"}


@given(st.dictionaries(
    st.integers(min_value=0, max_value=(1 << 24) - 1),
    st.integers(), min_size=1, max_size=50),
    st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_matches_reference_at_fixed_length(table, probe_value):
    """At a single prefix length, LPM degenerates to exact dict lookup."""
    trie = PrefixTrie(Family.IPV4)
    for prefix, value in table.items():
        trie.insert(Block(Family.IPV4, prefix, 24), value)
    assert len(trie) == len(table)
    probe = Address(Family.IPV4, probe_value)
    expected = table.get(probe_value >> 8)
    result = trie.lookup(probe)
    if expected is None:
        assert result is None
    else:
        assert result[0] == expected


class TestFrozenSnapshots:
    """Copy-on-write publication: the serving plane's read path."""

    def test_frozen_view_ignores_later_mutation(self, trie):
        view = trie.frozen()
        trie.insert(Block.parse("172.16.0.0/12"), "new")
        trie.remove(Block.parse("192.0.2.0/24"))
        trie.insert(Block.parse("10.0.0.0/8"), "ten2")
        # The live trie moved on...
        assert trie.get(Block.parse("172.16.0.0/12")) == "new"
        assert trie.get(Block.parse("192.0.2.0/24")) is None
        assert trie.get(Block.parse("10.0.0.0/8")) == "ten2"
        # ...the snapshot did not.
        assert view.get(Block.parse("172.16.0.0/12")) is None
        assert view.get(Block.parse("192.0.2.0/24")) == "fine"
        assert view.get(Block.parse("10.0.0.0/8")) == "ten"
        assert len(view) == 3

    def test_each_freeze_is_an_independent_epoch(self):
        trie = PrefixTrie(Family.IPV4)
        views = []
        for i in range(5):
            trie.insert(Block(Family.IPV4, i, 24), i)
            views.append(trie.frozen())
        for i, view in enumerate(views):
            assert len(view) == i + 1
            assert sorted(value for _, value in view.items()) == list(
                range(i + 1))

    def test_frozen_lookup_matches_live(self, trie):
        view = trie.frozen()
        for address in ("192.0.2.9", "192.0.9.9", "10.1.2.3", "8.8.8.8"):
            assert view.lookup(Address.parse(address)) == trie.lookup(
                Address.parse(address))

    def test_covered_subtree(self, trie):
        view = trie.frozen()
        inside = {str(block): value
                  for block, value in view.covered(
                      Block.parse("192.0.0.0/16"))}
        assert inside == {"192.0.0.0/16": "coarse",
                          "192.0.2.0/24": "fine"}
        assert list(view.covered(Block.parse("172.16.0.0/12"))) == []

    def test_frozen_rejects_family_mixups(self, trie):
        view = trie.frozen()
        with pytest.raises(ValueError):
            view.lookup(Address.parse("::1"))

    def test_concurrent_readers_see_consistent_epochs(self):
        """Readers race a mutating writer; every view stays bit-stable.

        This is the plane's exact sharing pattern: the publisher keeps
        inserting into the live trie and re-freezing, while query
        threads hold whatever snapshot they last picked up.  A reader
        must always see exactly the prefixes its epoch was frozen with,
        no matter what the writer does meanwhile.
        """
        import threading

        trie = PrefixTrie(Family.IPV4)
        epochs = []  # (expected key set, frozen view)
        keys = list(range(64))
        for key in keys[:8]:
            trie.insert(Block(Family.IPV4, key, 24), key)
        epochs.append((frozenset(keys[:8]), trie.frozen()))
        errors = []
        done = threading.Event()

        def read_forever():
            while not done.is_set():
                expected, view = epochs[len(epochs) - 1]
                seen = {value for _, value in view.items()}
                if seen != expected:
                    errors.append((expected, seen))
                    return
                for key in expected:
                    if view.get(Block(Family.IPV4, key, 24)) != key:
                        errors.append(("get", key))
                        return

        readers = [threading.Thread(target=read_forever) for _ in range(4)]
        for reader in readers:
            reader.start()
        try:
            for step in range(8, 64):
                trie.insert(Block(Family.IPV4, keys[step], 24), keys[step])
                if step % 2:
                    trie.remove(Block(Family.IPV4, keys[step - 8], 24))
                    current = set(epochs[-1][0] | {keys[step]})
                    current.discard(keys[step - 8])
                else:
                    current = set(epochs[-1][0] | {keys[step]})
                epochs.append((frozenset(current), trie.frozen()))
        finally:
            done.set()
            for reader in readers:
                reader.join(timeout=10)
        assert not errors, errors[:3]
        # And the retired epochs are still intact afterwards.
        for expected, view in epochs:
            assert {value for _, value in view.items()} == expected

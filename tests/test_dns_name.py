"""DNS name encoding, decoding, and compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.name import ROOT, DnsError, Name


class TestNameBasics:
    def test_root(self):
        assert str(ROOT) == "."
        assert len(ROOT) == 0
        assert Name.parse(".") == ROOT
        assert Name.parse("") == ROOT

    def test_parse_and_str(self):
        name = Name.parse("www.example.com")
        assert len(name) == 3
        assert str(name) == "www.example.com."

    def test_case_insensitive_equality(self):
        assert Name.parse("WWW.Example.COM") == Name.parse("www.example.com")
        assert hash(Name.parse("ABC")) == hash(Name.parse("abc"))

    def test_tld_and_parent(self):
        name = Name.parse("www.example.com")
        assert name.tld == b"com"
        assert name.parent() == Name.parse("example.com")
        assert ROOT.parent() == ROOT
        assert ROOT.tld is None

    def test_subdomain(self):
        assert Name.parse("a.b.com").is_subdomain_of(Name.parse("b.com"))
        assert Name.parse("a.b.com").is_subdomain_of(ROOT)
        assert not Name.parse("b.com").is_subdomain_of(Name.parse("a.b.com"))
        assert not Name.parse("xb.com").is_subdomain_of(Name.parse("b.com"))

    def test_label_length_limit(self):
        with pytest.raises(DnsError):
            Name((b"x" * 64,))

    def test_name_length_limit(self):
        labels = tuple(b"x" * 60 for _ in range(5))
        with pytest.raises(DnsError):
            Name(labels)


class TestWire:
    def encode(self, name, compression=None):
        buffer = bytearray()
        name.encode(buffer, compression)
        return bytes(buffer)

    def test_encode_root(self):
        assert self.encode(ROOT) == b"\x00"

    def test_encode_simple(self):
        assert self.encode(Name.parse("ab.c")) == b"\x02ab\x01c\x00"

    def test_roundtrip(self):
        name = Name.parse("www.example.com")
        wire = self.encode(name)
        decoded, offset = Name.decode(wire, 0)
        assert decoded == name
        assert offset == len(wire)

    def test_compression_emits_pointer(self):
        compression = {}
        buffer = bytearray()
        Name.parse("example.com").encode(buffer, compression)
        first_len = len(buffer)
        Name.parse("www.example.com").encode(buffer, compression)
        # Second name should be: 3www + 2-byte pointer = 6 bytes.
        assert len(buffer) - first_len == 6
        decoded, _ = Name.decode(bytes(buffer), first_len)
        assert decoded == Name.parse("www.example.com")

    def test_decode_rejects_pointer_loop(self):
        # Pointer at offset 2 pointing to offset 0, which points to 2...
        wire = b"\xc0\x02\xc0\x00"
        with pytest.raises(DnsError):
            Name.decode(wire, 2)

    def test_decode_rejects_forward_pointer(self):
        wire = b"\xc0\x02\x00"
        with pytest.raises(DnsError):
            Name.decode(wire, 0)

    def test_decode_rejects_truncation(self):
        with pytest.raises(DnsError):
            Name.decode(b"\x05ab", 0)
        with pytest.raises(DnsError):
            Name.decode(b"", 0)
        with pytest.raises(DnsError):
            Name.decode(b"\xc0", 0)  # half a pointer

    def test_decode_rejects_reserved_label_type(self):
        with pytest.raises(DnsError):
            Name.decode(b"\x80x\x00", 0)


_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                 min_size=1, max_size=20)


@given(st.lists(_label, min_size=0, max_size=6))
def test_wire_roundtrip_property(labels):
    name = Name(tuple(label.encode() for label in labels))
    buffer = bytearray(b"junkhdr")  # nonzero starting offset
    name.encode(buffer, None)
    decoded, offset = Name.decode(bytes(buffer), 7)
    assert decoded == name
    assert offset == len(buffer)


@given(st.lists(_label, min_size=1, max_size=4), st.lists(_label, min_size=0, max_size=2))
def test_compressed_roundtrip_property(suffix, prefix):
    base = Name(tuple(label.encode() for label in suffix))
    longer = Name(tuple(label.encode() for label in prefix) + base.labels)
    compression = {}
    buffer = bytearray()
    base.encode(buffer, compression)
    start = len(buffer)
    longer.encode(buffer, compression)
    decoded, end = Name.decode(bytes(buffer), start)
    assert decoded == longer
    assert end == len(buffer)

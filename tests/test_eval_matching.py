"""Event matching and event-counted confusion."""

import pytest

from repro.eval.matching import (
    event_confusion,
    event_confusion_for_population,
    match_events,
)
from repro.timeline import OutageEvent, Timeline


class TestMatchEvents:
    def test_exact_match(self):
        events = [OutageEvent(100, 200)]
        result = match_events(events, events)
        assert len(result.matched) == 1
        assert result.precision == 1.0 and result.recall == 1.0

    def test_slack_allows_offset(self):
        detected = [OutageEvent(100, 200)]
        truth = [OutageEvent(250, 350)]
        assert not match_events(detected, truth, slack=0).matched
        assert match_events(detected, truth, slack=100).matched

    def test_one_detection_cannot_serve_two(self):
        detected = [OutageEvent(100, 500)]
        truth = [OutageEvent(100, 200), OutageEvent(400, 500)]
        result = match_events(detected, truth)
        assert len(result.matched) == 1
        assert len(result.unmatched_truth) == 1

    def test_unmatched_both_sides(self):
        result = match_events([OutageEvent(0, 10)], [OutageEvent(500, 510)])
        assert result.unmatched_detected == [OutageEvent(0, 10)]
        assert result.unmatched_truth == [OutageEvent(500, 510)]
        assert result.precision == 0.0 and result.recall == 0.0

    def test_start_errors(self):
        result = match_events([OutageEvent(110, 220)],
                              [OutageEvent(100, 200)])
        assert result.start_errors() == [pytest.approx(10)]

    def test_empty_inputs(self):
        result = match_events([], [])
        assert result.precision == 0.0
        assert result.recall == 0.0


class TestEventConfusion:
    def test_perfect_day_one_availability_event(self):
        timeline = Timeline(0, 86400)
        confusion = event_confusion(timeline, timeline)
        assert confusion.as_tuple() == (1, 0, 0, 0)

    def test_matched_outage(self):
        observed = Timeline(0, 86400, [(10000, 10500)])
        truth = Timeline(0, 86400, [(10060, 10460)])
        confusion = event_confusion(observed, truth)
        assert confusion.to == 1
        assert confusion.fa == 0 and confusion.fo == 0
        assert confusion.ta == 2  # the segments before and after

    def test_missed_outage_is_false_availability(self):
        observed = Timeline(0, 86400)
        truth = Timeline(0, 86400, [(10000, 10500)])
        confusion = event_confusion(observed, truth)
        assert confusion.fa == 1
        assert confusion.to == 0

    def test_spurious_outage_is_false_outage(self):
        observed = Timeline(0, 86400, [(10000, 10500)])
        truth = Timeline(0, 86400)
        confusion = event_confusion(observed, truth)
        assert confusion.fo == 1

    def test_min_event_floor(self):
        observed = Timeline(0, 86400, [(100, 200)])
        truth = Timeline(0, 86400, [(120, 190)])
        strict = event_confusion(observed, truth, min_event_seconds=300)
        assert strict.to == 0 and strict.fo == 0 and strict.fa == 0

    def test_population_sums_common_blocks(self):
        observed = {1: Timeline(0, 100), 2: Timeline(0, 100)}
        truth = {1: Timeline(0, 100), 9: Timeline(0, 100)}
        confusion = event_confusion_for_population(observed, truth)
        assert confusion.ta == 1

    def test_paper_table3_metrics(self):
        """The published Table 3 cells yield the published metrics."""
        from repro.eval.confusion import Confusion
        confusion = Confusion(ta=4445, fa=105, fo=257, to=290)
        assert confusion.precision == pytest.approx(0.97692, abs=1e-4)
        assert confusion.recall == pytest.approx(0.9453, abs=1e-3)
        assert confusion.tnr == pytest.approx(0.7341, abs=1e-3)

"""Unit tests for streaming-detector checkpoint/restore."""

import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointFormatError,
    detector_from_json,
    detector_to_json,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.detector import StreamingDetector
from repro.core.events import RefinementConfig
from repro.core.history import train_histories
from repro.core.parameters import ParameterPlanner
from repro.core.pipeline import TrainedModel
from repro.core.sentinel import VantageSentinel
from repro.net.addr import Family
from repro.obs.metrics import MetricsRegistry
from repro.telescope.records import Observation
from repro.traffic.sources import poisson_times

DAY = 86400.0


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(3)
    train = {1: poisson_times(rng, 0.2, 0, DAY),
             2: poisson_times(rng, 0.05, 0, DAY)}
    histories = train_histories(train, 0, DAY)
    parameters = ParameterPlanner().plan(histories)
    return TrainedModel(Family.IPV4, histories, parameters, 0.0, DAY)


def make_detector(model, **kwargs):
    return StreamingDetector(model.family, model.histories,
                             model.parameters, DAY, **kwargs)


class TestRoundTrip:
    def test_fresh_detector_roundtrips(self, model):
        detector = make_detector(model)
        restored = detector_from_json(detector_to_json(detector),
                                      model.histories, model.parameters)
        assert restored.family is detector.family
        assert restored.last_time == detector.last_time
        assert detector_to_json(restored) == detector_to_json(detector)

    def test_mid_stream_state_roundtrips_exactly(self, model):
        detector = make_detector(
            model, refinement=RefinementConfig(guard_gaps=2.0),
            sentinel=VantageSentinel(DAY))
        rng = np.random.default_rng(8)
        for time in np.sort(rng.uniform(DAY, DAY + 20000.0, 2000)):
            detector.observe(Observation(float(time), Family.IPV4, 1 << 8))
        detector.advance(DAY + 25000.0)
        text = detector_to_json(detector)
        restored = detector_from_json(text, model.histories,
                                      model.parameters)
        assert detector_to_json(restored) == text
        assert restored.refinement == detector.refinement
        assert restored.sentinel is not None

    def test_save_and_load_paths(self, model, tmp_path):
        detector = make_detector(model)
        path = tmp_path / "ckpt.json"
        save_checkpoint(detector, path)
        restored = load_checkpoint(path, model)
        assert detector_to_json(restored) == detector_to_json(detector)


class TestValidation:
    def test_rejects_future_format(self, model):
        detector = make_detector(model)
        document = json.loads(detector_to_json(detector))
        document["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        with pytest.raises(CheckpointFormatError, match="format version"):
            detector_from_json(json.dumps(document), model.histories,
                               model.parameters)

    def test_rejects_non_json(self, model):
        with pytest.raises(CheckpointFormatError, match="not valid JSON"):
            detector_from_json("not json{", model.histories,
                               model.parameters)

    def test_rejects_unknown_block(self, model):
        detector = make_detector(model)
        document = json.loads(detector_to_json(detector))
        document["blocks"]["999"] = next(iter(
            document["blocks"].values()))
        with pytest.raises(CheckpointFormatError, match="not a measurable"):
            detector_from_json(json.dumps(document), model.histories,
                               model.parameters)

    def test_rejects_family_mismatch(self, model, tmp_path):
        detector = make_detector(model)
        path = tmp_path / "ckpt.json"
        save_checkpoint(detector, path)
        wrong = TrainedModel(Family.IPV6, model.histories,
                             model.parameters, 0.0, DAY)
        with pytest.raises(CheckpointFormatError, match="family"):
            load_checkpoint(path, wrong)

    def test_model_may_gain_blocks(self, model):
        # A block added to the model after the checkpoint starts fresh.
        detector = make_detector(model)
        document = json.loads(detector_to_json(detector))
        removed = sorted(document["blocks"])[0]
        del document["blocks"][removed]
        restored = detector_from_json(json.dumps(document),
                                      model.histories, model.parameters)
        assert int(removed) in restored._states


def counter_values(registry):
    """Every counter series' value, keyed by name + label values."""
    values = {}
    for family in registry.families():
        if family.kind != "counter":
            continue
        for labelvalues, child in family.series():
            values[(family.name, labelvalues)] = child.value
    return values


def feed(detector, seed, start, seconds, n=1500):
    rng = np.random.default_rng(seed)
    for time in np.sort(rng.uniform(start, start + seconds, n)):
        detector.observe(Observation(float(time), Family.IPV4, 1 << 8))
    detector.advance(start + seconds)


class TestTelemetryCheckpoint:
    def test_metrics_key_absent_without_telemetry(self, model):
        document = json.loads(detector_to_json(make_detector(model)))
        assert "metrics" not in document

    def test_metrics_key_present_with_telemetry(self, model):
        detector = make_detector(model, metrics=MetricsRegistry())
        document = json.loads(detector_to_json(detector))
        assert document["metrics"]["format"] == "repro-metrics-v1"

    def test_counters_survive_kill_and_resume_bit_for_bit(self, model):
        detector = make_detector(model, metrics=MetricsRegistry())
        feed(detector, 11, DAY, 20000.0)
        text = detector_to_json(detector)  # the "kill": only JSON survives

        fresh = MetricsRegistry()
        restored = detector_from_json(text, model.histories,
                                      model.parameters, metrics=fresh)
        before = counter_values(detector.metrics)
        after = counter_values(fresh)
        assert before  # the run actually counted something
        for key, value in before.items():
            assert after[key] == value, key
        assert restored.metrics is fresh

    def test_resumed_counters_continue_monotonically(self, model):
        detector = make_detector(model, metrics=MetricsRegistry())
        feed(detector, 11, DAY, 20000.0)
        before = counter_values(detector.metrics)
        restored = detector_from_json(detector_to_json(detector),
                                      model.histories, model.parameters,
                                      metrics=MetricsRegistry())
        feed(restored, 12, DAY + 25000.0, 20000.0)
        after = counter_values(restored.metrics)
        for key, value in before.items():
            assert after[key] >= value, key
        assert (after[("stream_observations_total", ())]
                == before[("stream_observations_total", ())] + 1500)

    def test_fresh_registry_without_checkpoint_starts_at_zero(self, model):
        detector = make_detector(model, metrics=MetricsRegistry())
        values = counter_values(detector.metrics)
        assert all(value == 0 for value in values.values())

    def test_dead_letters_not_double_counted_on_restore(self, model):
        detector = make_detector(model, metrics=MetricsRegistry())
        feed(detector, 11, DAY, 20000.0)
        detector._quarantine(1, "stream", RuntimeError("poisoned"))
        metric = detector.metrics.get("dead_letters_total")
        assert metric.labels(stage="stream").value == 1

        fresh = MetricsRegistry()
        restored = detector_from_json(detector_to_json(detector),
                                      model.histories, model.parameters,
                                      metrics=fresh)
        assert len(restored.dead_letters) == 1
        assert fresh.get("dead_letters_total").labels(
            stage="stream").value == 1

    def test_restore_without_snapshot_backfills_health_counts(self, model):
        # A checkpoint written with telemetry off still seeds the
        # counters of a telemetry-on restore from its health state.
        detector = make_detector(model)
        feed(detector, 11, DAY, 20000.0)
        detector._quarantine(1, "stream", RuntimeError("poisoned"))
        fresh = MetricsRegistry()
        restored = detector_from_json(detector_to_json(detector),
                                      model.histories, model.parameters,
                                      metrics=fresh)
        assert len(restored.dead_letters) == 1
        assert fresh.get("dead_letters_total").labels(
            stage="stream").value == 1

    def test_default_restore_stays_unmetered(self, model):
        detector = make_detector(model, metrics=MetricsRegistry())
        feed(detector, 11, DAY, 20000.0)
        restored = detector_from_json(detector_to_json(detector),
                                      model.histories, model.parameters)
        assert restored.metrics.enabled is False
        # And the re-serialised document drops the snapshot again.
        assert "metrics" not in json.loads(detector_to_json(restored))

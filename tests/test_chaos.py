"""Chaos suite: poisoned blocks are contained, clean blocks are exact.

The fault-containment contract of this PR, pinned end to end:

* poisoning a small fraction of a population quarantines *exactly* the
  poisoned blocks — batch and streaming both complete, and every clean
  block's result is bit-identical to an unpoisoned run;
* the run health report accounts for every block (attempted =
  succeeded + quarantined, quarantined named);
* the error budget trips at the configured fraction with
  :class:`~repro.core.health.ErrorBudgetExceeded`, and stays silent at
  or below it;
* the ingest boundary refuses non-finite timestamps outright rather
  than letting them reach a detector clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import StreamingDetector
from repro.core.health import ErrorBudgetExceeded
from repro.core.pipeline import PassiveOutagePipeline
from repro.net.addr import Family
from repro.telescope.records import Observation
from repro.telescope.reorder import ReorderBuffer
from repro.testing.faults import (
    degenerate_parameters,
    poison_block_times,
    poison_timestamps,
)
from repro.traffic.sources import poisson_times

pytestmark = pytest.mark.faults

DAY = 86400.0
N_BLOCKS = 20


@pytest.fixture(scope="module")
def population():
    """Twenty healthy blocks: train/evaluate windows plus a clean model."""
    rng = np.random.default_rng(42)
    rates = {key: 0.05 + 0.01 * key for key in range(1, N_BLOCKS + 1)}
    train = {k: poisson_times(rng, r, 0, DAY) for k, r in rates.items()}
    evaluate = {k: poisson_times(rng, r, DAY, 2 * DAY)
                for k, r in rates.items()}
    pipeline = PassiveOutagePipeline(aggregation_levels=0)
    model = pipeline.train(Family.IPV4, train, 0.0, DAY)
    return pipeline, model, train, evaluate


def assert_blocks_identical(clean, poisoned, keys):
    for key in keys:
        assert poisoned.blocks[key].timeline == clean.blocks[key].timeline
        assert (poisoned.blocks[key].coarse_timeline
                == clean.blocks[key].coarse_timeline)


class TestBatchContainment:
    def test_five_percent_poison_quarantines_exactly_those_blocks(
            self, population):
        pipeline, model, _, evaluate = population
        victims = sorted(model.measurable_keys)[:1]  # 1/20 = 5%
        clean = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        poisoned = pipeline.detect(
            model, poison_block_times(evaluate, victims, "nan"),
            DAY, 2 * DAY)
        assert poisoned.quarantined_keys == victims
        for key in victims:
            assert key not in poisoned.blocks
            entry = poisoned.dead_letters.by_stage("detect")[0]
            assert entry.block_key == key
            assert entry.error_type == "BlockDataError"
            assert "non-finite" in entry.error
        survivors = sorted(set(clean.blocks) - set(victims))
        assert sorted(poisoned.blocks) == survivors
        assert_blocks_identical(clean, poisoned, survivors)

    def test_degenerate_model_rows_are_masked_not_spread(self, population):
        pipeline, model, _, evaluate = population
        victims = sorted(model.measurable_keys)[:1]
        clean = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        corrupt = degenerate_parameters(
            model.parameters, victims, "noise_nonempty", float("nan"))
        result = pipeline.detector.detect(
            model.family, evaluate, model.histories, corrupt, DAY, 2 * DAY)
        registry = pipeline.detector.last_dead_letters
        assert registry.keys() == victims
        assert registry.by_stage("belief")
        survivors = sorted(set(clean.blocks) - set(victims))
        assert sorted(result) == survivors
        for key in survivors:
            assert result[key].timeline == clean.blocks[key].timeline

    def test_health_report_accounts_for_every_block(self, population):
        pipeline, model, _, evaluate = population
        victims = sorted(model.measurable_keys)[:1]
        result = pipeline.detect(
            model, poison_block_times(evaluate, victims, "nan"),
            DAY, 2 * DAY)
        health = result.health
        assert health is not None
        assert health.accounts_for(model.measurable_keys)
        assert health.blocks_attempted == len(model.measurable_keys)
        assert health.blocks_quarantined == len(victims)
        assert health.blocks_succeeded == (len(model.measurable_keys)
                                           - len(victims))
        assert health.guardrails.count("nonfinite_timestamp") > 0
        # Round-trips to JSON for operators and the CLI's --health-report.
        restored = type(health).from_json(health.to_json())
        assert restored.blocks_quarantined == health.blocks_quarantined

    def test_budget_trips_above_fraction_not_at_it(self, population):
        _, model, _, evaluate = population
        strict = PassiveOutagePipeline(aggregation_levels=0,
                                       max_quarantine_frac=0.05)
        one = sorted(model.measurable_keys)[:1]    # exactly 5%: allowed
        result = strict.detect(
            model, poison_block_times(evaluate, one, "nan"), DAY, 2 * DAY)
        assert result.health is not None
        assert not result.health.budget_tripped
        two = sorted(model.measurable_keys)[:2]    # 10% > 5%: trips
        with pytest.raises(ErrorBudgetExceeded) as info:
            strict.detect(model, poison_block_times(evaluate, two, "nan"),
                          DAY, 2 * DAY)
        assert info.value.quarantined == 2
        assert info.value.fraction == pytest.approx(0.1)

    def test_training_quarantines_poisoned_history(self, population):
        pipeline, _, train, _ = population
        victims = sorted(train)[:1]
        model = pipeline.train(
            Family.IPV4, poison_block_times(train, victims, "unsorted"),
            0.0, DAY)
        assert model.dead_letters.keys() == victims
        for key in victims:
            assert key not in model.histories
            assert key not in model.parameters
        assert len(model.parameters) == len(train) - len(victims)
        assert model.health is not None
        assert model.health.stage("train").quarantined == len(victims)


class TestStreamingContainment:
    def rows(self, evaluate, keys):
        return sorted(Observation(float(t), Family.IPV4, k << 8)
                      for k in keys for t in evaluate[k])

    def run(self, model, rows, parameters=None, frac=0.5):
        detector = StreamingDetector(
            model.family, model.histories,
            parameters if parameters is not None else model.parameters,
            DAY, max_quarantine_frac=frac)
        for row in rows:
            detector.observe(row)
        return detector, detector.finalize(2 * DAY)

    def test_poisoned_model_quarantines_block_stream_survives(
            self, population):
        _, model, _, evaluate = population
        keys = model.measurable_keys
        victims = keys[:1]
        rows = self.rows(evaluate, keys)
        _, clean = self.run(model, rows)
        # noise_nonempty is consulted every bin (p_empty_up is overridden
        # by the diurnal likelihood for these blocks), so poisoning it
        # must dead-letter the block at its first closed bin.
        corrupt = degenerate_parameters(model.parameters, victims,
                                        "noise_nonempty", float("nan"))
        detector, results = self.run(model, rows, parameters=corrupt)
        assert detector.dead_letters.keys() == victims
        survivors = sorted(set(keys) - set(victims))
        assert sorted(results) == survivors
        for key in survivors:
            assert results[key].timeline == clean[key].timeline
        health = detector.last_health
        assert health is not None
        assert health.accounts_for(keys)
        assert not health.budget_tripped

    def test_streaming_budget_trips_with_health_published(self, population):
        _, model, _, evaluate = population
        keys = model.measurable_keys
        victims = keys[:2]                          # 10% > 5%
        corrupt = degenerate_parameters(model.parameters, victims,
                                        "noise_nonempty", float("nan"))
        rows = self.rows(evaluate, keys)
        with pytest.raises(ErrorBudgetExceeded):
            self.run(model, rows, parameters=corrupt, frac=0.05)

    def test_observe_refuses_nonfinite_timestamp(self, population):
        _, model, _, evaluate = population
        detector = StreamingDetector(model.family, model.histories,
                                     model.parameters, DAY)
        with pytest.raises(ValueError, match="non-finite"):
            detector.observe(
                Observation(float("nan"), Family.IPV4,
                            model.measurable_keys[0] << 8))


class TestTelemetryAgreement:
    """Health report and metrics registry share the counter write path.

    Satellite contract of the telemetry PR: ``RunHealthReport`` and the
    ``dead_letters_total``/``guardrail_trips_total`` metric series are
    fed by the *same* ``record()``/``trip()`` calls, so after a chaos
    run they must agree exactly — no second accounting path to drift.
    """

    def metric_counts(self, registry, name):
        family = registry.get(name)
        if family is None:
            return {}
        return {labels[0]: child.value
                for labels, child in family.series() if child.value}

    def test_streaming_report_equals_metrics_after_chaos(self, population):
        from repro.obs.metrics import MetricsRegistry

        _, model, _, evaluate = population
        keys = model.measurable_keys
        victims = keys[:1]
        corrupt = degenerate_parameters(model.parameters, victims,
                                        "noise_nonempty", float("nan"))
        registry = MetricsRegistry()
        detector = StreamingDetector(model.family, model.histories,
                                     corrupt, DAY, metrics=registry)
        for row in sorted(Observation(float(t), Family.IPV4, k << 8)
                          for k in keys for t in evaluate[k]):
            detector.observe(row)
        detector.finalize(2 * DAY)
        health = detector.last_health
        assert health is not None

        dead_by_stage = {}
        for entry in health.dead_letters.entries:
            dead_by_stage[entry.stage] = dead_by_stage.get(entry.stage, 0) + 1
        assert dead_by_stage  # chaos actually quarantined something
        assert self.metric_counts(registry,
                                  "dead_letters_total") == dead_by_stage

        report_guards = {guard: count
                         for guard, count
                         in health.guardrails.as_dict().items() if count}
        assert self.metric_counts(registry,
                                  "guardrail_trips_total") == report_guards

    def test_batch_report_equals_metrics_after_chaos(self, population):
        from repro.obs.metrics import MetricsRegistry

        _, model, _, evaluate = population
        victims = sorted(model.measurable_keys)[:1]
        registry = MetricsRegistry()
        pipeline = PassiveOutagePipeline(aggregation_levels=0,
                                         metrics=registry)
        result = pipeline.detect(
            model, poison_block_times(evaluate, victims, "nan"),
            DAY, 2 * DAY)
        health = result.health
        assert health is not None

        dead_by_stage = {}
        for entry in health.dead_letters.entries:
            dead_by_stage[entry.stage] = dead_by_stage.get(entry.stage, 0) + 1
        assert dead_by_stage
        assert self.metric_counts(registry,
                                  "dead_letters_total") == dead_by_stage
        report_guards = {guard: count
                         for guard, count
                         in health.guardrails.as_dict().items() if count}
        assert report_guards.get("nonfinite_timestamp", 0) > 0
        assert self.metric_counts(registry,
                                  "guardrail_trips_total") == report_guards


class TestIngestBoundary:
    def test_reorder_buffer_stops_poisoned_stream(self, population):
        _, model, _, evaluate = population
        key = model.measurable_keys[0]
        rng = np.random.default_rng(7)
        rows = [Observation(float(t), Family.IPV4, key << 8)
                for t in evaluate[key]]
        buffer = ReorderBuffer(5.0)
        with pytest.raises(ValueError, match="non-finite"):
            for row in poison_timestamps(rows, 0.05, rng):
                buffer.push(row)
        assert buffer.stats.pushed > 0

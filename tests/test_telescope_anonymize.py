"""Prefix-preserving anonymization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import Family
from repro.telescope.anonymize import PrefixPreservingAnonymizer
from repro.telescope.records import Observation

KEY = b"0123456789abcdef0123456789abcdef"


@pytest.fixture
def anonymizer():
    return PrefixPreservingAnonymizer(KEY)


class TestBasics:
    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer(b"short")

    def test_deterministic(self, anonymizer):
        other = PrefixPreservingAnonymizer(KEY)
        for value in (0, 1, 0xC0000201, (1 << 32) - 1):
            assert anonymizer.anonymize_value(Family.IPV4, value) == \
                other.anonymize_value(Family.IPV4, value)

    def test_different_keys_differ(self):
        a = PrefixPreservingAnonymizer(KEY)
        b = PrefixPreservingAnonymizer(b"x" * 32)
        values = [a.anonymize_value(Family.IPV4, v) for v in range(100)]
        others = [b.anonymize_value(Family.IPV4, v) for v in range(100)]
        assert values != others

    def test_range_validation(self, anonymizer):
        with pytest.raises(ValueError):
            anonymizer.anonymize_value(Family.IPV4, 1 << 32)

    def test_observation_anonymized(self, anonymizer):
        observation = Observation(5.0, Family.IPV4, 0xC0000201, 28)
        result = anonymizer.anonymize(observation)
        assert result.time == 5.0 and result.qtype == 28
        assert result.source != observation.source

    def test_stream_helper(self, anonymizer):
        rows = [Observation(float(i), Family.IPV4, i) for i in range(10)]
        out = list(anonymizer.anonymize_stream(rows))
        assert len(out) == 10
        assert [o.time for o in out] == [o.time for o in rows]


class TestPrefixPreservation:
    def test_is_permutation_on_small_space(self):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        # Check bijectivity over a full /24 (the bottom 8 bits).
        base = 0xC0000200
        images = {anonymizer.anonymize_value(Family.IPV4, base + i)
                  for i in range(256)}
        assert len(images) == 256
        # Prefix preservation: all images share one /24.
        assert len({v >> 8 for v in images}) == 1

    def test_block_key_consistency(self):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        value = 0xCB007142
        anonymized = anonymizer.anonymize_value(Family.IPV4, value)
        assert anonymized >> 8 == anonymizer.anonymize_block_key(
            Family.IPV4, value >> 8)

    def test_ipv6_block_key_consistency(self):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        value = 0x20010DB8000100000000000000000001
        anonymized = anonymizer.anonymize_value(Family.IPV6, value)
        assert anonymized >> 80 == anonymizer.anonymize_block_key(
            Family.IPV6, value >> 80)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 32) - 1),
       st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_common_prefix_length_preserved(a, b):
    """The defining property: |common prefix| in == |common prefix| out."""
    anonymizer = PrefixPreservingAnonymizer(KEY)
    image_a = anonymizer.anonymize_value(Family.IPV4, a)
    image_b = anonymizer.anonymize_value(Family.IPV4, b)

    def common_prefix(x, y, bits=32):
        diff = x ^ y
        return bits if diff == 0 else bits - diff.bit_length()

    assert common_prefix(image_a, image_b) == common_prefix(a, b)

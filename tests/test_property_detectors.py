"""Property-based tests across the detector stack.

Hypothesis generates miniature worlds (rates, outage placements) and
checks the invariants that hold regardless of the draw: the streaming
and batch engines agree, timelines stay well-formed, refinement never
invents time outside the window, and tuning is monotone in rate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.belief import BeliefState, guarded_belief_pass
from repro.core.detector import PassiveDetector, StreamingDetector
from repro.core.history import train_histories, train_history
from repro.core.parameters import BlockParameters, ParameterPlanner
from repro.eval.matching import match_events
from repro.net.addr import Family
from repro.telescope.records import Observation
from repro.traffic.sources import poisson_times, suppress_intervals

DAY = 86400.0

_rate = st.floats(min_value=0.005, max_value=0.3)
_outage_start = st.floats(min_value=DAY + 3600, max_value=2 * DAY - 20000)
_outage_len = st.floats(min_value=1200.0, max_value=14400.0)


@settings(max_examples=15, deadline=None)
@given(rate=_rate, outage_start=_outage_start, outage_len=_outage_len,
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_streaming_and_batch_agree_on_generated_worlds(
        rate, outage_start, outage_len, seed):
    rng = np.random.default_rng(seed)
    outage = (outage_start, min(outage_start + outage_len, 2 * DAY))
    train = {1: poisson_times(rng, rate, 0, DAY)}
    evaluate = {1: suppress_intervals(
        poisson_times(rng, rate, DAY, 2 * DAY), [outage])}
    histories = train_histories(train, 0, DAY)
    parameters = ParameterPlanner().plan(histories)
    if not parameters[1].measurable:
        return

    batch = PassiveDetector().detect(Family.IPV4, evaluate, histories,
                                     parameters, DAY, 2 * DAY)
    stream = StreamingDetector(Family.IPV4, histories, parameters, DAY)
    for t in evaluate[1]:
        stream.observe(Observation(float(t), Family.IPV4, 1 << 8))
    streamed = stream.finalize(2 * DAY)

    floor = max(600.0, 2 * parameters[1].bin_seconds)
    batch_events = batch[1].timeline.events(floor)
    stream_events = streamed[1].timeline.events(floor)
    # Every solid batch event has a streaming counterpart and vice versa.
    matched = match_events(stream_events, batch_events,
                           slack=parameters[1].bin_seconds)
    assert not matched.unmatched_truth, (batch_events, stream_events)

    # Invariants on every produced timeline.
    for result in (batch[1], streamed[1]):
        down = result.timeline.down_intervals
        for (s1, e1), (s2, e2) in zip(down, down[1:]):
            assert e1 < s2
        for s, e in down:
            assert DAY <= s < e <= 2 * DAY


@settings(max_examples=20, deadline=None)
@given(rate_low=_rate, factor=st.floats(min_value=1.5, max_value=20.0),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_tuning_monotone_in_rate(rate_low, factor, seed):
    """A strictly busier block never gets a coarser bin."""
    rng = np.random.default_rng(seed)
    slow = train_history(poisson_times(rng, rate_low, 0, DAY), 0, DAY)
    fast = train_history(poisson_times(rng, rate_low * factor, 0, DAY),
                         0, DAY)
    planner = ParameterPlanner()
    slow_params = planner.plan_block(slow)
    fast_params = planner.plan_block(fast)
    if slow_params.measurable and fast.burstiness <= slow.burstiness:
        assert fast_params.measurable
        assert fast_params.bin_seconds <= slow_params.bin_seconds


@settings(max_examples=15, deadline=None)
@given(rate=_rate, seed=st.integers(min_value=0, max_value=2 ** 16))
def test_healthy_block_has_high_availability(rate, seed):
    """No injected outage => the detector reports mostly-up."""
    rng = np.random.default_rng(seed)
    train = {1: poisson_times(rng, rate, 0, DAY)}
    evaluate = {1: poisson_times(rng, rate, DAY, 2 * DAY)}
    histories = train_histories(train, 0, DAY)
    parameters = ParameterPlanner().plan(histories)
    if not parameters[1].measurable:
        return
    results = PassiveDetector().detect(Family.IPV4, evaluate, histories,
                                       parameters, DAY, 2 * DAY)
    assert results[1].timeline.availability() > 0.95


_poison = st.sampled_from(
    [None, float("nan"), float("inf"), float("-inf"), -3.0])


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=0, max_value=5),
                    min_size=5, max_size=40),
    poison=st.lists(_poison, min_size=40, max_size=40),
    p_empty=st.sampled_from([0.0, 1e-9, 0.02, 0.5, 1.0]),
    noise=st.sampled_from([1e-4, 1e-2]),
)
def test_scalar_and_vector_agree_under_poisoned_inputs(
        counts, poison, p_empty, noise):
    """The streaming filter and the guarded vector pass make identical
    decisions bin for bin, even when counts are poisoned (NaN/inf/
    negative, neutralised to no-evidence bins) and the empty-bin
    likelihood is degenerate (0/1, clamped strictly inside)."""
    row = np.array(counts, dtype=float)
    for index, value in enumerate(poison[:row.size]):
        if value is not None:
            row[index] = value

    params = BlockParameters(
        bin_seconds=600.0, p_empty_up=0.02, noise_nonempty=noise,
        prior_down=0.01, prior_up_recovery=0.05)
    state = BeliefState(params)
    scalar_states = np.array([state.update(count, p_empty)
                              for count in row])

    states, _, poisoned = guarded_belief_pass(
        row[None, :], np.array([p_empty]), np.array([noise]),
        np.array([0.01]), np.array([0.05]))

    assert np.array_equal(states[0], scalar_states)
    bad = ~np.isfinite(row) | (row < 0)
    assert bool(poisoned[0]) == bool(bad.any())
    # Every neutralised bin tripped the scalar guardrail too (plus one
    # trip per bin when the degenerate likelihood had to be clamped).
    expected = int(bad.sum())
    if p_empty in (0.0, 1.0):
        expected += row.size
    assert state.guardrail_trips == expected

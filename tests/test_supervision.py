"""Chaos suite for supervised shard execution.

The contract under test: process-fatal poison (a worker that
segfaults, hangs, or balloons its RSS) must degrade to a *lost block*
— dead-lettered under ``stage="supervision"``, isolated by bisection,
accounted for in a degraded coverage report — never to a dead run.
Transient process faults must be absorbed by retries; surviving blocks
must be bit-for-bit identical to the sequential guarded path; and a
killed supervised run must resume without re-paying completed retries.

Faults reach spawned workers through the test-only environment channel
(:data:`repro.testing.faults.PROCESS_FAULT_ENV`), so every test here
injects via ``monkeypatch.setenv`` and the production path stays cold.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.checkpoint import read_shard_manifest, write_shard_manifest
from repro.core.pipeline import PassiveOutagePipeline
from repro.core.serialize import block_result_to_dict
from repro.net.addr import Family
from repro.obs.metrics import MetricsRegistry
from repro.parallel import SupervisionPolicy
from repro.testing.faults import (
    balloon_rss_on_block,
    crash_on_block,
    hang_on_block,
    process_fault_env,
)

pytestmark = pytest.mark.faults

WINDOW = 7200.0

#: Backoff tuned for test wall-clock; semantics identical to defaults.
FAST_BACKOFF = dict(backoff_base=0.01, backoff_factor=2.0,
                    backoff_cap=0.05)


def poisson_times(rng, rate, start, end):
    n = rng.poisson(rate * (end - start))
    return np.sort(rng.uniform(start, end, n))


def make_population(n_blocks, seed=5, rate=0.05):
    rng = np.random.default_rng(seed)
    return {key << 8: poisson_times(rng, rate, 0.0, WINDOW)
            for key in range(n_blocks)}


def set_faults(monkeypatch, *hooks, counter_dir=None):
    for key, value in process_fault_env(
            *hooks, counter_dir=counter_dir).items():
        monkeypatch.setenv(key, value)


def supervised(workers, *, shard_chunk=4, metrics=None, checkpoint=None,
               **policy):
    policy.setdefault("timeout", 60.0)
    for key, value in FAST_BACKOFF.items():
        policy.setdefault(key, value)
    return PassiveOutagePipeline(
        aggregation_levels=0, workers=workers, shard_chunk=shard_chunk,
        metrics=metrics or MetricsRegistry(),
        shard_checkpoint_dir=checkpoint,
        supervision=SupervisionPolicy(**policy))


@pytest.fixture(scope="module")
def population():
    return make_population(12)


@pytest.fixture(scope="module")
def sequential(population):
    """Sequential guarded baseline: the ground truth every chaos run
    must match on surviving blocks."""
    pipeline = PassiveOutagePipeline(workers=0, aggregation_levels=0)
    model = pipeline.train(Family.IPV4, population, 0.0, WINDOW)
    result = pipeline.detect(model, population, 0.0, WINDOW)
    return model, result


def assert_surviving_blocks_match(result, baseline, lost):
    assert sorted(result.blocks) == sorted(
        key for key in baseline.blocks if key not in lost)
    for key in result.blocks:
        assert (block_result_to_dict(result.blocks[key])
                == block_result_to_dict(baseline.blocks[key])), hex(key)


class TestCrashContainment:
    def test_crash_is_bisected_to_single_lost_block(self, population,
                                                    sequential,
                                                    monkeypatch):
        _, baseline = sequential
        victim = sorted(population)[5]
        set_faults(monkeypatch, crash_on_block(victim))
        registry = MetricsRegistry()
        pipeline = supervised(2, metrics=registry, retries=1)
        model = pipeline.train(Family.IPV4, population, 0.0, WINDOW)

        coverage = model.health.coverage
        assert coverage is not None and coverage.degraded
        assert coverage.blocks_lost == [victim]
        assert coverage.blocks_planned == len(population)
        assert coverage.blocks_delivered == len(population) - 1
        assert model.health.accounts_for(population.keys())
        letters = model.health.dead_letters.by_stage("supervision")
        assert [entry.block_key for entry in letters] == [victim]
        assert letters[0].error_type == "ShardCrash"
        assert victim not in model.parameters

        attempts = registry.get("shard_attempts_total")
        assert attempts.labels(outcome="crash").value >= 2
        assert attempts.labels(outcome="ok").value >= 1
        assert registry.get("shard_bisections_total").value >= 1
        assert registry.get("shard_retries_total").value >= 1
        assert registry.get("supervision_lost_blocks").value == 1

        # Bisection lineage must appear in the attempt history: the
        # victim ends as a single-block dotted unit, not a whole shard.
        lost_units = [record.unit for record in coverage.shard_attempts
                      if record.status == "lost"]
        assert len(lost_units) == 1 and "." in lost_units[0]

        result = pipeline.detect(model, population, 0.0, WINDOW)
        assert_surviving_blocks_match(result, baseline, {victim})

    def test_flaky_crash_absorbed_by_retry(self, population, sequential,
                                           monkeypatch, tmp_path):
        _, baseline = sequential
        victim = sorted(population)[3]
        set_faults(monkeypatch, crash_on_block(victim, times=1),
                   counter_dir=str(tmp_path))
        registry = MetricsRegistry()
        pipeline = supervised(2, metrics=registry, retries=2)
        model = pipeline.train(Family.IPV4, population, 0.0, WINDOW)
        result = pipeline.detect(model, population, 0.0, WINDOW)

        coverage = model.health.coverage
        assert not coverage.degraded
        assert coverage.blocks_delivered == len(population)
        assert not model.health.dead_letters.by_stage("supervision")
        assert registry.get("shard_retries_total").value >= 1
        # Exactly one unit needed a second attempt (crash, then ok).
        flaky = [record for record in coverage.shard_attempts
                 if record.outcomes == ["crash", "ok"]]
        assert len(flaky) == 1
        assert 2 in coverage.retry_histogram()
        assert_surviving_blocks_match(result, baseline, set())


class TestHangAndOOM:
    def test_hang_is_reclaimed_by_deadline(self, monkeypatch):
        population = make_population(6)
        victim = sorted(population)[2]
        # The injected sleep is 600s; only the supervisor's deadline
        # can reclaim the worker before that.
        set_faults(monkeypatch, hang_on_block(victim, seconds=600.0))
        pipeline = supervised(2, shard_chunk=1, timeout=1.0, retries=1)
        clock = time.monotonic()
        model = pipeline.train(Family.IPV4, population, 0.0, WINDOW)
        elapsed = time.monotonic() - clock

        # timeout * attempts + backoff + spawn overhead, with a wide
        # CI allowance — the point is "minutes, not the 600s sleep".
        assert elapsed < 60.0
        coverage = model.health.coverage
        assert coverage.blocks_lost == [victim]
        letters = model.health.dead_letters.by_stage("supervision")
        assert [entry.error_type for entry in letters] == ["ShardHang"]
        assert model.health.accounts_for(population.keys())

    @pytest.mark.skipif(not os.path.exists("/proc/self/statm"),
                        reason="RSS ceiling needs /proc")
    def test_oom_is_killed_by_rss_ceiling(self, monkeypatch):
        population = make_population(6)
        victim = sorted(population)[4]
        set_faults(monkeypatch,
                   balloon_rss_on_block(victim, mb=600.0,
                                        hold_seconds=600.0))
        pipeline = supervised(2, shard_chunk=1, timeout=120.0,
                              retries=0, max_rss_mb=250.0)
        clock = time.monotonic()
        model = pipeline.train(Family.IPV4, population, 0.0, WINDOW)
        elapsed = time.monotonic() - clock

        assert elapsed < 120.0
        coverage = model.health.coverage
        assert coverage.blocks_lost == [victim]
        letters = model.health.dead_letters.by_stage("supervision")
        assert [entry.error_type for entry in letters] == ["ShardOOM"]
        assert model.health.accounts_for(population.keys())


class TestResume:
    def test_resume_carries_attempt_history_mid_retry(self, population,
                                                      sequential,
                                                      tmp_path):
        """A unit killed mid-retry resumes with its failures on the
        books: the manifest's attempt history survives, and the retry
        budget is not reset by the restart."""
        _, baseline = sequential
        checkpoint = tmp_path / "shards"
        pipeline = supervised(1, checkpoint=str(checkpoint), retries=1)
        pipeline.train(Family.IPV4, population, 0.0, WINDOW)

        manifest = read_shard_manifest(str(checkpoint))
        units = manifest["supervision"]["units"]
        assert all(entry["status"] == "done" for entry in units.values())
        # Simulate a run killed between a failed attempt and its retry:
        # the attempt is recorded, the unit is pending, no result file.
        units["00001"] = {"attempts": ["crash"], "status": "pending"}
        write_shard_manifest(str(checkpoint), manifest)
        (checkpoint / "shard-00001.json").unlink()

        resumed = supervised(1, checkpoint=str(checkpoint), retries=1)
        model = resumed.train(Family.IPV4, population, 0.0, WINDOW)
        record = {r.unit: r for r in
                  model.health.coverage.shard_attempts}["00001"]
        assert record.outcomes == ["crash", "ok"]
        assert record.status == "done"
        assert not model.health.coverage.degraded
        result = resumed.detect(model, population, 0.0, WINDOW)
        assert_surviving_blocks_match(result, baseline, set())

    def test_lost_verdict_survives_resume_without_recompute(
            self, population, monkeypatch, tmp_path):
        victim = sorted(population)[7]
        checkpoint = tmp_path / "shards"
        set_faults(monkeypatch, crash_on_block(victim))
        first = supervised(2, checkpoint=str(checkpoint), retries=1)
        model = first.train(Family.IPV4, population, 0.0, WINDOW)
        assert model.health.coverage.blocks_lost == [victim]
        before = read_shard_manifest(str(checkpoint))["supervision"]

        # Resume with the fault gone: the lost verdict was paid for in
        # full by the first run and must be honoured, not re-litigated.
        monkeypatch.delenv("REPRO_PROCESS_FAULTS")
        second = supervised(2, checkpoint=str(checkpoint), retries=1)
        resumed = second.train(Family.IPV4, population, 0.0, WINDOW)
        assert resumed.health.coverage.blocks_lost == [victim]
        after = read_shard_manifest(str(checkpoint))["supervision"]
        assert after == before  # no attempt re-paid, no state churn
        assert resumed.parameters.keys() == model.parameters.keys()


class TestEquivalence:
    def test_worker_count_does_not_change_surviving_output(
            self, population, sequential, monkeypatch):
        _, baseline = sequential
        victim = sorted(population)[9]
        set_faults(monkeypatch, crash_on_block(victim))

        outputs = []
        for workers in (1, 4):
            pipeline = supervised(workers, retries=1)
            model = pipeline.train(Family.IPV4, population, 0.0, WINDOW)
            result = pipeline.detect(model, population, 0.0, WINDOW)
            health = result.health
            health.dead_letters.canonicalize()
            document = health.as_dict()
            for stage in document["stages"]:
                stage["seconds"] = 0.0
            outputs.append((model, result, document))

        (model_1, result_1, health_1), (model_4, result_4, health_4) = outputs
        assert model_1.parameters == model_4.parameters
        assert sorted(result_1.blocks) == sorted(result_4.blocks)
        for key in result_1.blocks:
            assert (block_result_to_dict(result_1.blocks[key])
                    == block_result_to_dict(result_4.blocks[key]))
        # Full health documents — including the coverage section and
        # every unit's attempt history — are worker-count independent.
        assert health_1 == health_4
        assert_surviving_blocks_match(result_1, baseline, {victim})


class TestAcceptance:
    def test_chaos_proof_1536_blocks(self, monkeypatch, tmp_path):
        """The ISSUE's acceptance scenario: 1 poisoned block in 1536,
        4 workers — the run completes, bisection quarantines exactly
        that block, the degraded report accounts for the full
        population, and every surviving block matches the sequential
        guarded output bit-for-bit."""
        population = make_population(1536, seed=17)
        victim = sorted(population)[1000]

        seq = PassiveOutagePipeline(workers=0, aggregation_levels=0)
        model = seq.train(Family.IPV4, population, 0.0, WINDOW)
        baseline = seq.detect(model, population, WINDOW, WINDOW + 3600.0)

        set_faults(monkeypatch, crash_on_block(victim))
        registry = MetricsRegistry()
        pipeline = supervised(4, shard_chunk=None, metrics=registry,
                              retries=1)
        result = pipeline.detect(model, population, WINDOW,
                                 WINDOW + 3600.0)

        coverage = result.health.coverage
        assert coverage.blocks_lost == [victim]
        assert coverage.blocks_planned == len(population)
        measurable = {key for key, params in model.parameters.items()
                      if params.measurable}
        assert result.health.accounts_for(measurable)
        letters = result.health.dead_letters.by_stage("supervision")
        assert [entry.block_key for entry in letters] == [victim]
        assert registry.get("shard_bisections_total").value >= 1
        assert registry.get("supervision_lost_blocks").value == 1
        assert_surviving_blocks_match(result, baseline, {victim})

        # CI uploads the degraded-run health report as an artifact.
        artifact = os.environ.get("REPRO_CHAOS_HEALTH_OUT")
        if artifact:
            with open(artifact, "w", encoding="utf-8") as handle:
                handle.write(result.health.to_json())

"""Telescope pipeline: records, capture format, aggregation, streaming."""

import io

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import Family
from repro.telescope.aggregate import (
    BinGrid,
    bin_edge_timestamps,
    binned_counts,
    merge_block_times,
    per_block_times,
)
from repro.telescope.capture import (
    CaptureError,
    CaptureReader,
    CaptureWriter,
    read_batches,
    write_batches,
)
from repro.telescope.records import Observation, ObservationBatch
from repro.telescope.stream import merge_streams, window_stream


def make_batch(n=100, blocks=4, seed=0, family=Family.IPV4):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0, 1000, n))
    keys = rng.integers(1, blocks + 1, n).astype(np.uint64)
    qtypes = rng.integers(1, 30, n).astype(np.uint16)
    return ObservationBatch(family, times, keys, qtypes)


class TestObservation:
    def test_block_key(self):
        obs = Observation(1.0, Family.IPV4, 0xC0000201)
        assert obs.block_key == 0xC00002
        assert str(obs.block) == "192.0.2.0/24"

    def test_ipv6_block_key(self):
        obs = Observation(1.0, Family.IPV6,
                          0x20010DB8000100000000000000000001)
        assert obs.block_key == 0x20010DB80001

    def test_ordering_by_time(self):
        a = Observation(1.0, Family.IPV4, 5)
        b = Observation(2.0, Family.IPV4, 4)
        assert a < b


class TestObservationBatch:
    def test_length_and_columns(self):
        batch = make_batch(50)
        assert len(batch) == 50
        assert batch.times.dtype == np.float64
        assert batch.block_keys.dtype == np.uint64

    def test_misaligned_columns_rejected(self):
        with pytest.raises(ValueError):
            ObservationBatch(Family.IPV4, np.zeros(3),
                             np.zeros(4, dtype=np.uint64))

    def test_time_slice(self):
        batch = make_batch(200)
        sliced = batch.time_slice(100, 300)
        assert np.all(sliced.times >= 100)
        assert np.all(sliced.times < 300)

    def test_per_block_partition(self):
        batch = make_batch(300, blocks=5)
        rebuilt = 0
        for key, times in batch.per_block():
            assert np.all(np.diff(times) >= 0)
            rebuilt += times.size
        assert rebuilt == 300

    def test_concatenate_sorts(self):
        a = make_batch(50, seed=1)
        b = make_batch(50, seed=2)
        merged = ObservationBatch.concatenate([a, b])
        assert len(merged) == 100
        assert np.all(np.diff(merged.times) >= 0)

    def test_concatenate_family_mismatch(self):
        with pytest.raises(ValueError):
            ObservationBatch.concatenate(
                [make_batch(10), make_batch(10, family=Family.IPV6)])

    def test_from_observations_filters_family(self):
        rows = [Observation(1.0, Family.IPV4, 0x01020304),
                Observation(2.0, Family.IPV6, 1 << 100)]
        batch = ObservationBatch.from_observations(Family.IPV4, rows)
        assert len(batch) == 1

    def test_roundtrip_to_observations(self):
        batch = make_batch(20)
        rows = batch.to_observations()
        rebuilt = ObservationBatch.from_observations(Family.IPV4, rows)
        assert np.array_equal(rebuilt.block_keys, batch.block_keys)


class TestCapture:
    def test_roundtrip_both_families(self):
        v4 = make_batch(100)
        v6 = make_batch(60, family=Family.IPV6)
        buffer = io.BytesIO()
        count = write_batches(buffer, v4, v6)
        assert count == 160
        buffer.seek(0)
        got4, got6 = read_batches(buffer)
        assert np.allclose(got4.times, v4.times)
        assert np.array_equal(got4.block_keys, v4.block_keys)
        assert np.array_equal(got4.qtypes, v4.qtypes)
        assert np.array_equal(got6.block_keys, v6.block_keys)

    def test_streaming_read(self):
        buffer = io.BytesIO()
        with CaptureWriter(buffer) as writer:
            writer.write(Observation(1.5, Family.IPV4, 0x01020304, 28))
            writer.write(Observation(2.5, Family.IPV6, 1 << 100, 1))
        buffer.seek(0)
        rows = list(CaptureReader(buffer))
        assert len(rows) == 2
        assert rows[0].time == 1.5
        assert rows[0].qtype == 28
        assert rows[1].family is Family.IPV6
        assert rows[1].source == 1 << 100

    def test_bad_magic_rejected(self):
        with pytest.raises(CaptureError):
            CaptureReader(io.BytesIO(b"NOPE\x00\x01\x00\x00"))

    def test_truncated_header_rejected(self):
        with pytest.raises(CaptureError):
            CaptureReader(io.BytesIO(b"PO"))

    def test_truncated_record_rejected(self):
        buffer = io.BytesIO()
        with CaptureWriter(buffer) as writer:
            writer.write(Observation(1.0, Family.IPV4, 1))
        data = buffer.getvalue()[:-3]
        reader = CaptureReader(io.BytesIO(data))
        with pytest.raises(CaptureError):
            list(reader)

    def test_file_paths(self, tmp_path):
        path = tmp_path / "trace.pobs"
        write_batches(path, make_batch(10))
        got4, got6 = read_batches(path)
        assert len(got4) == 10 and len(got6) == 0


class TestBinGrid:
    def test_bin_count_and_edges(self):
        grid = BinGrid(0, 1000, 100)
        assert grid.n_bins == 10
        assert grid.edges()[0] == 0
        assert grid.bin_start(3) == 300
        assert grid.bin_end(9) == 1000

    def test_partial_last_bin(self):
        grid = BinGrid(0, 950, 100)
        assert grid.n_bins == 10
        assert grid.bin_end(9) == 950

    def test_bin_of(self):
        grid = BinGrid(0, 1000, 100)
        assert list(grid.bin_of(np.array([0.0, 99.9, 100.0, 999.9]))) == \
            [0, 0, 1, 9]

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            BinGrid(0, 100, 0)
        with pytest.raises(ValueError):
            BinGrid(100, 100, 10)


class TestAggregate:
    def test_binned_counts_total(self):
        batch = make_batch(500, blocks=6)
        per_block = per_block_times(batch)
        grid = BinGrid(0, 1000, 50)
        counts = binned_counts(sorted(per_block), per_block, grid)
        assert counts.sum() == 500
        assert counts.shape == (len(per_block), 20)

    def test_missing_block_is_zero_row(self):
        grid = BinGrid(0, 100, 10)
        counts = binned_counts([1, 2], {1: np.array([5.0])}, grid)
        assert counts[0].sum() == 1
        assert counts[1].sum() == 0

    def test_edge_timestamps(self):
        grid = BinGrid(0, 100, 10)
        per_block = {7: np.array([12.0, 15.0, 18.0, 45.0])}
        first, last = bin_edge_timestamps([7], per_block, grid)
        assert first[0, 1] == 12.0 and last[0, 1] == 18.0
        assert first[0, 4] == 45.0 and last[0, 4] == 45.0
        assert np.isnan(first[0, 0])

    def test_merge_block_times(self):
        per_block = {1: np.array([3.0, 9.0]), 2: np.array([1.0, 5.0])}
        merged = merge_block_times(per_block, [1, 2, 3])
        assert list(merged) == [1.0, 3.0, 5.0, 9.0]


class TestStream:
    def rows(self, times, family=Family.IPV4):
        return [Observation(t, family, 0x01020300 + i)
                for i, t in enumerate(times)]

    def test_merge_streams_sorted(self):
        merged = list(merge_streams(self.rows([1, 4, 7]),
                                    self.rows([2, 3, 9])))
        assert [o.time for o in merged] == [1, 2, 3, 4, 7, 9]

    def test_merge_rejects_unsorted_input(self):
        with pytest.raises(ValueError):
            list(merge_streams(self.rows([5, 1])))

    def test_window_stream_includes_empty_windows(self):
        windows = list(window_stream(self.rows([1, 25]), start=0,
                                     window_seconds=10))
        assert len(windows) == 3
        assert [len(w[2]) for w in windows] == [1, 0, 1]
        assert windows[1][:2] == (10, 20)

    def test_window_stream_skips_early_rows(self):
        windows = list(window_stream(self.rows([1, 15]), start=10,
                                     window_seconds=10))
        assert [len(w[2]) for w in windows] == [1]

    def test_window_stream_invalid(self):
        with pytest.raises(ValueError):
            list(window_stream([], 0, 0))


@given(st.lists(st.tuples(
    st.floats(0, 1e6, allow_nan=False),
    st.integers(min_value=0, max_value=(1 << 48) - 1),
    st.integers(min_value=0, max_value=65535)), max_size=50))
def test_capture_roundtrip_property(rows):
    times = np.array(sorted(t for t, _, _ in rows), dtype=np.float64)
    keys = np.array([k for _, k, _ in rows], dtype=np.uint64)
    qtypes = np.array([q for _, _, q in rows], dtype=np.uint16)
    batch = ObservationBatch(Family.IPV6, times, keys, qtypes)
    buffer = io.BytesIO()
    write_batches(buffer, batch)
    buffer.seek(0)
    _, got = read_batches(buffer)
    assert np.array_equal(got.times, times)
    assert np.array_equal(got.block_keys, keys)
    assert np.array_equal(got.qtypes, qtypes)

"""Shared fixtures: a small simulated Internet and derived artefacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.addr import Family
from repro.traffic.internet import (
    FamilyConfig,
    InternetConfig,
    SimulatedInternet,
)
from repro.traffic.outages import IPV4_OUTAGE_MODEL, IPV6_OUTAGE_MODEL, OutageModel

DAY = 86400.0


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_internet() -> SimulatedInternet:
    """A two-day simulation: clean first day, outages on the second."""
    config = InternetConfig(
        end=2 * DAY,
        training_seconds=DAY,
        seed=99,
        ipv4=FamilyConfig(
            n_blocks=120,
            outage_model=OutageModel(outage_probability=0.3)),
        ipv6=FamilyConfig(
            n_blocks=30,
            outage_model=IPV6_OUTAGE_MODEL),
    )
    return SimulatedInternet.build(config)


@pytest.fixture(scope="session")
def small_per_block(small_internet):
    """Per-block arrival times for the small Internet (both families)."""
    v4, v6 = {}, {}
    for profile, times in small_internet.passive_observations():
        (v4 if profile.family is Family.IPV4 else v6)[profile.key] = times
    return {Family.IPV4: v4, Family.IPV6: v6}

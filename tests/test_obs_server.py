"""The observability endpoint: one run's telemetry, served over HTTP.

Everything binds port 0 (ephemeral) on loopback, talks stdlib
``urllib``, and tears the server down in the fixture — the suite must
never collide with a real scrape target or leak a listener.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.explain import EXPLAIN_FORMAT, ExplainLog
from repro.obs.metrics import SNAPSHOT_FORMAT, MetricsRegistry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObservabilityServer
from repro.obs.tracing import SpanTracer


@pytest.fixture()
def plane():
    """A server over a registry/tracer/explain trio with known content."""
    registry = MetricsRegistry()
    registry.counter("runs_total", "runs").inc(3)
    registry.gauge("lag_seconds", merge="last").set(2.5)
    tracer = SpanTracer()
    with tracer.span("detect", family="ipv4"):
        pass
    explain = ExplainLog()
    explain.record({"event": "onset", "block": 0xCAFE, "time": 10.0})
    server = ObservabilityServer(port=0, registry=registry, tracer=tracer,
                                 explain=explain).start()
    try:
        yield server, registry, tracer, explain
    finally:
        server.stop()


def fetch(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, response.headers, response.read().decode()


class TestEndpoints:
    def test_metrics_is_prometheus_text(self, plane):
        server, _, _, _ = plane
        status, headers, body = fetch(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert "runs_total 3" in body
        assert "lag_seconds 2.5" in body

    def test_metrics_json_is_the_snapshot_document(self, plane):
        server, registry, _, _ = plane
        _, _, body = fetch(server, "/metrics.json")
        document = json.loads(body)
        assert document["format"] == SNAPSHOT_FORMAT
        names = [entry["name"] for entry in document["metrics"]]
        assert "runs_total" in names

    def test_trace_is_the_chrome_document(self, plane):
        server, _, tracer, _ = plane
        _, _, body = fetch(server, "/trace")
        document = json.loads(body)
        assert document["metadata"]["trace_id"] == tracer.trace_id
        assert [e["name"] for e in document["traceEvents"]] == ["detect"]

    def test_events_is_the_explain_log(self, plane):
        server, _, _, explain = plane
        _, _, body = fetch(server, "/events")
        document = json.loads(body)
        assert document["format"] == EXPLAIN_FORMAT
        assert document["events"] == explain.events()

    def test_health_defaults_to_process_liveness(self, plane):
        server, _, _, _ = plane
        _, _, body = fetch(server, "/health")
        assert json.loads(body) == {"status": "alive", "run": None}

    def test_health_provider_hook(self, plane):
        server, _, _, _ = plane
        server.health_provider = lambda: {"status": "running",
                                          "partitions": [{"index": 0}]}
        _, _, body = fetch(server, "/health")
        assert json.loads(body)["partitions"] == [{"index": 0}]

    def test_unknown_path_is_404_with_directions(self, plane):
        server, _, _, _ = plane
        with pytest.raises(urllib.error.HTTPError) as info:
            fetch(server, "/nope")
        assert info.value.code == 404
        assert "/metrics" in info.value.read().decode()

    def test_query_strings_ignored(self, plane):
        server, _, _, _ = plane
        status, _, _ = fetch(server, "/metrics?foo=bar")
        assert status == 200


class TestScrapeTelemetry:
    def test_requests_fold_into_the_served_registry(self, plane):
        server, registry, _, _ = plane
        fetch(server, "/metrics")
        fetch(server, "/metrics")
        fetch(server, "/health")
        try:
            fetch(server, "/nope")
        except urllib.error.HTTPError:
            pass
        assert registry.value("obs_http_requests_total",
                              endpoint="metrics") >= 2
        assert registry.value("obs_http_requests_total",
                              endpoint="health") == 1
        assert registry.value("obs_http_requests_total",
                              endpoint="unknown") == 1
        # And the counter is itself visible on the next scrape.
        _, _, body = fetch(server, "/metrics")
        assert 'obs_http_requests_total{endpoint="metrics"}' in body


class TestLiveness:
    def test_scrape_observes_live_state_not_a_copy(self, plane):
        server, registry, _, explain = plane
        registry.get("runs_total").inc(7)
        explain.record({"event": "recovery", "block": 0xCAFE, "time": 20.0})
        _, _, metrics = fetch(server, "/metrics")
        assert "runs_total 10" in metrics
        _, _, events = fetch(server, "/events")
        assert len(json.loads(events)["events"]) == 2

    def test_concurrent_scrapes(self, plane):
        server, _, _, _ = plane
        errors = []

        def scrape():
            try:
                for _ in range(5):
                    status, _, _ = fetch(server, "/metrics")
                    assert status == 200
            except Exception as error:  # pragma: no cover — the assert
                errors.append(error)

        threads = [threading.Thread(target=scrape) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_ephemeral_port_reported(self, plane):
        server, _, _, _ = plane
        assert server.port > 0
        assert str(server.port) in server.url

    def test_stop_releases_the_listener(self):
        server = ObservabilityServer(port=0).start()
        url = server.url
        server.stop()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/health", timeout=0.5)

    def test_defaults_serve_null_objects(self):
        server = ObservabilityServer(port=0).start()
        try:
            _, _, body = fetch(server, "/metrics.json")
            assert json.loads(body)["metrics"] == []
            _, _, body = fetch(server, "/events")
            assert json.loads(body)["events"] == []
        finally:
            server.stop()


class TestGracefulDrain:
    def test_stop_waits_for_inflight_scrape(self):
        """A scrape that already entered the handler completes during stop.

        The health provider blocks until released; stop() runs on
        another thread while the scrape is mid-render.  The contract:
        the scrape still returns 200 with a full body (the socket is
        not yanked), the port is released on return, and the in-flight
        count drains to zero.
        """
        import socket
        import time

        entered = threading.Event()
        release = threading.Event()

        def slow_health():
            entered.set()
            assert release.wait(timeout=10)
            return {"status": "draining-test", "run": None}

        server = ObservabilityServer(port=0,
                                     health_provider=slow_health).start()
        port = server.port
        result = {}

        def scrape():
            result["response"] = fetch(server, "/health")

        scraper = threading.Thread(target=scrape)
        scraper.start()
        assert entered.wait(timeout=10)
        assert server.inflight == 1

        stopper = threading.Thread(target=server.stop)
        stopper.start()
        # stop() must not return while the scrape is still in flight.
        time.sleep(0.2)
        assert stopper.is_alive()
        release.set()
        stopper.join(timeout=10)
        assert not stopper.is_alive()
        scraper.join(timeout=10)

        status, _, body = result["response"]
        assert status == 200
        assert json.loads(body)["status"] == "draining-test"
        assert server.inflight == 0
        # The port is provably free again.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind(("127.0.0.1", port))
        finally:
            probe.close()

    def test_stop_drain_deadline_is_bounded(self):
        """A scrape wedged past the deadline cannot hang stop() forever."""
        import time

        entered = threading.Event()
        release = threading.Event()

        def wedged_health():
            entered.set()
            release.wait(timeout=30)
            return {"status": "late", "run": None}

        server = ObservabilityServer(port=0,
                                     health_provider=wedged_health).start()

        def scrape():
            try:
                fetch(server, "/health")
            except Exception:
                pass  # the wedged scrape may lose its socket; that's the deal

        scraper = threading.Thread(target=scrape, daemon=True)
        scraper.start()
        assert entered.wait(timeout=10)
        began = time.monotonic()
        server.stop(drain_s=0.3)
        assert time.monotonic() - began < 10.0
        release.set()
        scraper.join(timeout=10)

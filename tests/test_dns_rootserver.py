"""B-root-like authoritative server behaviour."""

import numpy as np
import pytest

from repro.dns.message import Message, QClass, QType, Question, RCode
from repro.dns.name import ROOT, Name
from repro.dns.query import POPULAR_TLDS, QueryModel
from repro.dns.rootserver import RootServer, RootZone


@pytest.fixture
def server():
    return RootServer(RootZone.synthetic(["com", "net", "org"]))


class TestReferrals:
    def test_known_tld_gets_referral(self, server):
        query = Message.query(Name.parse("www.example.com"), QType.A, txid=9)
        response = server.respond(query)
        assert response.header.txid == 9
        assert response.header.is_response
        assert response.header.rcode == RCode.NOERROR
        assert not response.answers
        assert len(response.authority) == 2  # two NS records
        assert all(record.rtype == QType.NS for record in response.authority)
        assert all(record.name == Name.parse("com")
                   for record in response.authority)
        # glue: one A and one AAAA per nameserver
        assert len(response.additional) == 4

    def test_bare_tld_also_referred(self, server):
        response = server.respond(
            Message.query(Name.parse("net"), QType.NS, txid=1))
        assert response.authority
        assert server.stats.referrals == 1

    def test_unknown_tld_nxdomain_with_soa(self, server):
        response = server.respond(
            Message.query(Name.parse("host.nosuchtld"), QType.A, txid=2))
        assert response.header.rcode == RCode.NXDOMAIN
        assert response.authority[0].rtype == QType.SOA
        assert response.authority[0].name == ROOT


class TestApex:
    def test_root_soa(self, server):
        response = server.respond(Message.query(ROOT, QType.SOA, txid=3))
        assert response.answers[0].rtype == QType.SOA

    def test_root_ns_lists_letters(self, server):
        response = server.respond(Message.query(ROOT, QType.NS, txid=4))
        assert len(response.answers) == 13


class TestErrors:
    def test_response_as_query_is_formerr(self, server):
        bogus = Message.query(Name.parse("com"), QType.A, txid=5)
        bogus.header.is_response = True
        response = server.respond(bogus)
        assert response.header.rcode == RCode.FORMERR

    def test_no_question_is_formerr(self, server):
        response = server.respond(Message())
        assert response.header.rcode == RCode.FORMERR

    def test_chaos_class_notimp(self, server):
        message = Message()
        message.questions.append(
            Question(Name.parse("version.bind"), QType.TXT, QClass.CH))
        response = server.respond(message)
        assert response.header.rcode == RCode.NOTIMP

    def test_garbage_wire_dropped(self, server):
        assert server.handle_wire(b"\x00\x01") is None
        assert server.stats.formerr == 1


class TestWirePath:
    def test_full_wire_roundtrip(self, server):
        request = Message.query(Name.parse("a.org"), QType.AAAA, txid=42)
        response_wire = server.handle_wire(request.encode())
        response = Message.decode(response_wire)
        assert response.header.txid == 42
        assert response.questions[0].name == Name.parse("a.org")

    def test_stats_accounting(self, server):
        rng = np.random.default_rng(3)
        model = QueryModel(tlds=("com", "net", "org"), junk_fraction=0.5)
        for query in model.draw_queries(rng, 60):
            server.handle_wire(query.encode())
        stats = server.stats
        assert stats.queries == 60
        assert stats.referrals > 0
        assert stats.nxdomain > 0
        assert stats.total_responses() == 60


class TestQueryModel:
    def test_qtype_mix_plausible(self):
        rng = np.random.default_rng(0)
        qtypes = QueryModel().draw_qtypes(rng, 4000)
        a_share = float(np.mean(qtypes == QType.A))
        assert 0.35 < a_share < 0.55

    def test_junk_fraction_respected(self):
        rng = np.random.default_rng(0)
        model = QueryModel(junk_fraction=0.0)
        zone = RootZone.synthetic(POPULAR_TLDS)
        for _ in range(200):
            name = model.draw_qname(rng)
            assert zone.delegation_for(name) is not None

    def test_queries_decode(self):
        rng = np.random.default_rng(0)
        for query in QueryModel().draw_queries(rng, 50):
            assert Message.decode(query.encode()).questions

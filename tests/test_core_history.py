"""Per-block history training."""

import numpy as np
import pytest

from repro.core.history import BlockHistory, train_histories, train_history
from repro.traffic.rates import DensityClass
from repro.traffic.seasonal import DiurnalPattern
from repro.traffic.sources import modulated_poisson_times, poisson_times

DAY = 86400.0


class TestTrainHistory:
    def test_rate_estimate(self):
        rng = np.random.default_rng(0)
        times = poisson_times(rng, 0.05, 0, DAY)
        history = train_history(times, 0, DAY)
        assert history.mean_rate == pytest.approx(0.05, rel=0.1)
        assert history.observed_count == times.size

    def test_gap_statistics(self):
        times = np.array([0.0, 10.0, 20.0, 30.0, 100.0])
        history = train_history(times, 0, 200)
        assert history.median_gap == 10.0
        assert history.max_gap == 70.0
        assert history.p95_gap > 10.0

    def test_empty_block(self):
        history = train_history(np.empty(0), 0, DAY)
        assert history.mean_rate == 0.0
        assert history.median_gap == DAY
        assert history.density is DensityClass.UNMEASURABLE

    def test_window_filtering(self):
        times = np.array([-5.0, 10.0, 20.0, 999.0])
        history = train_history(times, 0, 100)
        assert history.observed_count == 2

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            train_history(np.empty(0), 10, 10)

    def test_burstiness_poisson_near_one(self):
        rng = np.random.default_rng(1)
        times = poisson_times(rng, 0.5, 0, DAY)
        history = train_history(times, 0, DAY)
        assert history.burstiness == pytest.approx(1.0, abs=0.3)

    def test_diurnal_profile_learned(self):
        rng = np.random.default_rng(2)
        pattern = DiurnalPattern(amplitude=0.8, peak_hour=12.0)
        times = modulated_poisson_times(rng, 0.1, pattern, 0, DAY)
        history = train_history(times, 0, DAY)
        assert history.diurnal_profile is not None
        profile = history.diurnal_profile
        assert profile[12] > profile[0]
        assert profile.mean() == pytest.approx(1.0, abs=0.05)

    def test_no_profile_for_sparse(self):
        rng = np.random.default_rng(3)
        times = poisson_times(rng, 0.001, 0, DAY)
        history = train_history(times, 0, DAY)
        assert history.diurnal_profile is None

    def test_no_profile_when_disabled(self):
        rng = np.random.default_rng(4)
        times = poisson_times(rng, 0.1, 0, DAY)
        history = train_history(times, 0, DAY, learn_diurnal=False)
        assert history.diurnal_profile is None


class TestDerivedQuantities:
    def test_empty_bin_probability_decreases_with_bin(self):
        history = BlockHistory(mean_rate=0.01, observed_count=864,
                               training_seconds=DAY, median_gap=100,
                               p95_gap=300, max_gap=800)
        p300 = history.empty_bin_probability(300)
        p3600 = history.empty_bin_probability(3600)
        assert p3600 < p300 < 1.0

    def test_burstiness_inflates_empty_probability(self):
        smooth = BlockHistory(0.01, 864, DAY, 100, 300, 800, burstiness=1.0)
        bursty = BlockHistory(0.01, 864, DAY, 100, 300, 800, burstiness=9.0)
        assert bursty.empty_bin_probability(300) > \
            smooth.empty_bin_probability(300)

    def test_trough_rate_used_for_tuning(self):
        profile = np.ones(24)
        profile[3] = 0.2
        profile /= profile.mean()
        history = BlockHistory(0.1, 8640, DAY, 10, 30, 100,
                               diurnal_profile=profile)
        assert history.min_rate() < 0.1

    def test_likelihood_rate_hour_aware(self):
        profile = np.ones(24)
        profile[3] = 0.0  # silent hour
        history = BlockHistory(0.1, 8640, DAY, 10, 30, 100,
                               diurnal_profile=profile)
        assert history.likelihood_rate_at(3 * 3600.0) == 0.0
        assert history.likelihood_rate_at(12 * 3600.0) > 0.0
        # empty bin in the silent hour carries no down evidence
        assert history.empty_bin_probability_at(3 * 3600.0, 300) == 1.0

    def test_likelihood_peak_shrunk(self):
        profile = np.ones(24)
        profile[12] = 3.0
        history = BlockHistory(0.1, 8640, DAY, 10, 30, 100,
                               diurnal_profile=profile)
        # peak factor 3 is shrunk to 0.75*3 + 0.25 = 2.5
        assert history.likelihood_rate_at(12 * 3600.0) == \
            pytest.approx(0.1 * 2.5)

    def test_likelihood_rates_vectorised_matches_scalar(self):
        rng = np.random.default_rng(5)
        profile = rng.uniform(0.2, 2.0, 24)
        profile /= profile.mean()
        history = BlockHistory(0.05, 4320, DAY, 20, 60, 200,
                               burstiness=2.0, diurnal_profile=profile)
        times = np.array([0.0, 3700.0, 50000.0, 86399.0, 90000.0])
        vectorised = history.likelihood_rates(times)
        scalar = [history.likelihood_rate_at(t) for t in times]
        assert np.allclose(vectorised, scalar)

    def test_expected_rate_at(self):
        profile = np.full(24, 1.0)
        profile[0] = 2.0
        history = BlockHistory(0.1, 8640, DAY, 10, 30, 100,
                               diurnal_profile=profile)
        assert history.expected_rate_at(100.0) == pytest.approx(0.2)
        assert history.expected_rate_at(12 * 3600.0) == pytest.approx(0.1)


class TestTrainHistories:
    def test_trains_every_block(self):
        rng = np.random.default_rng(6)
        per_block = {k: poisson_times(rng, 0.01, 0, DAY) for k in range(5)}
        histories = train_histories(per_block, 0, DAY)
        assert set(histories) == set(per_block)
        for history in histories.values():
            assert history.training_seconds == DAY

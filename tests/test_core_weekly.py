"""Weekly (day-of-week) seasonality learning and use."""

import numpy as np
import pytest

from repro.core.detector import PassiveDetector
from repro.core.history import train_histories, train_history
from repro.core.parameters import ParameterPlanner
from repro.core.serialize import model_from_json, model_to_json
from repro.core.pipeline import PassiveOutagePipeline
from repro.net.addr import Family
from repro.traffic.sources import poisson_times

DAY = 86400.0
WEEK = 7 * DAY


def weekend_quiet_times(rng, rate, start, end, weekend_factor=0.1):
    """Traffic that nearly vanishes on days 5 and 6 of each week."""
    pieces = []
    day_index = int(start // DAY)
    cursor = start
    while cursor < end:
        day_end = min((day_index + 1) * DAY, end)
        day_of_week = day_index % 7
        day_rate = rate * (weekend_factor if day_of_week >= 5 else 1.0)
        pieces.append(poisson_times(rng, day_rate, cursor, day_end))
        cursor = day_end
        day_index += 1
    return np.concatenate(pieces)


class TestLearning:
    def test_weekly_profile_learned_from_full_week(self):
        rng = np.random.default_rng(1)
        times = weekend_quiet_times(rng, 0.05, 0, WEEK)
        history = train_history(times, 0, WEEK)
        assert history.weekly_profile is not None
        profile = history.weekly_profile
        assert profile.shape == (7,)
        assert profile.mean() == pytest.approx(1.0, abs=0.05)
        assert profile[5] < 0.4 * profile[0]
        assert profile[6] < 0.4 * profile[0]

    def test_no_weekly_profile_from_one_day(self):
        rng = np.random.default_rng(2)
        times = poisson_times(rng, 0.05, 0, DAY)
        history = train_history(times, 0, DAY)
        assert history.weekly_profile is None

    def test_expected_rate_uses_weekday(self):
        rng = np.random.default_rng(3)
        times = weekend_quiet_times(rng, 0.05, 0, WEEK)
        history = train_history(times, 0, WEEK)
        weekday_rate = history.expected_rate_at(0.5 * DAY)     # day 0
        weekend_rate = history.expected_rate_at(5.5 * DAY)     # day 5
        assert weekend_rate < 0.5 * weekday_rate

    def test_likelihood_rates_vector_matches_scalar(self):
        rng = np.random.default_rng(4)
        times = weekend_quiet_times(rng, 0.05, 0, WEEK)
        history = train_history(times, 0, WEEK)
        probe_times = np.array([0.2 * DAY, 5.3 * DAY, 6.9 * DAY, 7.1 * DAY])
        vectorised = history.likelihood_rates(probe_times)
        scalar = [history.likelihood_rate_at(t) for t in probe_times]
        assert np.allclose(vectorised, scalar)


class TestDetectionBehaviour:
    def test_weekend_lull_is_not_an_outage(self):
        """A block whose traffic drops 10x at weekends must not be
        declared down every Saturday."""
        rng = np.random.default_rng(5)
        # Train over week one, detect over week two (no real outage).
        train = {9: weekend_quiet_times(rng, 0.05, 0, WEEK)}
        evaluate = {9: weekend_quiet_times(rng, 0.05, WEEK, 2 * WEEK)}
        histories = train_histories(train, 0, WEEK)
        parameters = ParameterPlanner().plan(histories)
        results = PassiveDetector().detect(
            Family.IPV4, evaluate, histories, parameters, WEEK, 2 * WEEK)
        # Weekend spans days 12 and 13 (of the fortnight).
        weekend = results[9].timeline.clip(12 * DAY, 14 * DAY)
        assert weekend.availability() > 0.9

    def test_weekly_profile_survives_serialization(self):
        rng = np.random.default_rng(6)
        per_block = {9: weekend_quiet_times(rng, 0.05, 0, WEEK)}
        model = PassiveOutagePipeline().train(Family.IPV4, per_block,
                                              0, WEEK)
        restored = model_from_json(model_to_json(model))
        assert np.allclose(restored.histories[9].weekly_profile,
                           model.histories[9].weekly_profile)

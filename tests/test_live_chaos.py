"""Live-chaos suite: partition failure containment on an unbounded stream.

The contract: a partition worker that crashes mid-stream restarts from
its last checkpoint and replays only the gap — the merged run output
is bit-for-bit identical to a fault-free run.  A partition that keeps
dying exhausts its restart budget and degrades to *lost coverage*
(dead-lettered, accounted, exit 4 under ``--strict-coverage``) while
its siblings keep advancing.  SIGTERM is an operator action, not a
failure: both deployment shapes flush checkpoints and exit 0.

Faults reach spawned workers through the test-only environment channel
(:data:`repro.testing.faults.PROCESS_FAULT_ENV`) with window-deferred
triggers — a streaming worker has no shard entry to fault, so chaos
keys off ``windows_closed`` progress instead.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import EXIT_DEGRADED_COVERAGE, main
from repro.core.checkpoint import load_checkpoint_rotated
from repro.core.serialize import load_model
from repro.live import DriftConfig, LivePartitionSupervisor
from repro.obs.explain import ExplainLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer
from repro.parallel import SupervisionPolicy
from repro.telescope.capture import CaptureReader, CaptureWriter
from repro.testing.faults import (
    after_windows,
    crash_on_block,
    process_fault_env,
    slow_on_block,
)

pytestmark = pytest.mark.faults

DAY = 86400.0
DRIFT = DriftConfig(audit_every=7200.0)

#: Backoff tuned for test wall-clock; semantics identical to defaults.
FAST_POLICY = dict(retries=2, backoff_base=0.01, backoff_factor=2.0,
                   backoff_cap=0.05)

COUNTERS = ["stream_observations_total", "stream_bins_total",
            "drift_blocks_flagged_total", "drift_hot_swaps_total"]


@pytest.fixture(scope="module")
def live_setup(tmp_path_factory):
    root = tmp_path_factory.mktemp("live_chaos")
    capture = str(root / "capture.pobs")
    model_path = str(root / "model.json")
    assert main(["simulate", "--blocks", "24", "--days", "2",
                 "--seed", "7", "--out", capture]) == 0
    assert main(["train", capture, "--train-end", str(DAY),
                 "--out", model_path]) == 0
    return capture, model_path, load_model(model_path)


def run_partitioned(model, capture, checkpoint_dir, *, stop=None,
                    registry=None, **policy):
    for key, value in FAST_POLICY.items():
        policy.setdefault(key, value)
    registry = registry if registry is not None else MetricsRegistry()
    os.makedirs(checkpoint_dir, exist_ok=True)
    supervisor = LivePartitionSupervisor(
        model, partitions=4, policy=SupervisionPolicy(**policy),
        checkpoint_dir=str(checkpoint_dir), checkpoint_every=1800.0,
        reorder_horizon=2.0, drift=DRIFT, metrics=registry,
        stop_requested=stop)
    return supervisor.run(capture), registry, supervisor


def event_tuples(results, min_duration=300.0):
    return [(key, event.start, event.end)
            for key in sorted(results)
            for event in results[key].timeline.events(min_duration)]


def comparable_health(report):
    document = report.as_dict()
    document.pop("coverage", None)
    for stage in document.get("stages", []):
        stage["seconds"] = 0.0
    return document


def set_faults(monkeypatch, *hooks, counter_dir):
    os.makedirs(counter_dir, exist_ok=True)
    for key, value in process_fault_env(
            *hooks, counter_dir=str(counter_dir)).items():
        monkeypatch.setenv(key, value)


@pytest.fixture(scope="module")
def clean_baseline(live_setup, tmp_path_factory):
    """Fault-free partitioned run: the ground truth every chaos run
    must match (on surviving blocks)."""
    capture, _, model = live_setup
    ckpt = tmp_path_factory.mktemp("baseline_ckpt")
    result, registry, _ = run_partitioned(model, capture, ckpt)
    assert result.restarts == 0 and not result.degraded
    return result, registry


class TestCrashRestart:
    def test_restarted_run_is_bit_identical(self, live_setup, clean_baseline,
                                            tmp_path, monkeypatch):
        capture, _, model = live_setup
        baseline, base_reg = clean_baseline
        victim = sorted(model.parameters)[0]
        set_faults(monkeypatch,
                   after_windows(crash_on_block(victim, times=1), 50),
                   counter_dir=tmp_path / "counters")
        result, registry, _ = run_partitioned(model, capture,
                                              tmp_path / "ckpt")
        # The worker died once, restarted from its checkpoint, and the
        # parent replayed exactly the gap since that checkpoint.
        assert result.restarts == 1
        assert result.replayed_rows > 0
        assert not result.degraded
        assert event_tuples(result.results) == event_tuples(baseline.results)
        assert (comparable_health(result.health)
                == comparable_health(baseline.health))
        for name in COUNTERS:
            assert registry.value(name) == base_reg.value(name), name
        # The restart is visible in coverage accounting, not in output.
        attempts = {record.unit: record.outcomes
                    for record in result.health.coverage.shard_attempts}
        assert any("crash" in outcomes for outcomes in attempts.values())

    def test_persistent_killer_degrades_to_lost_coverage(
            self, live_setup, clean_baseline, tmp_path, monkeypatch):
        capture, _, model = live_setup
        baseline, _ = clean_baseline
        victim = sorted(model.parameters)[0]
        set_faults(monkeypatch,
                   after_windows(crash_on_block(victim), 50),  # times=None
                   counter_dir=tmp_path / "counters")
        result, _, supervisor = run_partitioned(model, capture,
                                                tmp_path / "ckpt")
        # Restart budget exhausted: blocks lost, run degraded — not dead.
        assert result.degraded
        lost_partition = supervisor.partitions[0]
        assert lost_partition.status == "lost"
        assert victim in lost_partition.keys
        coverage = result.health.coverage
        assert coverage.degraded
        assert sorted(coverage.blocks_lost) == lost_partition.measurable
        # Full-population accounting still holds: every measurable block
        # is a result, a dead letter, or a named loss.
        assert result.health.accounts_for(model.measurable_keys)
        # Siblings never noticed: surviving blocks match the baseline.
        survivors = set(model.parameters) - set(lost_partition.keys)
        assert sorted(result.results) == sorted(survivors
                                                & set(baseline.results))
        baseline_surviving = {key: block
                              for key, block in baseline.results.items()
                              if key in survivors}
        assert (event_tuples(result.results)
                == event_tuples(baseline_surviving))

    def test_strict_coverage_exit_code(self, live_setup, tmp_path,
                                       monkeypatch, capsys):
        capture, model_path, model = live_setup
        victim = sorted(model.parameters)[0]
        set_faults(monkeypatch,
                   after_windows(crash_on_block(victim), 50),
                   counter_dir=tmp_path / "counters")
        health_path = tmp_path / "health.json"
        code = main(["live", capture, "--model", model_path,
                     "--checkpoint", str(tmp_path / "ckpt"),
                     "--partitions", "4", "--partition-retries", "1",
                     "--checkpoint-every", "1800",
                     "--strict-coverage",
                     "--health-report", str(health_path)])
        captured = capsys.readouterr()
        assert code == EXIT_DEGRADED_COVERAGE
        assert "live coverage degraded" in captured.out
        assert "dead-lettered under stage=stream" in captured.out
        document = json.loads(health_path.read_text())
        assert document["coverage"]["blocks_lost"]
        # The manifest records the loss for post-mortem inspection.
        manifest = json.loads(
            (tmp_path / "ckpt" / "live-manifest.json").read_text())
        assert manifest["status"] == "degraded"
        assert any(entry["status"] == "lost"
                   for entry in manifest["partitions"])

        # CI uploads the degraded-run health report as an artifact.
        artifact = os.environ.get("REPRO_LIVE_CHAOS_HEALTH_OUT")
        if artifact:
            with open(artifact, "w", encoding="utf-8") as handle:
                handle.write(health_path.read_text())


class TestGracefulShutdown:
    def test_supervisor_stop_checkpoints_and_resumes(
            self, live_setup, clean_baseline, tmp_path):
        capture, _, model = live_setup
        baseline, base_reg = clean_baseline
        ckpt = tmp_path / "ckpt"
        # Stop halfway through the *live* half of the capture, so every
        # worker demonstrably holds mid-stream state when told to quit.
        from repro.telescope.capture import CaptureReader

        with CaptureReader(capture) as reader:
            times = [observation.time for observation in reader]
        live = sum(1 for t in times if t >= model.train_end)
        threshold = (len(times) - live) + live // 2
        seen = {"count": 0}

        def stop_mid_live():
            seen["count"] += 1
            return seen["count"] > threshold

        interrupted, _, _ = run_partitioned(model, capture, ckpt,
                                            stop=stop_mid_live)
        assert interrupted.interrupted
        manifest = json.loads((ckpt / "live-manifest.json").read_text())
        assert manifest["status"] == "interrupted"
        # Every partition flushed a loadable checkpoint mid-stream.
        for entry in manifest["partitions"]:
            detector = load_checkpoint_rotated(
                str(ckpt / entry["checkpoint"]), model)
            assert detector.last_time > model.train_end
            assert detector.restored_extra is not None
        # Resuming over the same directory replays the gap and converges
        # on the fault-free output, counters included (they ride in the
        # checkpoints).
        resumed, res_reg, _ = run_partitioned(model, capture, ckpt)
        assert not resumed.interrupted
        assert event_tuples(resumed.results) == event_tuples(
            baseline.results)
        assert (comparable_health(resumed.health)
                == comparable_health(baseline.health))
        for name in COUNTERS:
            assert res_reg.value(name) == base_reg.value(name), name

    def test_sigterm_flushes_a_loadable_checkpoint(self, live_setup,
                                                   tmp_path):
        """Kill a single-process monitor mid-window; it must exit 0 with
        a resumable checkpoint on disk."""
        capture, model_path, model = live_setup
        victim = sorted(model.parameters)[0]
        checkpoint = tmp_path / "live.ckpt.json"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # Drag every window close so SIGTERM reliably lands mid-stream.
        env.update(process_fault_env(
            after_windows(slow_on_block(victim, seconds=0.02), 1),
            counter_dir=str(tmp_path / "counters")))
        os.makedirs(tmp_path / "counters", exist_ok=True)
        process = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; "
             "sys.exit(main(sys.argv[1:]))",
             "live", capture, "--model", model_path,
             "--checkpoint", str(checkpoint),
             "--checkpoint-every", "600"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if checkpoint.exists() or process.poll() is not None:
                    break
                time.sleep(0.05)
            assert process.poll() is None, (
                "monitor finished before SIGTERM could land: "
                + process.communicate()[1])
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert "interrupted: stopping cleanly" in stderr
        assert "checkpoint saved" in stderr
        detector = load_checkpoint_rotated(str(checkpoint), model)
        assert detector.last_time > model.train_end  # mid-stream state
        assert main(["live", capture, "--model", model_path,
                     "--checkpoint", str(checkpoint),
                     "--checkpoint-every", "600"]) == 0


class TestObservabilityPlane:
    """One crashing partitioned run, observed end to end.

    The same run must yield: worker counters folded into the parent
    registry with no restart double-count, one coherent trace holding
    the respawned worker under the parent's trace id, the workers'
    decision provenance, and a /health document that accounts for the
    fleet.  The module's stock capture has no eval-window outage, so a
    doctored copy silences two blocks (owned by partitions that do
    *not* crash) mid-stream — a guaranteed decision for the explain
    piggyback to carry home.
    """

    @pytest.fixture(scope="class")
    def doctored(self, live_setup, tmp_path_factory):
        capture, _, model = live_setup
        root = tmp_path_factory.mktemp("obs_plane")
        keys = sorted(model.parameters)
        chunk = -(-len(keys) // 4)
        victims = {keys[chunk + 2], keys[2 * chunk + 2]}
        down = model.train_end + 21600.0
        up = model.train_end + 43200.0
        path = str(root / "outage.pobs")
        with CaptureWriter(path) as writer:
            for observation in CaptureReader(capture):
                if (observation.block_key in victims
                        and down <= observation.time < up):
                    continue
                writer.write(observation)
        return path, sorted(victims), root

    @pytest.fixture(scope="class")
    def clean_doctored_run(self, live_setup, doctored):
        _, _, model = live_setup
        capture, victims, root = doctored
        result, registry, _ = run_partitioned(model, capture,
                                              root / "clean_ckpt")
        assert result.restarts == 0
        # The injected silences really read as outages.
        assert {key for key, _, _ in event_tuples(result.results)} \
            >= set(victims)
        return result, registry

    @pytest.fixture(scope="class")
    def observed_crash_run(self, live_setup, doctored):
        _, _, model = live_setup
        capture, _, root = doctored
        crash_victim = sorted(model.parameters)[0]
        registry, tracer, explain = (MetricsRegistry(), SpanTracer(),
                                     ExplainLog())
        patcher = pytest.MonkeyPatch()
        try:
            os.makedirs(root / "counters", exist_ok=True)
            for key, value in process_fault_env(
                    after_windows(crash_on_block(crash_victim, times=1), 50),
                    counter_dir=str(root / "counters")).items():
                patcher.setenv(key, value)
            os.makedirs(root / "ckpt", exist_ok=True)
            supervisor = LivePartitionSupervisor(
                model, partitions=4, policy=SupervisionPolicy(**FAST_POLICY),
                checkpoint_dir=str(root / "ckpt"), checkpoint_every=1800.0,
                reorder_horizon=2.0, drift=DRIFT, metrics=registry,
                tracer=tracer, explain=explain)
            result = supervisor.run(capture)
        finally:
            patcher.undo()
        return result, registry, tracer, explain, supervisor

    def test_counters_survive_the_restart_without_double_count(
            self, clean_doctored_run, observed_crash_run):
        result, registry, _, _, supervisor = observed_crash_run
        _, base_reg = clean_doctored_run
        assert result.restarts == 1 and not result.degraded
        # Heartbeat deltas actually folded mid-run (not just the final
        # document), and the shadow rollback kept totals exact.
        assert any(p.folded_metrics_seq for p in supervisor.partitions)
        for name in COUNTERS:
            assert registry.value(name) == base_reg.value(name), name

    def test_one_trace_spans_the_fleet_across_the_restart(
            self, observed_crash_run):
        _, _, tracer, _, supervisor = observed_crash_run
        names = {span.name for span in tracer.spans}
        assert {"partition_dispatch", "partition_merge",
                "partition_restart"} <= names
        worker_spans = [span for span in tracer.spans if span.pid]
        worker_names = {span.name for span in worker_spans}
        assert {"partition_restore", "partition_checkpoint",
                "partition_finalize"} <= worker_names
        # Every partition's surviving incarnation ships its spans home,
        # all under the parent's trace id, each in its own pid lane.
        pids = {span.pid for span in worker_spans}
        assert len(pids) >= len(supervisor.partitions)
        document = tracer.chrome_trace()
        assert document["metadata"]["trace_id"] == tracer.trace_id
        for span in worker_spans:
            assert (span.args.get("trace_id", tracer.trace_id)
                    == tracer.trace_id)

    def test_worker_provenance_reaches_the_parent(
            self, doctored, observed_crash_run):
        _, victims, _ = doctored
        _, _, _, explain, supervisor = observed_crash_run
        assert any(p.explain_folded_seq for p in supervisor.partitions)
        events = explain.events()
        assert events
        assert {event["event"] for event in events} <= {
            "transition", "onset", "recovery", "retraction"}
        # Both silenced blocks explain themselves — provenance crossed
        # from at least two distinct partitions.
        onsets = {event["block"] for event in events
                  if event["event"] == "onset"}
        assert onsets >= set(victims)
        owner = {key: p.index for p in supervisor.partitions
                 for key in p.keys}
        assert len({owner[block] for block in onsets}) >= 2

    def test_health_document_accounts_for_the_fleet(self,
                                                    observed_crash_run):
        _, _, _, _, supervisor = observed_crash_run
        document = supervisor.health_document()
        assert document["run"] == "streaming"
        assert document["restarts"] == 1
        assert len(document["partitions"]) == len(supervisor.partitions)
        for row in document["partitions"]:
            assert row["status"] == "done"
            assert row["watermark_lag"] >= 0.0
        assert document["global_watermark"] <= document["stream_front"]

    def test_piggyback_fold_is_idempotent(self, live_setup):
        _, _, model = live_setup
        supervisor = LivePartitionSupervisor(
            model, partitions=2, metrics=MetricsRegistry(),
            explain=ExplainLog())
        partition = supervisor.partitions[0]
        worker = MetricsRegistry()
        worker.counter("stream_observations_total", "rows").inc(5)
        info = {"metrics_seq": 1, "metrics_delta": worker.snapshot(),
                "explain": [{"event": "onset", "block": 1, "seq": 1}]}
        for _ in range(3):  # re-delivered heartbeat folds exactly once
            supervisor._fold_piggyback(partition, info)
        assert supervisor.metrics.value("stream_observations_total") == 5
        assert len(supervisor.explain) == 1
        assert partition.folded_metrics_seq == 1
        assert partition.explain_folded_seq == 1

"""Address parsing, formatting, and arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import (
    MAX_IPV4,
    MAX_IPV6,
    Address,
    AddressError,
    Family,
    format_ipv4,
    format_ipv6,
    parse_address,
    parse_ipv4,
    parse_ipv6,
)


class TestParseIpv4:
    def test_basic(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == MAX_IPV4
        assert parse_ipv4("192.0.2.1") == 0xC0000201

    def test_rejects_short_forms(self):
        with pytest.raises(AddressError):
            parse_ipv4("10.1")

    def test_rejects_out_of_range_octet(self):
        with pytest.raises(AddressError):
            parse_ipv4("1.2.3.256")

    def test_rejects_leading_zero(self):
        with pytest.raises(AddressError):
            parse_ipv4("192.0.02.1")

    def test_rejects_garbage(self):
        for text in ("", "a.b.c.d", "1..2.3", "1.2.3.4.5", "1.2.3.-4"):
            with pytest.raises(AddressError):
                parse_ipv4(text)


class TestParseIpv6:
    def test_full_form(self):
        assert parse_ipv6("2001:0db8:0000:0000:0000:0000:0000:0001") == \
            0x20010DB8000000000000000000000001

    def test_compressed(self):
        assert parse_ipv6("2001:db8::1") == \
            0x20010DB8000000000000000000000001
        assert parse_ipv6("::") == 0
        assert parse_ipv6("::1") == 1
        assert parse_ipv6("fe80::") == 0xFE80 << 112

    def test_embedded_ipv4(self):
        assert parse_ipv6("::ffff:192.0.2.1") == \
            (0xFFFF << 32) | 0xC0000201

    def test_rejects_double_compression(self):
        with pytest.raises(AddressError):
            parse_ipv6("1::2::3")

    def test_rejects_too_many_groups(self):
        with pytest.raises(AddressError):
            parse_ipv6("1:2:3:4:5:6:7:8:9")

    def test_rejects_wide_group(self):
        with pytest.raises(AddressError):
            parse_ipv6("12345::")

    def test_rejects_useless_compression(self):
        # '::' must stand for at least one zero group.
        with pytest.raises(AddressError):
            parse_ipv6("1:2:3:4::5:6:7:8")


class TestFormat:
    def test_ipv4(self):
        assert format_ipv4(0xC0000201) == "192.0.2.1"
        assert format_ipv4(0) == "0.0.0.0"

    def test_ipv4_range_check(self):
        with pytest.raises(AddressError):
            format_ipv4(MAX_IPV4 + 1)

    def test_ipv6_compression_longest_run(self):
        assert format_ipv6(parse_ipv6("1:0:0:2:0:0:0:3")) == "1:0:0:2::3"

    def test_ipv6_no_single_zero_compression(self):
        assert format_ipv6(parse_ipv6("1:0:2:3:4:5:6:7")) == "1:0:2:3:4:5:6:7"

    def test_ipv6_all_zero(self):
        assert format_ipv6(0) == "::"


class TestAddress:
    def test_parse_dispatch(self):
        assert Address.parse("10.0.0.1").family is Family.IPV4
        assert Address.parse("2001:db8::1").family is Family.IPV6

    def test_range_validation(self):
        with pytest.raises(AddressError):
            Address(Family.IPV4, MAX_IPV4 + 1)
        with pytest.raises(AddressError):
            Address(Family.IPV6, -1)

    def test_ordering_is_family_then_value(self):
        v4 = Address.parse("255.255.255.255")
        v6 = Address.parse("::1")
        assert v4 < v6  # IPv4 sorts before IPv6

    def test_shifted(self):
        base = Address.parse("192.0.2.1")
        assert str(base.shifted(1)) == "192.0.2.2"
        assert str(base.shifted(-1)) == "192.0.2.0"

    def test_hosts_in_prefix(self):
        hosts = list(Address.parse("192.0.2.7").hosts_in_prefix(30))
        assert [str(h) for h in hosts] == [
            "192.0.2.4", "192.0.2.5", "192.0.2.6", "192.0.2.7"]

    def test_hosts_in_prefix_refuses_huge(self):
        with pytest.raises(AddressError):
            next(Address.parse("2001:db8::").hosts_in_prefix(48))

    def test_family_properties(self):
        assert Family.IPV4.bits == 32
        assert Family.IPV6.bits == 128
        assert Family.IPV4.default_block_prefix == 24
        assert Family.IPV6.default_block_prefix == 48


@given(st.integers(min_value=0, max_value=MAX_IPV4))
def test_ipv4_roundtrip(value):
    assert parse_ipv4(format_ipv4(value)) == value


@given(st.integers(min_value=0, max_value=MAX_IPV6))
def test_ipv6_roundtrip(value):
    assert parse_ipv6(format_ipv6(value)) == value


@given(st.integers(min_value=0, max_value=MAX_IPV6))
def test_parse_address_roundtrip(value):
    family, parsed = parse_address(format_ipv6(value))
    assert family is Family.IPV6
    assert parsed == value

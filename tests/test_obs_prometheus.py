"""Golden-file test for the Prometheus text exposition format.

The exposition output is an interface to external scrapers, so it is
pinned byte-for-byte against ``tests/data/prometheus.golden``: any
change to escaping, label ordering, bucket rendering, or number
formatting must show up as a reviewed diff of that file, not as a
silently reshaped scrape.
"""

import pathlib
import re

import pytest

from repro.obs.metrics import MetricsRegistry

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "prometheus.golden"


def build_exposition_registry():
    """A registry exercising every rendering rule."""
    registry = MetricsRegistry()
    # Help text with a backslash and a newline: both must be escaped.
    runs = registry.counter("runs_total",
                            "Total runs (paths use \\ on win)\nsecond line")
    runs.inc(3)
    # Label values with a quote, a backslash, and a newline.
    files = registry.counter("files_total", "Files by path",
                             labelnames=("path",))
    files.labels(path='C:\\tmp\\"day".pobs').inc(2)
    files.labels(path="plain\nname").inc(1)
    # Multiple label names: must render sorted by label name.
    pairs = registry.gauge("pair_gauge", "Two labels",
                           labelnames=("zebra", "alpha"))
    pairs.labels(zebra="z", alpha="a").set(1.5)
    # Histogram: cumulative buckets, +Inf last, int-valued floats
    # rendered as integers.
    latency = registry.histogram("latency_seconds", "Latency",
                                 buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        latency.observe(value)
    # Bucket-edge semantics: Prometheus `le` buckets are cumulative
    # *upper-inclusive*, so a sample exactly on a boundary lands in
    # that boundary's bucket, not the next one up.
    edges = registry.histogram("edge_seconds", "Boundary samples",
                               buckets=(1.0, 2.0, 4.0))
    for value in (1.0, 2.0, 2.0, 4.0):
        edges.observe(value)
    # Non-finite samples: +/-Inf count (in the +Inf bucket / below the
    # lowest bound), NaN counts toward _count but is excluded from
    # _sum and min/max so one poisoned sample cannot erase the series.
    edges.observe(float("inf"))
    edges.observe(float("nan"))
    # Labeled histogram: the belief hot-path families are split by
    # ``path`` (single-pass / fused / streaming close different units),
    # so the exposition must render bucket series per label value.
    belief = registry.histogram("belief_pass_seconds",
                                "Wall-time of one vectorised belief pass",
                                labelnames=("path",),
                                buckets=(0.001, 0.1))
    belief.labels(path="single").observe(0.0005)
    belief.labels(path="stream").observe(0.05)
    registry.counter("belief_bins_total",
                     "Bins filtered by the vectorised belief pass",
                     labelnames=("path",)).labels(path="stream").inc(7)
    # An unhelped metric: no # HELP line.
    registry.gauge("bare_gauge").set(2)
    return registry


class TestGoldenFile:
    def test_matches_golden_byte_for_byte(self):
        rendered = build_exposition_registry().to_prometheus()
        assert rendered == GOLDEN_PATH.read_text(encoding="utf-8"), (
            "Prometheus exposition changed; if intentional, regenerate "
            "tests/data/prometheus.golden from "
            "build_exposition_registry().to_prometheus()")


class TestExpositionRules:
    @pytest.fixture()
    def text(self):
        return build_exposition_registry().to_prometheus()

    def test_help_and_type_lines(self, text):
        assert ("# HELP runs_total Total runs (paths use \\\\ on win)"
                "\\nsecond line") in text
        assert "# TYPE runs_total counter" in text
        assert "# TYPE latency_seconds histogram" in text
        # Unhelped metric still gets its TYPE line, but no HELP line.
        assert "# TYPE bare_gauge gauge" in text
        assert "# HELP bare_gauge" not in text

    def test_label_value_escaping(self, text):
        assert r'path="C:\\tmp\\\"day\".pobs"' in text
        assert r'path="plain\nname"' in text

    def test_label_names_sorted_with_le_last(self, text):
        assert 'pair_gauge{alpha="a",zebra="z"} 1.5' in text
        for line in text.splitlines():
            if line.startswith("latency_seconds_bucket"):
                names = re.findall(r'(\w+)=', line)
                assert names == sorted(n for n in names if n != "le") + ["le"]

    def test_histogram_buckets_cumulative_and_monotone(self, text):
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("latency_seconds_bucket")]
        assert counts == [1, 3, 4, 5]
        assert counts == sorted(counts)  # le-cumulativity is monotone
        assert 'le="+Inf"' in text
        assert "latency_seconds_count 5" in text
        assert "latency_seconds_sum 56.05" in text

    def test_boundary_samples_land_in_their_le_bucket(self, text):
        # 1.0 -> le="1", both 2.0s -> le="2", 4.0 -> le="4": on-boundary
        # values are upper-inclusive, exactly Prometheus `le` semantics.
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("edge_seconds_bucket")]
        assert counts == [1, 3, 4, 6]

    def test_nonfinite_samples_counted_but_not_summed(self, text):
        # inf lands in the +Inf bucket; NaN counts toward _count only.
        assert "edge_seconds_count 6" in text
        assert "edge_seconds_sum +Inf" in text

    def test_integer_values_render_without_decimal(self, text):
        assert "runs_total 3" in text
        assert "bare_gauge 2" in text

    def test_ends_with_newline(self, text):
        assert text.endswith("\n")

"""Trained-model persistence."""

import io
import json

import numpy as np
import pytest

from repro.core.pipeline import PassiveOutagePipeline
from repro.core.serialize import (
    MODEL_FORMAT_VERSION,
    ModelFormatError,
    load_model,
    model_from_json,
    model_to_json,
    save_model,
)
from repro.net.addr import Family
from repro.traffic.seasonal import DiurnalPattern
from repro.traffic.sources import modulated_poisson_times, poisson_times

DAY = 86400.0


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(55)
    pattern = DiurnalPattern(amplitude=0.5, peak_hour=10.0)
    per_block = {
        1: poisson_times(rng, 0.2, 0, DAY),           # dense
        2: poisson_times(rng, 0.002, 0, DAY),         # sparse
        3: modulated_poisson_times(rng, 0.1, pattern, 0, DAY),  # diurnal
        4: poisson_times(rng, 1e-5, 0, DAY),          # unmeasurable
    }
    return PassiveOutagePipeline().train(Family.IPV4, per_block, 0, DAY)


class TestRoundtrip:
    def test_json_roundtrip_preserves_everything(self, model):
        restored = model_from_json(model_to_json(model))
        assert restored.family is model.family
        assert restored.train_start == model.train_start
        assert restored.train_end == model.train_end
        assert set(restored.histories) == set(model.histories)
        for key in model.histories:
            original = model.histories[key]
            loaded = restored.histories[key]
            assert loaded.mean_rate == original.mean_rate
            assert loaded.max_gap == original.max_gap
            if original.diurnal_profile is None:
                assert loaded.diurnal_profile is None
            else:
                assert np.allclose(loaded.diurnal_profile,
                                   original.diurnal_profile)
            assert restored.parameters[key] == model.parameters[key]

    def test_measurability_preserved(self, model):
        restored = model_from_json(model_to_json(model))
        assert restored.measurable_keys == model.measurable_keys
        assert restored.unmeasurable_keys == model.unmeasurable_keys

    def test_infinite_gap_threshold_roundtrips(self, model):
        unmeasurable = model.parameters[4]
        assert unmeasurable.gap_threshold_seconds == float("inf")
        restored = model_from_json(model_to_json(model))
        assert restored.parameters[4].gap_threshold_seconds == float("inf")

    def test_detection_identical_after_reload(self, model):
        rng = np.random.default_rng(56)
        evaluate = {key: poisson_times(rng, h.mean_rate, DAY, 2 * DAY)
                    for key, h in model.histories.items()}
        pipeline = PassiveOutagePipeline()
        restored = model_from_json(model_to_json(model))
        direct = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        reloaded = pipeline.detect(restored, evaluate, DAY, 2 * DAY)
        for key in direct.blocks:
            assert direct.blocks[key].timeline == \
                reloaded.blocks[key].timeline

    def test_file_and_stream_io(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, str(path))
        assert load_model(str(path)).measurable_keys == \
            model.measurable_keys
        buffer = io.StringIO()
        save_model(model, buffer)
        buffer.seek(0)
        assert load_model(buffer).measurable_keys == model.measurable_keys


class TestErrors:
    def test_not_json(self):
        with pytest.raises(ModelFormatError):
            model_from_json("{nope")

    def test_wrong_root_type(self):
        with pytest.raises(ModelFormatError):
            model_from_json("[1, 2]")

    def test_future_version_rejected(self, model):
        document = json.loads(model_to_json(model))
        document["format_version"] = MODEL_FORMAT_VERSION + 1
        with pytest.raises(ModelFormatError):
            model_from_json(json.dumps(document))

    def test_missing_fields_rejected(self, model):
        document = json.loads(model_to_json(model))
        del document["blocks"]
        with pytest.raises(ModelFormatError):
            model_from_json(json.dumps(document))

    def test_corrupt_block_entry_rejected(self, model):
        document = json.loads(model_to_json(model))
        first = next(iter(document["blocks"]))
        del document["blocks"][first]["history"]["mean_rate"]
        with pytest.raises(ModelFormatError):
            model_from_json(json.dumps(document))

    def test_document_is_inspectable(self, model):
        """The format is plain JSON an operator can read."""
        document = json.loads(model_to_json(model))
        assert document["format_version"] == MODEL_FORMAT_VERSION
        assert document["family"] == 4
        entry = document["blocks"]["1"]
        assert "mean_rate" in entry["history"]
        assert "bin_seconds" in entry["parameters"]


class TestAtomicWrites:
    """A save killed at any point must leave the old file intact."""

    def test_crash_before_rename_preserves_old_model(self, model, tmp_path,
                                                     monkeypatch):
        import os

        path = tmp_path / "model.json"
        save_model(model, str(path))
        original = path.read_text()

        def killed_replace(src, dst):
            raise OSError("process killed between temp-write and rename")

        monkeypatch.setattr(os, "replace", killed_replace)
        with pytest.raises(OSError):
            save_model(model, str(path))
        assert path.read_text() == original
        assert load_model(str(path)).measurable_keys == model.measurable_keys

    def test_crash_during_temp_write_leaves_no_debris(self, model, tmp_path,
                                                      monkeypatch):
        from repro.core import serialize

        path = tmp_path / "model.json"
        save_model(model, str(path))
        original = path.read_text()

        monkeypatch.setattr(
            serialize, "model_to_json",
            lambda m: (_ for _ in ()).throw(MemoryError("killed mid-build")))
        with pytest.raises(MemoryError):
            save_model(model, str(path))
        assert path.read_text() == original
        assert list(tmp_path.glob("*.tmp")) == []

    def test_fsync_failure_cleans_temp_file(self, model, tmp_path,
                                            monkeypatch):
        import os

        path = tmp_path / "model.json"
        save_model(model, str(path))
        original = path.read_text()

        def failing_fsync(fd):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        with pytest.raises(OSError):
            save_model(model, str(path))
        assert path.read_text() == original
        assert list(tmp_path.glob("*.tmp")) == []

    def test_atomic_write_accepts_pathlib(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        assert load_model(path).train_end == model.train_end

    def test_successful_save_leaves_no_temp_files(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, str(path))
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

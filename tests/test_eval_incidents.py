"""Incident grouping and reporting."""

import pytest

from repro.eval.incidents import (
    Incident,
    format_incident_report,
    group_incidents,
)
from repro.timeline import OutageEvent


class TestGrouping:
    def test_regional_event_forms_one_incident(self):
        # three /24s under one /16 (levels=8), overlapping outages
        events = {
            0xC00001: [OutageEvent(1000, 3000)],
            0xC00002: [OutageEvent(1200, 3100)],
            0xC00003: [OutageEvent(900, 2800)],
        }
        incidents = group_incidents(events, levels=8)
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.block_count == 3
        assert incident.is_regional
        assert incident.start == 900 and incident.end == 3100
        assert incident.block_seconds == pytest.approx(2000 + 1900 + 1900)

    def test_different_regions_stay_separate(self):
        events = {
            0xC00001: [OutageEvent(1000, 2000)],
            0xAA0001: [OutageEvent(1000, 2000)],
        }
        incidents = group_incidents(events, levels=8)
        assert len(incidents) == 2
        assert not any(i.is_regional for i in incidents)

    def test_time_separated_events_split(self):
        events = {
            0xC00001: [OutageEvent(1000, 2000), OutageEvent(50000, 51000)],
        }
        incidents = group_incidents(events, levels=8, slack=600)
        assert len(incidents) == 2

    def test_transitive_chaining(self):
        # A overlaps B, B overlaps C; A and C do not overlap directly.
        events = {
            0xC00001: [OutageEvent(0, 1000)],
            0xC00002: [OutageEvent(900, 2500)],
            0xC00003: [OutageEvent(2400, 4000)],
        }
        incidents = group_incidents(events, levels=8, slack=0)
        assert len(incidents) == 1
        assert incidents[0].block_count == 3

    def test_sorted_by_footprint(self):
        events = {
            0xC00001: [OutageEvent(0, 100)],
            0xAA0001: [OutageEvent(0, 10000)],
        }
        incidents = group_incidents(events, levels=8)
        assert incidents[0].block_seconds > incidents[1].block_seconds

    def test_custom_region_mapping(self):
        # Cluster by AS instead of by supernet.
        events = {
            0xC00001: [OutageEvent(1000, 2000)],
            0xAA0001: [OutageEvent(1100, 2100)],
            0xBB0001: [OutageEvent(1000, 2000)],
        }
        as_of_block = {0xC00001: 64500, 0xAA0001: 64500}  # 0xBB unmapped
        incidents = group_incidents(events, region_of_block=as_of_block)
        assert len(incidents) == 1
        assert incidents[0].block_count == 2

    def test_empty_input(self):
        assert group_incidents({}) == []


class TestReport:
    def test_report_contains_counts(self):
        events = {
            0xC00001: [OutageEvent(1000, 3000)],
            0xC00002: [OutageEvent(1200, 3100)],
            0xAA0001: [OutageEvent(500, 800)],
        }
        incidents = group_incidents(events, levels=8)
        text = format_incident_report(incidents)
        assert "1 regional" in text
        assert "1 single-block" in text
        assert "blocks" in text

    def test_top_limit(self):
        events = {key: [OutageEvent(key * 100.0, key * 100.0 + 50)]
                  for key in range(1, 30)}
        incidents = group_incidents(events, levels=2)
        text = format_incident_report(incidents, top=5)
        assert "more" in text

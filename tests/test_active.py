"""Active comparators: generic prober, Trinocular, RIPE Atlas."""

import numpy as np
import pytest

from repro.active.prober import ActiveProber
from repro.active.ripe_atlas import RipeAtlas, RipeAtlasConfig
from repro.active.trinocular import Trinocular, TrinocularConfig
from repro.net.addr import Family
from repro.traffic.internet import FamilyConfig, InternetConfig, SimulatedInternet
from repro.traffic.outages import OutageModel

DAY = 86400.0


@pytest.fixture(scope="module")
def outage_internet():
    """Every block has outages; high probe responsiveness."""
    config = InternetConfig(
        end=2 * DAY, training_seconds=DAY, seed=17,
        ipv4=FamilyConfig(
            n_blocks=40,
            outage_model=OutageModel(outage_probability=1.0,
                                     short_fraction=0.0,
                                     long_log_mean=np.log(7200.0),
                                     long_log_sigma=0.2),
            probe_response_mean=0.9,
            mean_active_addresses=16.0))
    return SimulatedInternet.build(config)


class TestActiveProber:
    def test_counts_and_response_rate(self, outage_internet):
        prober = ActiveProber(outage_internet, np.random.default_rng(1),
                              network_loss=0.0)
        profile = outage_internet.family_profiles(Family.IPV4)[0]
        for _ in range(30):
            prober.probe(Family.IPV4, int(profile.active_addresses[0]), 10.0)
        assert prober.probes_sent == 30
        assert 0.0 < prober.response_rate <= 1.0

    def test_full_loss_blocks_everything(self, outage_internet):
        prober = ActiveProber(outage_internet, np.random.default_rng(1),
                              network_loss=1.0)
        profile = outage_internet.family_profiles(Family.IPV4)[0]
        assert not prober.probe(Family.IPV4,
                                int(profile.active_addresses[0]), 10.0)

    def test_probe_round_stops_at_first_response(self, outage_internet):
        prober = ActiveProber(outage_internet, np.random.default_rng(2),
                              network_loss=0.0)
        profile = outage_internet.family_profiles(Family.IPV4)[0]
        used, responded = prober.probe_round(profile, 10.0, max_probes=15)
        assert responded
        assert used <= 15

    def test_probe_log(self, outage_internet):
        prober = ActiveProber(outage_internet, np.random.default_rng(3),
                              log=[])
        profile = outage_internet.family_profiles(Family.IPV4)[0]
        prober.probe(Family.IPV4, int(profile.active_addresses[0]), 5.0)
        assert len(prober.log) == 1
        assert prober.log[0].time == 5.0


class TestTrinocular:
    def test_detects_long_outages_at_round_precision(self, outage_internet):
        trinocular = Trinocular(outage_internet)
        results = trinocular.survey(Family.IPV4, DAY, 2 * DAY)
        matched = 0
        total = 0
        for profile in trinocular.trackable_profiles(Family.IPV4):
            # An up gap shorter than a round is invisible to Trinocular,
            # so adjacent truth events merge into one verdict; compare
            # against the round-resolution view of truth.
            truth_round_view = profile.truth.fill_short_ups(660.0)
            truth_events = [e for e in truth_round_view.events()
                            if e.duration >= 2 * 660.0]
            detected = results[profile.key].timeline.events()
            for truth_event in truth_events:
                total += 1
                # best hit = detection with the largest true overlap
                overlaps = [(min(d.end, truth_event.end)
                             - max(d.start, truth_event.start), d)
                            for d in detected]
                overlaps = [(o, d) for o, d in overlaps if o > 0]
                if overlaps:
                    matched += 1
                    _, best = max(overlaps, key=lambda pair: pair[0])
                    # edges quantised to rounds: within two rounds
                    assert abs(best.start - truth_event.start) <= 2 * 660.0
        assert total > 0
        assert matched / total > 0.9

    def test_misses_sub_round_outages(self):
        config = InternetConfig(
            end=2 * DAY, training_seconds=DAY, seed=23,
            ipv4=FamilyConfig(
                n_blocks=30,
                outage_model=OutageModel(outage_probability=1.0,
                                         short_fraction=1.0,
                                         short_log_mean=np.log(300.0),
                                         short_log_sigma=0.1,
                                         min_duration=200.0,
                                         max_duration=400.0),
                probe_response_mean=0.9))
        internet = SimulatedInternet.build(config)
        results = Trinocular(internet).survey(Family.IPV4, DAY, 2 * DAY)
        detected_events = [e for r in results.values()
                           for e in r.timeline.events()]
        truth = sum(len(p.truth.events()) for p in internet.profiles)
        assert truth > 10
        # Only outages whose span happens to cover a probe instant are
        # seen (roughly duration/round of them), and those are reported
        # at round quantisation — never at their true sub-round length.
        assert len(detected_events) < 0.7 * truth
        assert all(e.duration >= 660.0 for e in detected_events)

    def test_trackability_requires_addresses(self, outage_internet):
        config = TrinocularConfig(min_active_addresses=1000)
        trinocular = Trinocular(outage_internet, config)
        assert trinocular.trackable_profiles(Family.IPV4) == []

    def test_probe_budget_respected(self, outage_internet):
        trinocular = Trinocular(outage_internet)
        results = trinocular.survey(Family.IPV4, DAY, DAY + 6600.0)
        rounds = 10
        for result in results.values():
            assert result.probes_sent <= rounds * 15

    def test_deterministic(self, outage_internet):
        a = Trinocular(outage_internet).survey(Family.IPV4, DAY, DAY + 6600.0)
        b = Trinocular(outage_internet).survey(Family.IPV4, DAY, DAY + 6600.0)
        for key in a:
            assert a[key].timeline == b[key].timeline


class TestRipeAtlas:
    def test_instrumentation_deterministic(self, outage_internet):
        atlas = RipeAtlas(outage_internet)
        first = [p.key for p in atlas.instrumented_profiles(Family.IPV4)]
        second = [p.key for p in atlas.instrumented_profiles(Family.IPV4)]
        assert first == second

    def test_min_rate_filter(self, outage_internet):
        config = RipeAtlasConfig(instrumented_fraction=1.0,
                                 min_block_rate=1e9)
        atlas = RipeAtlas(outage_internet, config)
        assert atlas.instrumented_profiles(Family.IPV4) == []

    def test_detects_outages_at_sample_precision(self, outage_internet):
        config = RipeAtlasConfig(instrumented_fraction=1.0)
        atlas = RipeAtlas(outage_internet, config)
        results = atlas.survey(Family.IPV4, DAY, 2 * DAY)
        matched = 0
        total = 0
        for key, result in results.items():
            profile = outage_internet.profile_for(Family.IPV4, key)
            for truth_event in profile.truth.events(2 * 360.0):
                total += 1
                if any(d.overlaps(truth_event, slack=360.0)
                       for d in result.timeline.events()):
                    matched += 1
        assert total > 0
        assert matched / total > 0.9

    def test_sample_accounting(self, outage_internet):
        config = RipeAtlasConfig(instrumented_fraction=1.0)
        results = RipeAtlas(outage_internet, config).survey(
            Family.IPV4, DAY, DAY + 3600.0)
        expected = int(np.ceil(3600.0 / config.sample_seconds))
        for result in results.values():
            assert result.samples == expected

    def test_false_loss_rare(self):
        config = InternetConfig(
            end=DAY, training_seconds=0.0, seed=31,
            ipv4=FamilyConfig(
                n_blocks=30,
                outage_model=OutageModel(outage_probability=0.0)))
        internet = SimulatedInternet.build(config)
        atlas = RipeAtlas(internet,
                          RipeAtlasConfig(instrumented_fraction=1.0))
        results = atlas.survey(Family.IPV4, 0, DAY)
        lost = sum(r.lost_samples for r in results.values())
        samples = sum(r.samples for r in results.values())
        assert lost / samples < 0.005

"""Model drift auditing and rolling retraining."""

import numpy as np
import pytest

from repro.core.drift import (
    BlockDrift,
    DriftVerdict,
    audit_drift,
    refresh_model,
)
from repro.core.pipeline import PassiveOutagePipeline
from repro.net.addr import Family
from repro.traffic.sources import poisson_times, suppress_intervals

DAY = 86400.0


@pytest.fixture(scope="module")
def world():
    """Blocks with different day-two behaviour relative to training.

    1: stable; 2: rate quadrupled; 3: rate collapsed to a fifth;
    4: stable but with a real outage (must NOT read as drift).
    """
    rng = np.random.default_rng(77)
    train = {
        1: poisson_times(rng, 0.05, 0, DAY),
        2: poisson_times(rng, 0.05, 0, DAY),
        3: poisson_times(rng, 0.05, 0, DAY),
        4: poisson_times(rng, 0.10, 0, DAY),
    }
    outage = (DAY + 30000.0, DAY + 40000.0)
    evaluate = {
        1: poisson_times(rng, 0.05, DAY, 2 * DAY),
        2: poisson_times(rng, 0.20, DAY, 2 * DAY),
        3: poisson_times(rng, 0.01, DAY, 2 * DAY),
        4: suppress_intervals(poisson_times(rng, 0.10, DAY, 2 * DAY),
                              [outage]),
    }
    pipeline = PassiveOutagePipeline()
    model = pipeline.train(Family.IPV4, train, 0, DAY)
    result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
    return pipeline, model, result, evaluate


class TestAudit:
    def test_verdicts(self, world):
        _, model, result, evaluate = world
        audits = audit_drift(model, result.blocks, evaluate)
        assert audits[1].verdict is DriftVerdict.STABLE
        assert audits[2].verdict is DriftVerdict.RATE_ROSE
        assert audits[3].verdict is DriftVerdict.RATE_FELL
        assert audits[2].needs_retraining
        assert not audits[1].needs_retraining

    def test_outage_not_mistaken_for_drift(self, world):
        _, model, result, evaluate = world
        audits = audit_drift(model, result.blocks, evaluate)
        # block 4 lost ~12% of its day to a real outage, but its healthy
        # rate is unchanged — masking by detected downtime must hold.
        assert audits[4].verdict is DriftVerdict.STABLE

    def test_ratio(self, world):
        _, model, result, evaluate = world
        audits = audit_drift(model, result.blocks, evaluate)
        assert audits[2].ratio == pytest.approx(4.0, rel=0.25)
        assert audits[3].ratio == pytest.approx(0.2, rel=0.3)

    def test_insufficient_data(self, world):
        _, model, result, _ = world
        sparse_eval = {key: np.empty(0) for key in result.blocks}
        audits = audit_drift(model, result.blocks, sparse_eval)
        # no arrivals at all -> either insufficient or rate-fell; the
        # distinction is the up-time mask: a block judged fully down has
        # no healthy time to measure.
        assert audits[1].verdict in (DriftVerdict.INSUFFICIENT,
                                     DriftVerdict.RATE_FELL)

    def test_validation(self, world):
        _, model, result, evaluate = world
        with pytest.raises(ValueError):
            audit_drift(model, result.blocks, evaluate, drift_factor=1.0)


class TestRefresh:
    def test_only_drifted_blocks_retrained(self, world):
        _, model, result, evaluate = world
        audits = audit_drift(model, result.blocks, evaluate)
        refreshed, retrained = refresh_model(
            model, audits, evaluate, DAY, 2 * DAY)
        assert set(retrained) == {2, 3}
        # stable blocks keep their exact history objects
        assert refreshed.histories[1] is model.histories[1]
        assert refreshed.histories[2] is not model.histories[2]
        assert refreshed.train_end == 2 * DAY

    def test_refreshed_rates_track_new_traffic(self, world):
        _, model, result, evaluate = world
        audits = audit_drift(model, result.blocks, evaluate)
        refreshed, _ = refresh_model(model, audits, evaluate, DAY, 2 * DAY)
        assert refreshed.histories[2].mean_rate == pytest.approx(0.20,
                                                                 rel=0.15)
        assert refreshed.histories[3].mean_rate == pytest.approx(0.01,
                                                                 rel=0.3)

    def test_refreshed_model_detects_cleanly(self, world):
        """After retraining, the rate-collapsed block no longer shows
        false outages on a third day at its new rate."""
        pipeline, model, result, evaluate = world
        audits = audit_drift(model, result.blocks, evaluate)
        refreshed, _ = refresh_model(model, audits, evaluate, DAY, 2 * DAY)
        rng = np.random.default_rng(5)
        day3 = {3: poisson_times(rng, 0.01, 2 * DAY, 3 * DAY)}
        stale = pipeline.detect(model, day3, 2 * DAY, 3 * DAY)
        fresh = pipeline.detect(refreshed, day3, 2 * DAY, 3 * DAY)
        assert fresh.blocks[3].timeline.down_seconds() <= \
            stale.blocks[3].timeline.down_seconds()
        assert fresh.blocks[3].timeline.availability() > 0.97

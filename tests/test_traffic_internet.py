"""The simulated Internet: construction, observations, probing."""

import numpy as np
import pytest

from repro.net.addr import Family
from repro.traffic.internet import (
    FamilyConfig,
    InternetConfig,
    SimulatedInternet,
)
from repro.traffic.outages import OutageModel

DAY = 86400.0


def build(n_v4=60, n_v6=15, seed=5, outage_probability=0.5, **kwargs):
    config = InternetConfig(
        end=2 * DAY, training_seconds=DAY, seed=seed,
        ipv4=FamilyConfig(
            n_blocks=n_v4,
            outage_model=OutageModel(outage_probability=outage_probability),
            **kwargs),
        ipv6=(FamilyConfig(
            n_blocks=n_v6,
            outage_model=OutageModel(outage_probability=outage_probability))
            if n_v6 else None),
    )
    return SimulatedInternet.build(config)


class TestConstruction:
    def test_population_counts(self):
        internet = build()
        assert len(internet.family_profiles(Family.IPV4)) == 60
        assert len(internet.family_profiles(Family.IPV6)) == 15

    def test_blocks_at_standard_prefixes(self):
        internet = build()
        for profile in internet.profiles:
            expected = profile.family.default_block_prefix
            assert profile.block.prefix_len == expected

    def test_distinct_prefixes(self):
        internet = build(n_v4=200)
        keys = [p.key for p in internet.family_profiles(Family.IPV4)]
        assert len(set(keys)) == len(keys)

    def test_deterministic_given_seed(self):
        a = build(seed=9)
        b = build(seed=9)
        assert [p.key for p in a.profiles] == [p.key for p in b.profiles]
        assert [p.mean_rate for p in a.profiles] == \
            [p.mean_rate for p in b.profiles]

    def test_training_window_is_clean(self):
        internet = build(outage_probability=1.0)
        for profile in internet.profiles:
            for start, _ in profile.truth.down_intervals:
                assert start >= DAY

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            InternetConfig(end=0.0)
        with pytest.raises(ValueError):
            InternetConfig(end=DAY, training_seconds=2 * DAY)

    def test_addresses_inside_block(self):
        internet = build()
        for profile in internet.profiles:
            for address in profile.active_addresses:
                key = (int(address)
                       >> (profile.family.bits
                           - profile.family.default_block_prefix))
                assert key == profile.key


class TestPassiveObservations:
    def test_arrivals_sorted_and_in_window(self):
        internet = build()
        for profile, times in internet.passive_observations():
            assert np.all(np.diff(times) >= 0)
            if times.size:
                assert times[0] >= 0 and times[-1] < 2 * DAY

    def test_outage_suppresses_traffic(self):
        internet = build(outage_probability=1.0, n_v6=0)
        noisy = 0
        total_outage_time = 0.0
        for profile, times in internet.passive_observations():
            for start, end in profile.truth.down_intervals:
                inside = times[(times >= start) & (times < end)]
                noisy += inside.size
                total_outage_time += end - start
        # only the configured noise trickle may appear while down
        expected_noise = total_outage_time / 36000.0
        assert noisy <= max(10.0, 4 * expected_noise)

    def test_observation_reproducibility(self):
        internet = build()
        first = {p.key: t for p, t in internet.passive_observations(seed=1)}
        second = {p.key: t for p, t in internet.passive_observations(seed=1)}
        for key in first:
            assert np.array_equal(first[key], second[key])

    def test_different_seed_differs(self):
        internet = build()
        first = {p.key: t for p, t in internet.passive_observations(seed=1)}
        second = {p.key: t for p, t in internet.passive_observations(seed=2)}
        assert any(not np.array_equal(first[k], second[k]) for k in first)

    def test_invisible_blocks_emit_nothing(self):
        internet = build(vantage_visibility=0.0, n_v6=0)
        assert sum(t.size for _, t in internet.passive_observations()) == 0

    def test_rate_roughly_matches_profile(self):
        internet = build(n_v4=100, n_v6=0, outage_probability=0.0)
        for profile, times in internet.passive_observations():
            expected = profile.mean_rate * 2 * DAY
            if expected > 200:
                assert times.size == pytest.approx(expected, rel=0.35)


class TestProbing:
    def test_probe_active_address_up(self):
        internet = build(outage_probability=0.0, probe_response_mean=0.95)
        rng = np.random.default_rng(0)
        profile = internet.family_profiles(Family.IPV4)[0]
        hits = sum(
            internet.probe(Family.IPV4, int(profile.active_addresses[0]),
                           100.0, rng)
            for _ in range(100))
        assert hits > 50

    def test_probe_down_block_never_responds(self):
        internet = build(outage_probability=1.0)
        rng = np.random.default_rng(0)
        for profile in internet.family_profiles(Family.IPV4):
            if not profile.truth.down_intervals:
                continue
            start, end = profile.truth.down_intervals[0]
            middle = (start + end) / 2
            assert not internet.probe(
                profile.family, int(profile.active_addresses[0]), middle, rng)
            break

    def test_probe_inactive_address_never_responds(self):
        internet = build(outage_probability=0.0)
        rng = np.random.default_rng(0)
        profile = internet.family_profiles(Family.IPV4)[0]
        base = profile.block.network_address.value
        candidates = set(int(a) for a in profile.active_addresses)
        dead = next(base + i for i in range(256)
                    if base + i not in candidates)
        assert not any(internet.probe(Family.IPV4, dead, 100.0, rng)
                       for _ in range(20))

    def test_probe_unknown_block(self):
        internet = build()
        rng = np.random.default_rng(0)
        assert not internet.probe(Family.IPV4, 0x01010101, 100.0, rng)


class TestBookkeeping:
    def test_truth_outage_rate(self):
        internet = build(outage_probability=1.0)
        assert internet.truth_outage_rate(Family.IPV4) == 1.0

    def test_describe_mentions_families(self):
        text = build().describe()
        assert "IPV4" in text and "IPV6" in text

    def test_lookup_helpers(self):
        internet = build()
        profile = internet.profiles[0]
        assert internet.profile_for(profile.family, profile.key) is profile
        assert internet.truth_for(profile.family, profile.key) is profile.truth
        assert internet.profile_for(Family.IPV4, 0xDEADBEEF) is None

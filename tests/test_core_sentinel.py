"""Unit tests for the vantage-health sentinel and quarantine algebra."""

import numpy as np
import pytest

from repro.core.sentinel import (
    SentinelConfig,
    VantageSentinel,
    suppress_quarantined,
)
from repro.timeline import Timeline, subtract_intervals


def feed(sentinel, rate, start, end, step=None):
    """Feed a constant-rate arrival pattern over [start, end)."""
    step = step or (1.0 / rate)
    for time in np.arange(start, end, step):
        sentinel.observe(float(time))


class TestSubtractIntervals:
    def test_disjoint_untouched(self):
        assert subtract_intervals([(0, 5)], [(6, 8)]) == [(0, 5)]

    def test_middle_clipped(self):
        assert subtract_intervals([(0, 10)], [(3, 5)]) == [(0, 3), (5, 10)]

    def test_full_cover_removes(self):
        assert subtract_intervals([(2, 4)], [(0, 10)]) == []

    def test_multiple_holes(self):
        assert subtract_intervals(
            [(0, 10), (20, 30)], [(1, 2), (9, 21), (25, 26)]
        ) == [(0, 1), (2, 9), (21, 25), (26, 30)]

    def test_timeline_without_down(self):
        timeline = Timeline(0, 100, [(10, 40), (60, 70)])
        cleaned = timeline.without_down([(20, 30), (55, 80)])
        assert cleaned.down_intervals == [(10, 20), (30, 40)]


class TestSentinelQuarantine:
    def test_healthy_feed_never_quarantined(self):
        sentinel = VantageSentinel(0.0, SentinelConfig(expected_rate=2.0))
        feed(sentinel, 2.0, 0.0, 3600.0)
        sentinel.advance(3600.0)
        assert sentinel.quarantined_intervals() == []

    def test_feed_gap_quarantined_with_margins(self):
        config = SentinelConfig(expected_rate=2.0, bin_seconds=60.0)
        sentinel = VantageSentinel(0.0, config)
        feed(sentinel, 2.0, 0.0, 1000.0)
        feed(sentinel, 2.0, 2800.0, 3600.0)
        sentinel.advance(3600.0)
        windows = sentinel.quarantined_intervals()
        assert len(windows) == 1
        start, end = windows[0]
        assert start <= 1000.0 <= start + 2 * config.bin_seconds
        assert end - 2 * config.bin_seconds <= 2800.0 <= end

    def test_open_gap_reported_before_recovery(self):
        sentinel = VantageSentinel(0.0, SentinelConfig(expected_rate=2.0))
        feed(sentinel, 2.0, 0.0, 600.0)
        sentinel.advance(1200.0)  # wall clock moves, feed does not
        windows = sentinel.quarantined_intervals()
        assert len(windows) == 1
        assert sentinel.is_quarantined(900.0)

    def test_single_quiet_bin_is_not_quarantined(self):
        sentinel = VantageSentinel(
            0.0, SentinelConfig(expected_rate=2.0, min_quiet_bins=2))
        feed(sentinel, 2.0, 0.0, 300.0)
        feed(sentinel, 2.0, 360.0, 700.0)  # one silent bin only
        sentinel.advance(700.0)
        assert sentinel.quarantined_intervals() == []

    def test_sparse_feed_below_min_expected_never_judged(self):
        # Expected two arrivals per bin: an empty bin proves nothing.
        sentinel = VantageSentinel(
            0.0, SentinelConfig(expected_rate=2.0 / 60.0,
                                min_expected_count=5.0))
        feed(sentinel, 2.0 / 60.0, 0.0, 600.0)
        sentinel.advance(3600.0)
        assert sentinel.quarantined_intervals() == []

    def test_online_learning_matches_known_rate(self):
        known = VantageSentinel(0.0, SentinelConfig(expected_rate=2.0))
        learned = VantageSentinel(0.0, SentinelConfig())
        for sentinel in (known, learned):
            feed(sentinel, 2.0, 0.0, 1000.0)
            feed(sentinel, 2.0, 2800.0, 3600.0)
            sentinel.advance(3600.0)
        assert (known.quarantined_intervals()
                == learned.quarantined_intervals())

    def test_gap_does_not_poison_learned_baseline(self):
        sentinel = VantageSentinel(0.0, SentinelConfig())
        feed(sentinel, 2.0, 0.0, 1000.0)
        sentinel.advance(4600.0)  # an hour of silence
        expected = sentinel.expected_bin_count
        assert expected is not None and expected > 60.0, \
            "silent bins must not drag the EWMA toward zero"

    def test_state_roundtrip_mid_gap(self):
        sentinel = VantageSentinel(0.0, SentinelConfig(expected_rate=2.0))
        feed(sentinel, 2.0, 0.0, 1000.0)
        sentinel.advance(1500.0)  # inside a forming gap
        restored = VantageSentinel.from_dict(sentinel.to_dict())
        for s in (sentinel, restored):
            feed(s, 2.0, 2800.0, 3600.0)
            s.advance(3600.0)
        assert (sentinel.quarantined_intervals()
                == restored.quarantined_intervals())
        assert sentinel.quarantined_bins == restored.quarantined_bins

    def test_roundtrip_with_open_quarantine(self):
        # The feed died and never came back: the quiet run is still
        # open at serialisation time.  The restored sentinel must agree
        # it is mid-quarantine (suspect_since, open window, per-bin
        # verdicts), not just replay to agreement later.
        sentinel = VantageSentinel(0.0, SentinelConfig(expected_rate=2.0))
        feed(sentinel, 2.0, 0.0, 1000.0)
        sentinel.advance(2400.0)  # feed dark, clock running
        assert sentinel.suspect_since is not None
        restored = VantageSentinel.from_dict(sentinel.to_dict())
        assert restored.suspect_since == sentinel.suspect_since
        assert (restored.quarantined_intervals()
                == sentinel.quarantined_intervals())
        assert restored.quarantined_intervals()  # the open window
        assert restored.is_quarantined(2000.0)
        # Advancing both in lockstep keeps them bit-identical.
        sentinel.advance(3600.0)
        restored.advance(3600.0)
        assert restored.to_dict() == sentinel.to_dict()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SentinelConfig(bin_seconds=0.0)
        with pytest.raises(ValueError):
            SentinelConfig(quiet_fraction=1.5)
        with pytest.raises(ValueError):
            SentinelConfig(min_quiet_bins=0)


class TestSuppression:
    def test_onset_inside_quarantine_fully_retracted(self):
        timeline = Timeline(0, 1000, [(500, 900)])
        result = suppress_quarantined(timeline, [(480, 600)])
        assert result.down_intervals == []

    def test_onset_before_quarantine_clipped_not_removed(self):
        timeline = Timeline(0, 1000, [(100, 700)])
        result = suppress_quarantined(timeline, [(300, 400)])
        assert result.down_intervals == [(100, 300), (400, 700)]

    def test_no_quarantine_is_identity(self):
        timeline = Timeline(0, 1000, [(100, 200)])
        assert suppress_quarantined(timeline, []) is timeline


class TestWarmupSemantics:
    """Warmup bins carry no quarantine evidence — and contribute none.

    A sentinel learning its baseline online cannot judge before the
    baseline exists; but an outage already in progress at cold start
    must not be *learned into* that baseline, or the sentinel would
    conclude "zero is normal" and never see the outage it booted into.
    """

    def test_dead_feed_at_cold_start_never_seeds_the_baseline(self):
        sentinel = VantageSentinel(0.0, SentinelConfig())
        sentinel.advance(3600.0)  # an hour of total silence, no seed
        assert sentinel.expected_bin_count is None
        assert sentinel.quarantined_intervals() == []
        # The feed comes up: the first non-empty bin seeds the EWMA at
        # the observed volume, not at the zero the outage suggested.
        feed(sentinel, 2.0, 3600.0, 7200.0)
        sentinel.advance(7200.0)
        assert sentinel.expected_bin_count is not None
        assert sentinel.expected_bin_count > 60.0

    def test_outage_during_warmup_does_not_poison_the_baseline(self):
        config = SentinelConfig(bin_seconds=60.0, warmup_bins=5)
        sentinel = VantageSentinel(0.0, config)
        # Two healthy bins seed the EWMA near 120/bin, then the feed
        # dies immediately — the classic cold-start-into-outage shape.
        feed(sentinel, 2.0, 0.0, 120.0)
        sentinel.advance(1200.0)  # 18 empty bins, still warming up
        assert sentinel.expected_bin_count is None  # cannot judge yet
        assert sentinel.quarantined_intervals() == []  # no evidence
        # Feed recovers; warmup completes against *healthy* bins only.
        feed(sentinel, 2.0, 1200.0, 2400.0)
        sentinel.advance(2400.0)
        expected = sentinel.expected_bin_count
        assert expected is not None and expected > 60.0

    def test_real_gap_after_cold_start_warmup_is_quarantined(self):
        config = SentinelConfig(bin_seconds=60.0, warmup_bins=5)
        sentinel = VantageSentinel(0.0, config)
        feed(sentinel, 2.0, 0.0, 120.0)       # brief healthy prefix
        sentinel.advance(600.0)               # outage during warmup
        feed(sentinel, 2.0, 600.0, 1800.0)    # recovery: warmup completes
        feed(sentinel, 2.0, 3000.0, 3600.0)   # second gap, post-warmup
        sentinel.advance(3600.0)
        windows = sentinel.quarantined_intervals()
        assert len(windows) == 1
        start, end = windows[0]
        assert start <= 1800.0 + 2 * config.bin_seconds
        assert end >= 3000.0 - 2 * config.bin_seconds

    def test_warmup_state_roundtrips_through_checkpoint(self):
        config = SentinelConfig(bin_seconds=60.0, warmup_bins=5)
        sentinel = VantageSentinel(0.0, config)
        feed(sentinel, 2.0, 0.0, 120.0)
        sentinel.advance(600.0)  # mid-warmup, mid-outage
        restored = VantageSentinel.from_dict(sentinel.to_dict())
        feed(sentinel, 2.0, 600.0, 1800.0)
        feed(restored, 2.0, 600.0, 1800.0)
        sentinel.advance(1800.0)
        restored.advance(1800.0)
        assert restored.expected_bin_count == sentinel.expected_bin_count
        assert (restored.quarantined_intervals()
                == sentinel.quarantined_intervals())

"""Partitioned live detection: engine, plan, equivalence, checkpoints.

The contract under test is the equivalence claim from the design:
partitioning the live keyspace across worker processes is a pure
deployment choice — per-block verdicts, merged health, and every
deterministic counter must be identical to the single-process
streaming path, for any partition count.  Alongside it: the rolling
drift auditor's verdict arithmetic, hot-swap persistence through
rotated checkpoints, and the manifest renderer's golden output.
"""

import json
import math
import os

import numpy as np
import pytest

from repro.cli import main
from repro.core.checkpoint import (
    CheckpointFormatError,
    load_checkpoint_rotated,
    save_checkpoint_rotated,
)
from repro.core.detector import StreamingDetector
from repro.core.drift import DriftVerdict, RollingRateAuditor, retune_block
from repro.core.history import train_history
from repro.core.parameters import ParameterPlanner
from repro.core.serialize import load_model
from repro.live import (
    DriftConfig,
    LiveBlockEngine,
    LivePartitionSupervisor,
)
from repro.net.addr import Family
from repro.obs.metrics import MetricsRegistry
from repro.parallel import SupervisionPolicy
from repro.telescope.capture import CaptureReader
from repro.telescope.records import Observation
from repro.telescope.reorder import LatePolicy, ReorderBuffer

DAY = 86400.0

#: Deterministic comparison set: everything the stream's content pins.
#: (Gauges — lag, occupancy — and wall-clock histograms excluded.)
COUNTERS = [
    "stream_observations_total",
    "stream_bins_total",
    "drift_blocks_flagged_total",
    "drift_retunes_failed_total",
    "drift_hot_swaps_total",
]

DRIFT = DriftConfig(audit_every=7200.0)


@pytest.fixture(scope="module")
def live_setup(tmp_path_factory):
    """A two-day capture and a model trained on its first day."""
    root = tmp_path_factory.mktemp("live")
    capture = str(root / "capture.pobs")
    model_path = str(root / "model.json")
    assert main(["simulate", "--blocks", "28", "--days", "2",
                 "--seed", "11", "--out", capture]) == 0
    assert main(["train", capture, "--train-end", str(DAY),
                 "--out", model_path]) == 0
    return capture, load_model(model_path)


def run_single(model, capture, *, horizon=2.0, drift=DRIFT):
    registry = MetricsRegistry()
    detector = StreamingDetector(model.family, model.histories,
                                 model.parameters, model.train_end,
                                 sentinel=None, metrics=registry)
    buffer = (ReorderBuffer(horizon, LatePolicy.COUNT, metrics=registry)
              if horizon > 0 else None)
    engine = LiveBlockEngine(detector, buffer=buffer, drift=drift)
    with CaptureReader(capture) as reader:
        for observation in reader:
            if observation.time < detector.start:
                continue
            engine.feed(observation)
    engine.flush()
    results = detector.finalize(detector.last_time)
    return results, detector.last_health, registry


def run_partitioned(model, capture, checkpoint_dir, *, partitions=4,
                    horizon=2.0, drift=DRIFT, **kwargs):
    registry = MetricsRegistry()
    os.makedirs(checkpoint_dir, exist_ok=True)
    supervisor = LivePartitionSupervisor(
        model, partitions=partitions,
        policy=SupervisionPolicy(retries=1),
        checkpoint_dir=str(checkpoint_dir), checkpoint_every=3600.0,
        reorder_horizon=horizon, drift=drift, metrics=registry, **kwargs)
    result = supervisor.run(capture)
    return result, registry, supervisor


def event_tuples(results, min_duration=300.0):
    return [(key, event.start, event.end)
            for key in sorted(results)
            for event in results[key].timeline.events(min_duration)]


def comparable_health(report):
    """Health dict minus the fields partitioning legitimately changes:
    stage seconds are per-process CPU time, and only supervised runs
    have a coverage section."""
    document = report.as_dict()
    document.pop("coverage", None)
    for stage in document.get("stages", []):
        stage["seconds"] = 0.0
    return document


class TestEquivalence:
    def test_partitioned_matches_single_process(self, live_setup, tmp_path):
        capture, model = live_setup
        single_results, single_health, single_reg = run_single(
            model, capture)
        result, part_reg, _ = run_partitioned(
            model, capture, tmp_path / "ckpt")

        assert sorted(single_results) == sorted(result.results)
        assert event_tuples(single_results) == event_tuples(result.results)
        assert (comparable_health(single_health)
                == comparable_health(result.health))
        for name in COUNTERS:
            assert single_reg.value(name) == part_reg.value(name), name
        for direction in ("down", "up"):
            assert (single_reg.value("stream_transitions_total",
                                     direction=direction)
                    == part_reg.value("stream_transitions_total",
                                      direction=direction))
        for outcome in ("admitted", "late_admitted", "late_dropped"):
            assert (single_reg.value("reorder_records_total",
                                     outcome=outcome)
                    == part_reg.value("reorder_records_total",
                                      outcome=outcome)), outcome
        assert result.health.accounts_for(model.measurable_keys)
        assert not result.degraded
        assert result.restarts == 0

    def test_partition_count_is_a_deployment_choice(self, live_setup,
                                                    tmp_path):
        capture, model = live_setup
        two, reg_two, sup_two = run_partitioned(
            model, capture, tmp_path / "two", partitions=2)
        five, reg_five, sup_five = run_partitioned(
            model, capture, tmp_path / "five", partitions=5)
        # Different plans (the digest names the actual chunking)...
        assert sup_two.digest != sup_five.digest
        # ...same verdicts, same deterministic counters.
        assert event_tuples(two.results) == event_tuples(five.results)
        assert (comparable_health(two.health)
                == comparable_health(five.health))
        for name in COUNTERS:
            assert reg_two.value(name) == reg_five.value(name), name

    def test_plan_is_deterministic(self, live_setup):
        _, model = live_setup
        first = LivePartitionSupervisor(model, partitions=3)
        second = LivePartitionSupervisor(model, partitions=3)
        assert first.digest == second.digest
        assert ([p.keys for p in first.partitions]
                == [p.keys for p in second.partitions])


class TestReorderFront:
    def test_external_front_matches_in_band_advance(self):
        local = ReorderBuffer(10.0, LatePolicy.COUNT)
        peer = ReorderBuffer(10.0, LatePolicy.COUNT)
        rows = [Observation(t, Family.IPV4, 1 << 8)
                for t in (0.0, 5.0, 3.0, 12.0, 8.0, 30.0)]
        released_local, released_peer = [], []
        for row in rows:
            released_local.extend(local.push(row))
            # The peer holds a partition that owns none of the traffic:
            # it sees only the external front, never the records.
            released_peer.extend(peer.advance_front(row.time))
            if row.block_key == 1:
                released_peer.extend(peer.push(row))
        # Same front, same watermark, same release order.
        assert [r.time for r in released_local] == [r.time
                                                    for r in released_peer]
        assert local.watermark == peer.watermark

    def test_external_front_never_regresses(self):
        buffer = ReorderBuffer(5.0, LatePolicy.COUNT)
        buffer.advance_front(100.0)
        assert buffer.advance_front(50.0) == []
        assert buffer.watermark == 95.0

    def test_non_finite_front_is_rejected(self):
        buffer = ReorderBuffer(5.0, LatePolicy.COUNT)
        with pytest.raises(ValueError):
            buffer.advance_front(float("nan"))
        with pytest.raises(ValueError):
            buffer.advance_front(float("inf"))


class TestRollingAuditor:
    def make(self, **kwargs):
        kwargs.setdefault("start", 0.0)
        kwargs.setdefault("audit_every", 3600.0)
        kwargs.setdefault("min_arrivals", 20)
        return RollingRateAuditor(**kwargs)

    def test_rate_rise_flags(self):
        auditor = self.make()
        for t in np.arange(0.0, 3600.0, 10.0):
            auditor.note(7, t)
        drifted = auditor.audit(3600.0, lambda key: True,
                                lambda key: 0.01)
        assert drifted[7].verdict is DriftVerdict.RATE_ROSE
        assert drifted[7].observed_rate == pytest.approx(0.1)

    def test_rate_fall_flags(self):
        auditor = self.make()
        for t in np.arange(0.0, 3600.0, 100.0):
            auditor.note(7, t)
        drifted = auditor.audit(3600.0, lambda key: True,
                                lambda key: 0.1)
        assert drifted[7].verdict is DriftVerdict.RATE_FELL

    def test_stable_blocks_are_omitted(self):
        auditor = self.make()
        for t in np.arange(0.0, 3600.0, 10.0):
            auditor.note(7, t)
        assert auditor.audit(3600.0, lambda key: True,
                             lambda key: 0.1) == {}

    def test_ineligible_and_sparse_blocks_skipped(self):
        auditor = self.make()
        for t in np.arange(0.0, 3600.0, 10.0):
            auditor.note(7, t)   # dense but ineligible (mid-outage)
        auditor.note(8, 100.0)   # eligible but sparse
        assert auditor.audit(3600.0, lambda key: key == 8,
                             lambda key: 0.01) == {}

    def test_window_prunes_old_arrivals(self):
        auditor = self.make(window_seconds=1800.0)
        for t in np.arange(0.0, 3600.0, 10.0):
            auditor.note(7, t)
        auditor.audit(3600.0, lambda key: True, lambda key: 1.0)
        assert min(auditor.arrivals(7)) >= 1800.0

    def test_checkpoint_roundtrip_audits_identically(self):
        auditor = self.make()
        for t in np.arange(0.0, 3600.0, 10.0):
            auditor.note(7, t)
        clone = RollingRateAuditor.from_dict(
            json.loads(json.dumps(auditor.to_dict())))
        assert clone.next_boundary == auditor.next_boundary
        kwargs = (lambda key: True, lambda key: 0.01)
        assert (sorted(auditor.audit(3600.0, *kwargs))
                == sorted(clone.audit(3600.0, *kwargs)))


class TestDriftHotSwap:
    def build_engine(self, audit_every=3600.0):
        rng = np.random.default_rng(21)
        times = np.sort(rng.uniform(0.0, DAY, int(0.05 * DAY)))
        history = train_history(times, 0.0, DAY)
        params = ParameterPlanner().plan_block(history)
        assert params.measurable
        registry = MetricsRegistry()
        detector = StreamingDetector(Family.IPV4, {7: history}, {7: params},
                                     DAY, sentinel=None, metrics=registry)
        engine = LiveBlockEngine(detector,
                                 drift=DriftConfig(audit_every=audit_every))
        return engine, detector, registry

    def feed_uniform(self, engine, start, end, gap):
        for t in np.arange(start, end, gap):
            engine.feed(Observation(float(t), Family.IPV4, 7 << 8))

    def test_rate_rise_hot_swaps_the_model(self):
        engine, detector, registry = self.build_engine()
        # Live traffic runs at 5x the trained rate: flagged at an audit
        # boundary, retuned from the rolling window, swapped in at the
        # next bin close.
        self.feed_uniform(engine, DAY, DAY + 6 * 3600.0, 4.0)
        assert registry.value("drift_blocks_flagged_total") >= 1
        assert registry.value("drift_hot_swaps_total") >= 1
        assert 7 in detector.retuned
        history, params = detector.retuned[7]
        assert history.mean_rate == pytest.approx(0.25, rel=0.05)
        assert detector._states[7].params is params

    def test_swap_survives_rotated_checkpoint(self, tmp_path):
        from repro.core.pipeline import TrainedModel

        engine, detector, registry = self.build_engine()
        self.feed_uniform(engine, DAY, DAY + 6 * 3600.0, 4.0)
        assert 7 in detector.retuned
        path = tmp_path / "drift.ckpt.json"
        save_checkpoint_rotated(detector, path,
                                extra=engine.checkpoint_extra(seq=41))

        # Restore against the ORIGINAL (pre-drift) model: the retuned
        # history/params must come back from the checkpoint, not revert.
        rng = np.random.default_rng(21)
        original = train_history(
            np.sort(rng.uniform(0.0, DAY, int(0.05 * DAY))), 0.0, DAY)
        model = TrainedModel(
            family=Family.IPV4, histories={7: original},
            parameters={7: ParameterPlanner().plan_block(original)},
            train_start=0.0, train_end=DAY)
        restored = load_checkpoint_rotated(path, model)
        assert 7 in restored.retuned
        assert (restored.retuned[7][0].mean_rate
                == pytest.approx(detector.retuned[7][0].mean_rate))
        assert (restored._states[7].params.bin_seconds
                == detector._states[7].params.bin_seconds)
        assert restored.restored_extra["seq"] == 41

    def test_retune_rejects_poisoned_window(self):
        with pytest.raises(Exception):
            retune_block(np.array([1.0, float("nan")]), 0.0, 3600.0)


class TestCheckpointRotation:
    def make_detector(self):
        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0.0, DAY, 2000))
        history = train_history(times, 0.0, DAY)
        params = ParameterPlanner().plan_block(history)
        from repro.core.pipeline import TrainedModel

        detector = StreamingDetector(Family.IPV4, {3: history}, {3: params},
                                     DAY, sentinel=None)
        model = TrainedModel(family=Family.IPV4, histories={3: history},
                             parameters={3: params},
                             train_start=0.0, train_end=DAY)
        return detector, model

    def test_keeps_last_n_generations(self, tmp_path):
        detector, model = self.make_detector()
        base = tmp_path / "live.ckpt.json"
        for step in range(5):
            detector.observe(Observation(DAY + 100.0 * (step + 1),
                                         Family.IPV4, 3 << 8))
            save_checkpoint_rotated(detector, base, keep=3,
                                    extra={"seq": step})
        assert base.exists()
        assert (tmp_path / "live.ckpt.json.1").exists()
        assert (tmp_path / "live.ckpt.json.2").exists()
        assert not (tmp_path / "live.ckpt.json.3").exists()
        newest = load_checkpoint_rotated(base, model)
        assert newest.restored_extra["seq"] == 4

    def test_falls_back_past_corrupt_newest(self, tmp_path):
        detector, model = self.make_detector()
        base = tmp_path / "live.ckpt.json"
        for step in range(3):
            detector.observe(Observation(DAY + 100.0 * (step + 1),
                                         Family.IPV4, 3 << 8))
            save_checkpoint_rotated(detector, base, keep=3,
                                    extra={"seq": step})
        base.write_text("{ truncated mid-wri")
        restored = load_checkpoint_rotated(base, model)
        assert restored.restored_extra["seq"] == 1  # previous generation

    def test_all_corrupt_raises_format_error(self, tmp_path):
        detector, model = self.make_detector()
        base = tmp_path / "live.ckpt.json"
        save_checkpoint_rotated(detector, base, keep=2)
        base.write_text("garbage")
        (tmp_path / "live.ckpt.json.1").write_text("also garbage")
        with pytest.raises(CheckpointFormatError):
            load_checkpoint_rotated(base, model, keep=2)

    def test_missing_everything_raises_file_not_found(self, tmp_path):
        _, model = self.make_detector()
        with pytest.raises(FileNotFoundError):
            load_checkpoint_rotated(tmp_path / "absent.ckpt.json", model)


class TestRegistryValue:
    def test_reads_without_registering(self):
        registry = MetricsRegistry()
        assert registry.value("never_registered_total") is None
        assert registry.get("never_registered_total") is None  # no side effect

    def test_counter_gauge_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "hits").inc(3)
        registry.counter("moves_total", "moves",
                         labelnames=("direction",)).labels(
                             direction="up").inc(2)
        assert registry.value("hits_total") == 3
        assert registry.value("moves_total", direction="up") == 2
        assert registry.value("moves_total", direction="down") is None
        assert registry.value("moves_total") is None  # label set mismatch
        assert registry.value("hits_total", direction="up") is None

    def test_histograms_have_no_single_value(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "latency").observe(0.5)
        assert registry.value("lat_seconds") is None


GOLDEN_MANIFEST = {
    "format": "repro-live-manifest-v1",
    "plan_digest": "deadbeefcafe0123",
    "family": 4,
    "start": 86400.0,
    "status": "degraded",
    "global_watermark": 90000.0,
    "partitions": [
        {"index": 0, "unit": "00000", "blocks": 8, "measurable": 7,
         "status": "done", "watermark": 172800.0, "restarts": 0,
         "outcomes": ["ok"], "windows": 1025, "drift_swaps": 1,
         "checkpoint": "partition-00000.ckpt.json"},
        {"index": 1, "unit": "00001", "blocks": 8, "measurable": 8,
         "status": "lost", "watermark": 90000.0, "restarts": 3,
         "outcomes": ["crash", "crash", "crash"], "windows": 41,
         "drift_swaps": 0, "checkpoint": "partition-00001.ckpt.json"},
    ],
}

GOLDEN_RENDERED = """\
live run: status=degraded family=IPv4 plan=deadbeefcafe
  start t=86,400.0s, global watermark t=90,000.0s (2 partitions)
partitions:
  00000: done        8 blocks (7 measurable), watermark t=172,800.0s, \
1025 windows, 0 restarts, 1 drift swaps
  00001: lost        8 blocks (8 measurable), watermark t=90,000.0s, \
41 windows, 3 restarts, 0 drift swaps [crash,crash,crash]"""


class TestManifestInspect:
    def test_golden_render(self):
        from repro.cli import _render_live_manifest

        assert _render_live_manifest(GOLDEN_MANIFEST) == GOLDEN_RENDERED

    def test_inspect_cli_dispatches_on_format(self, tmp_path, capsys):
        path = tmp_path / "live-manifest.json"
        path.write_text(json.dumps(GOLDEN_MANIFEST))
        assert main(["inspect", str(path)]) == 0
        assert capsys.readouterr().out.strip() == GOLDEN_RENDERED


class TestPartitionedCLI:
    def test_requires_checkpoint_directory(self, live_setup, capsys):
        capture, _ = live_setup
        model_path = os.path.join(os.path.dirname(capture), "model.json")
        assert main(["live", capture, "--model", model_path,
                     "--partitions", "2"]) == 1
        assert "--checkpoint" in capsys.readouterr().err

    def test_validates_partition_arguments(self, live_setup):
        _, model = live_setup
        with pytest.raises(ValueError):
            LivePartitionSupervisor(model, partitions=0)
        with pytest.raises(ValueError):
            LivePartitionSupervisor(model, partition_chunk=-1)
        with pytest.raises(ValueError):
            LivePartitionSupervisor(model, partitions=2,
                                    reorder_horizon=-1.0)


class TestLiveStatusAccessor:
    """`live_status()` is the single source the manifest/health render."""

    def test_manifest_and_health_agree_with_live_status(self, live_setup,
                                                        tmp_path):
        capture, model = live_setup
        result, _, supervisor = run_partitioned(
            model, capture, tmp_path / "ckpt", partitions=3)
        status = supervisor.live_status()

        # Programmatic accessor: terminal shape of a clean run.
        assert status.status == "finalized"
        assert status.plan_digest == supervisor.digest
        assert status.observed == result.observed
        assert status.restarts == result.restarts == 0
        assert status.stream_front is not None
        assert status.global_watermark == min(
            p.watermark for p in status.partitions)
        assert not status.lost_partitions
        assert status.lost_measurable_keys == ()
        # Partitions jointly cover exactly the measurable population.
        covered = sorted(key for p in status.partitions
                         for key in p.measurable_keys)
        assert covered == sorted(model.measurable_keys)

        # The on-disk manifest is the same status, rendered.
        with open(result.manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["plan_digest"] == status.plan_digest
        assert manifest["status"] == status.status
        assert manifest["family"] == status.family
        assert manifest["start"] == status.start
        assert manifest["global_watermark"] == status.global_watermark
        rows = {row["index"]: row for row in manifest["partitions"]}
        assert sorted(rows) == [p.index for p in status.partitions]
        for p in status.partitions:
            row = rows[p.index]
            assert row["unit"] == p.unit
            assert row["status"] == p.status
            assert row["watermark"] == p.watermark
            assert row["restarts"] == p.restarts
            assert row["windows"] == p.windows
            assert row["drift_swaps"] == p.drift_swaps
            assert row["blocks"] == p.blocks
            assert row["measurable"] == p.measurable
            assert row["outcomes"] == list(p.outcomes)

        # And the /health document agrees field-for-field as well.
        health = supervisor.health_document()
        assert health["status"] == status.status
        assert health["plan_digest"] == status.plan_digest
        assert health["stream_front"] == status.stream_front
        assert health["global_watermark"] == status.global_watermark
        assert health["observed"] == status.observed
        assert health["restarts"] == status.restarts
        for p, row in zip(status.partitions, health["partitions"]):
            assert row["index"] == p.index
            assert row["status"] == p.status
            assert row["watermark"] == p.watermark
            assert row["watermark_lag"] == max(
                0.0, status.stream_front - p.watermark)

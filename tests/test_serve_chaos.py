"""Serve-chaos suite: the degradation contract under real faults.

Each scenario breaks one leg of the serving plane's environment and
asserts the *specific* degraded behaviour the contract promises — no
silent staleness, no fabricated state, no unbounded buffering:

* a subscriber that stops reading is evicted (bounded outbox), and its
  snapshot-then-deltas resync reconstructs a bit-identical replica;
* overload sheds with 503 + deterministic ``Retry-After`` while the
  observability endpoints stay reachable;
* a stalled detector starves publication, so responses degrade to
  ``stale`` (then 503 past the hard bound) and ``/ready`` trips;
* a partition that dies past its restart budget degrades exactly its
  own measurable keyspace to ``lost-coverage`` and announces it as a
  ``coverage-change`` event — sibling blocks keep answering normally;
* SIGTERM drains: subscribers get a proper close, the process exits 0.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import main
from repro.core.detector import StreamingDetector
from repro.core.serialize import load_model
from repro.live import LiveBlockEngine, LivePartitionSupervisor
from repro.net.blocks import Block
from repro.obs.metrics import MetricsRegistry
from repro.parallel import SupervisionPolicy
from repro.serve import (
    AdmissionConfig,
    BlockServingState,
    EngineBridge,
    EventSpec,
    LagPolicy,
    ReadyGate,
    ServeConfig,
    ServingPlane,
    SubscriberState,
    SupervisorBridge,
    SyncServeClient,
)
from repro.serve import ws
from repro.serve.client import http_get
from repro.telescope.capture import CaptureReader
from repro.testing.faults import after_windows, crash_on_block, process_fault_env

pytestmark = pytest.mark.faults

DAY = 86400.0
V4 = Block.parse("0.0.0.0/0").family


@pytest.fixture(scope="module")
def live_setup(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve_chaos")
    capture = str(root / "capture.pobs")
    model_path = str(root / "model.json")
    assert main(["simulate", "--blocks", "24", "--days", "2",
                 "--seed", "7", "--out", capture]) == 0
    assert main(["train", capture, "--train-end", str(DAY),
                 "--out", model_path]) == 0
    return capture, model_path, load_model(model_path)


def start_plane(**overrides):
    registry = MetricsRegistry()
    config = ServeConfig(port=0, **overrides)
    plane = ServingPlane(V4, config, registry=registry)
    plane.start()
    return plane, registry


def wait_for(predicate, timeout=15.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class _Flipper:
    """Test-side publisher: fold-as-you-publish, like the bridges."""

    def __init__(self, plane, keys):
        self.plane = plane
        self.states = {key: BlockServingState(up=True) for key in keys}
        self.count = 0

    def flip(self, key, up, pad=0):
        self.count += 1
        when = float(self.count)
        self.states[key] = BlockServingState(up=up, since=when)
        detail = {"pad": "x" * pad} if pad else {}
        self.plane.publish(
            dict(self.states), watermark=when,
            events=[EventSpec(kind="recovery" if up else "onset",
                              time=when, block=str(Block(V4, key, 24)),
                              key=key, detail=detail)])


class TestSlowConsumerEviction:
    def test_evicted_then_resynced_replica_is_bit_identical(self):
        """A wedged subscriber is evicted, not buffered; resync is exact.

        The victim connects, applies the initial snapshot, then stops
        reading while the publisher floods large events.  The bounded
        outbox must evict it (memory stays bounded).  The victim then
        drains whatever was in flight, reconnects with
        ``since=last_seq``, and catches up — its replica must be
        bit-identical to a fresh subscriber's pure-snapshot view.
        """
        plane, registry = start_plane(outbox_limit=8, write_high=1024)
        keys = [0xC00002 + i for i in range(4)]
        try:
            flipper = _Flipper(plane, keys)
            flipper.flip(keys[0], False)
            victim_state = SubscriberState()
            victim = SyncServeClient("127.0.0.1", plane.port)
            assert victim.accepted
            assert victim.recv_message()["type"] == "hello"
            assert victim_state.apply(victim.recv_message())  # snapshot

            # Victim stops reading; flood until the plane cuts it loose.
            evicted = lambda: (registry.value("serve_evictions_total")
                               or 0) >= 1
            floods = 0
            while not evicted() and floods < 600:
                flipper.flip(keys[floods % len(keys)], bool(floods % 2),
                             pad=65536)
                floods += 1
                if floods % 16 == 0:
                    time.sleep(0.01)  # let the writer task judge the box
            assert wait_for(evicted), \
                f"no eviction after {floods} flood events"
            assert wait_for(lambda: plane.subscriber_count == 0)

            # Drain the victim's in-flight tail (ordered, contiguous).
            victim.settimeout(5.0)
            saw_evicted_frame = False
            try:
                while True:
                    message = victim.recv_message()
                    if message is None:
                        break
                    if message.get("type") == "evicted":
                        saw_evicted_frame = True
                        assert message["reason"] == "slow-consumer"
                        break
                    victim_state.apply(message)
            except (ws.WebSocketError, OSError, socket.timeout):
                pass  # a hard cut is within the eviction contract
            victim.close()
            assert victim_state.gaps_detected == 0

            # Resync from the last applied seq; heal to the live head.
            target = plane.last_event_seq
            with SyncServeClient("127.0.0.1", plane.port,
                                 since=victim_state.last_seq) as again:
                assert again.accepted
                again.recv_message()  # hello
                again.settimeout(10.0)
                while victim_state.last_seq < target:
                    message = again.recv_message()
                    assert message is not None
                    victim_state.apply(message)
                again.ack(victim_state.last_seq)

            # A fresh subscriber's pure-snapshot replica is the truth.
            fresh_state = SubscriberState()
            with SyncServeClient("127.0.0.1", plane.port) as fresh:
                fresh.recv_message()  # hello
                assert fresh_state.apply(fresh.recv_message())
            assert fresh_state.last_seq == target
            assert victim_state.view() == fresh_state.view()
            assert victim_state.gaps_detected == 0
            assert saw_evicted_frame or floods > 0  # goodbye is best-effort
        finally:
            plane.stop(drain=False)


class TestOverloadShedding:
    def test_sheds_queries_but_never_observability(self):
        plane, registry = start_plane(
            admission=AdmissionConfig(shed_qps=5.0, shed_burst=3.0,
                                      retry_base_s=2.0, salt="chaos"))
        try:
            _Flipper(plane, [0xC00002]).flip(0xC00002, False)
            outcomes = []
            for _ in range(40):
                status, headers, body = http_get(
                    "127.0.0.1", plane.port, "/v1/state?address=192.0.2.1")
                outcomes.append((status, headers, body))
            statuses = [status for status, _, _ in outcomes]
            assert 200 in statuses, "admission must not starve everything"
            sheds = [(headers, body) for status, headers, body in outcomes
                     if status == 503]
            assert sheds, "40 back-to-back queries at 5 qps must shed"
            for headers, body in sheds:
                document = json.loads(body)
                assert document["error"] == "overloaded"
                assert document["reason"] == "qps"
                # Deterministic jitter: hints live in [base/2, base]
                # plus the bucket wait — never zero, never silent.
                assert document["retry_after_s"] > 0
                assert int(headers["retry-after"]) >= 1
            assert registry.value("serve_shed_total",
                                  reason="qps") == len(sheds)
            # The observability endpoints are never shed: an operator
            # diagnosing the overload must still see it.
            for path in ("/health", "/ready", "/metrics", "/metrics.json"):
                status, _, _ = http_get("127.0.0.1", plane.port, path)
                assert status in (200, 503) if path == "/ready" \
                    else status == 200
                if path == "/metrics":
                    assert status == 200
        finally:
            plane.stop(drain=False)

    def test_subscription_ceiling_rejects_with_hint(self):
        plane, registry = start_plane(
            admission=AdmissionConfig(max_subscribers=1, salt="chaos"))
        try:
            _Flipper(plane, [0xC00002]).flip(0xC00002, False)
            first = SyncServeClient("127.0.0.1", plane.port)
            assert first.accepted
            assert first.recv_message()["type"] == "hello"
            second = SyncServeClient("127.0.0.1", plane.port)
            assert not second.accepted
            assert second.status == 503
            assert int(second.headers["retry-after"]) >= 1
            rejection = json.loads(second.reject_body)
            assert rejection["reason"] == "subscribers"
            assert registry.value("serve_shed_total",
                                  reason="subscribers") == 1
            first.close()
            # The slot frees up: a later subscriber is admitted.
            assert wait_for(lambda: plane.subscriber_count == 0)
            third = SyncServeClient("127.0.0.1", plane.port)
            assert third.accepted
            third.close()
        finally:
            plane.stop(drain=False)


class TestDetectorStall:
    def test_stall_degrades_to_stale_then_fails_closed(self, live_setup):
        """Publication is progress-driven; a stalled engine cannot hide.

        The bridge republishes only on progress, so when the stream
        stops the served snapshot ages honestly: responses degrade to
        ``stale`` past the soft bound, ``/ready`` trips, and past the
        hard bound queries fail closed with 503 — last-known state is
        never passed off as fresh.
        """
        capture, _, model = live_setup
        plane, _ = start_plane(lag=LagPolicy(stale_after_s=0.4,
                                             fail_after_s=1.2),
                               ready=ReadyGate(max_lag_s=0.4))
        try:
            detector = StreamingDetector(model.family, model.histories,
                                         model.parameters, model.train_end)
            engine = LiveBlockEngine(detector)
            bridge = EngineBridge(engine, plane,
                                  publish_min_interval_s=0.0)
            fed = 0
            with CaptureReader(capture) as reader:
                for observation in reader:
                    if observation.time < detector.start:
                        continue
                    engine.feed(observation)
                    fed += 1
                    if fed >= 20000:
                        break
            assert bridge.step(force=True)
            seq = plane.snapshot.seq

            # The stream stalls: repeated steps see no progress and
            # must NOT republish (that would mask the stall).
            for _ in range(10):
                assert not bridge.step()
            assert plane.snapshot.seq == seq

            status, _, body = http_get("127.0.0.1", plane.port,
                                       "/v1/state?prefix=0.0.0.0/0")
            assert status == 200
            assert json.loads(body)["stamp"]["degraded"] is None
            status, _, _ = http_get("127.0.0.1", plane.port, "/ready")
            assert status == 200

            time.sleep(0.6)  # past stale_after_s, inside fail_after_s
            assert not bridge.step()  # still no progress, still honest
            status, _, body = http_get("127.0.0.1", plane.port,
                                       "/v1/state?prefix=0.0.0.0/0")
            assert status == 200
            document = json.loads(body)
            assert document["stamp"]["degraded"] == "stale"
            assert document["stamp"]["staleness_s"] > 0.4
            status, _, body = http_get("127.0.0.1", plane.port, "/ready")
            assert status == 503
            assert any("stale" in reason
                       for reason in json.loads(body)["reasons"])

            time.sleep(0.8)  # now past the 1.2 s hard bound
            status, headers, body = http_get(
                "127.0.0.1", plane.port, "/v1/state?prefix=0.0.0.0/0")
            assert status == 503
            assert json.loads(body)["degraded"] == "stale"
            assert "retry-after" in headers

            # Progress resumes -> fresh publication -> healthy again.
            bridge.step(force=True)
            status, _, body = http_get("127.0.0.1", plane.port,
                                       "/v1/state?prefix=0.0.0.0/0")
            assert status == 200
            assert json.loads(body)["stamp"]["degraded"] is None
        finally:
            plane.stop(drain=False)


class TestPartitionLossDegradation:
    def test_killed_partition_degrades_exactly_its_keyspace(
            self, live_setup, tmp_path, monkeypatch):
        capture, _, model = live_setup
        victim = sorted(model.parameters)[0]
        counter_dir = tmp_path / "counters"
        os.makedirs(counter_dir, exist_ok=True)
        for key, value in process_fault_env(
                after_windows(crash_on_block(victim), 50),
                counter_dir=str(counter_dir)).items():
            monkeypatch.setenv(key, value)

        plane, _ = start_plane(ready=ReadyGate(max_lag_s=3600.0,
                                               max_lost_fraction=0.05))
        try:
            registry = MetricsRegistry()
            os.makedirs(tmp_path / "ckpt", exist_ok=True)
            supervisor = LivePartitionSupervisor(
                model, partitions=4,
                policy=SupervisionPolicy(retries=0, backoff_base=0.01),
                checkpoint_dir=str(tmp_path / "ckpt"),
                checkpoint_every=1800.0, reorder_horizon=2.0,
                metrics=registry)
            bridge = SupervisorBridge(supervisor, plane,
                                      publish_min_interval_s=0.05)
            result = supervisor.run(capture)
            assert result.degraded

            status = supervisor.live_status()
            lost = status.lost_partitions
            assert len(lost) == 1 and victim in lost[0].keys
            expected = sorted(str(Block(model.family, key, 24))
                              for key in lost[0].measurable_keys)
            survivors = [key for partition in status.partitions
                         if partition.status != "lost"
                         for key in partition.measurable_keys]
            assert survivors

            # The final published snapshot marks exactly that keyspace.
            assert wait_for(
                lambda: plane.snapshot is not None
                and sorted(plane.snapshot.lost_prefixes) == expected)

            # Queries inside the lost keyspace answer degraded, with
            # the affected prefix named — never a fabricated verdict.
            lost_address = str(Block(model.family,
                                     lost[0].measurable_keys[0],
                                     24)).split("/")[0]
            _, _, body = http_get("127.0.0.1", plane.port,
                                  f"/v1/state?address={lost_address}")
            document = json.loads(body)
            assert not document["found"]
            assert document["degraded"] == "lost-coverage"
            # Sibling coverage is untouched: survivors still answer.
            alive_address = str(Block(model.family, survivors[0],
                                      24)).split("/")[0]
            _, _, body = http_get("127.0.0.1", plane.port,
                                  f"/v1/state?address={alive_address}")
            document = json.loads(body)
            assert document["found"]
            assert document["degraded"] is None

            # The event stream announced the coverage change once, for
            # exactly the lost partition's measurable prefixes.
            _, _, body = http_get("127.0.0.1", plane.port,
                                  "/v1/events?since=0")
            events = json.loads(body)["events"]
            changes = [event for event in events
                       if event["kind"] == "coverage-change"]
            assert len(changes) == 1
            assert changes[0]["detail"]["partition"] == lost[0].unit
            assert sorted(changes[0]["detail"]["affected_prefixes"]) \
                == expected

            # /ready trips on lost coverage (gate set tight above).
            status_code, _, body = http_get("127.0.0.1", plane.port,
                                            "/ready")
            assert status_code == 503
            assert any("lost" in reason
                       for reason in json.loads(body)["reasons"])
        finally:
            plane.stop(drain=False)


class TestSigtermDraining:
    def test_cli_serve_drains_subscribers_and_exits_zero(self, live_setup):
        capture, model_path, _ = live_setup
        run = [sys.executable, "-c",
               "import sys; from repro.cli import main; "
               "sys.exit(main(sys.argv[1:]))"]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src"),
             env.get("PYTHONPATH", "")])
        server = subprocess.Popen(
            run + ["serve", capture, "--model", model_path, "--port", "0",
                   "--max-clients", "16", "--max-lag-s", "3600",
                   "--shed-qps", "0", "--linger-s", "-1"],
            stderr=subprocess.PIPE, text=True, env=env)
        stderr_lines = []

        def drain_stderr():
            for line in server.stderr:
                stderr_lines.append(line)

        reader = threading.Thread(target=drain_stderr, daemon=True)
        reader.start()
        try:
            url = None
            deadline = time.monotonic() + 60.0
            while url is None and time.monotonic() < deadline:
                for line in stderr_lines:
                    if line.startswith("serving plane: "):
                        url = line.split(": ", 1)[1].strip()
                        break
                else:
                    assert server.poll() is None, "".join(stderr_lines)
                    time.sleep(0.05)
            assert url is not None, "serve never announced its URL"
            port = int(url.rsplit(":", 1)[1])

            def is_ready():
                try:
                    status, _, _ = http_get("127.0.0.1", port, "/ready")
                except OSError:
                    return False
                return status == 200

            assert wait_for(is_ready, timeout=120.0, interval=0.2), \
                "/ready never flipped: " + "".join(stderr_lines[-10:])

            state = SubscriberState()
            with SyncServeClient("127.0.0.1", port, timeout=30.0) as client:
                assert client.accepted
                assert client.recv_message()["type"] == "hello"
                assert state.apply(client.recv_message())
                assert state.blocks  # replica holds the replayed view
                server.send_signal(signal.SIGTERM)
                # Drain contract: remaining messages flush, then a
                # proper close — recv returns None, never a cut socket.
                while True:
                    message = client.recv_message()
                    if message is None:
                        break
                    state.apply(message)
            assert state.gaps_detected == 0
        except Exception:
            server.kill()
            raise
        finally:
            code = server.wait(timeout=60)
            reader.join(timeout=10)
        assert code == 0, f"exit {code}: " + "".join(stderr_lines[-15:])
        assert any("stopping cleanly" in line for line in stderr_lines)

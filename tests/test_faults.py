"""Fault-injection suite: the ingest path must degrade, not lie.

Every test here injects a realistic feed fault with
:mod:`repro.testing.faults` and asserts the resilient-ingest contract:

* bounded disorder is invisible (reorder within the horizon produces
  bit-identical events);
* observer death is not a mass outage (the sentinel quarantines feed
  gaps and the detector retracts verdicts inside them);
* a killed monitor resumes from its checkpoint with bit-identical
  events;
* random loss degrades belief boundedly (no false outages on healthy
  blocks at 10% loss);
* corrupt captures fail loudly with location, or stop cleanly when
  tolerance is requested.
"""

from __future__ import annotations

import io
import os

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.detector import StreamingDetector
from repro.core.history import train_histories
from repro.core.parameters import ParameterPlanner
from repro.core.pipeline import TrainedModel
from repro.core.sentinel import SentinelConfig, VantageSentinel
from repro.net.addr import Family
from repro.telescope.capture import (
    CaptureCorruptionError,
    CaptureReader,
    CaptureWriter,
)
from repro.telescope.records import Observation, ObservationBatch
from repro.telescope.reorder import LatePolicy, ReorderBuffer, reorder_stream
from repro.testing.faults import (
    blind_vantage,
    clock_skew,
    compose,
    corrupt_capture,
    drop_observations,
    duplicate_observations,
    feed_gap,
    reorder_observations,
    vantage_brownout,
    vantage_lag,
)
from repro.traffic.sources import poisson_times

pytestmark = pytest.mark.faults

DAY = 86400.0


@pytest.fixture(scope="module")
def trained():
    """Six healthy blocks spanning dense to sparse, trained on day one."""
    rng = np.random.default_rng(11)
    rates = {key: rate for key, rate in
             enumerate([0.3, 0.2, 0.2, 0.15, 0.1, 0.05], start=1)}
    train = {k: poisson_times(rng, r, 0, DAY) for k, r in rates.items()}
    evaluate = {k: poisson_times(rng, r, DAY, 2 * DAY)
                for k, r in rates.items()}
    histories = train_histories(train, 0, DAY)
    parameters = ParameterPlanner().plan(histories)
    model = TrainedModel(Family.IPV4, histories, parameters, 0.0, DAY)
    rows = sorted(Observation(float(t), Family.IPV4, k << 8)
                  for k, times in evaluate.items() for t in times)
    return model, rows


def run_detector(model, rows, sentinel=None, end=2 * DAY):
    detector = StreamingDetector(model.family, model.histories,
                                 model.parameters, DAY, sentinel=sentinel)
    for row in rows:
        detector.observe(row)
    return detector.finalize(end)


class TestFeedGap:
    GAP = (DAY + 40000.0, DAY + 41800.0)  # 30 minutes, mid-day

    def overlapping_events(self, results):
        return [event for block in results.values()
                for event in block.timeline.events()
                if event.start < self.GAP[1] and event.end > self.GAP[0]]

    def test_gap_without_sentinel_is_a_false_mass_outage(self, trained):
        model, rows = trained
        results = run_detector(model, feed_gap(rows, *self.GAP))
        assert len(self.overlapping_events(results)) >= len(results) // 2

    def test_sentinel_quarantines_gap_and_suppresses_events(self, trained):
        model, rows = trained
        sentinel = VantageSentinel(DAY, SentinelConfig())
        results = run_detector(model, feed_gap(rows, *self.GAP),
                               sentinel=sentinel)
        windows = sentinel.quarantined_intervals()
        assert len(windows) == 1
        assert windows[0][0] <= self.GAP[0]
        assert windows[0][1] >= self.GAP[1]
        assert self.overlapping_events(results) == []
        # Nothing real was suppressed elsewhere: the feed was healthy.
        assert all(block.timeline.events(300.0) == []
                   for block in results.values())
        # The retraction is recorded on every block result.
        assert all(block.quarantined for block in results.values())

    def test_real_outage_outside_gap_survives_quarantine(self, trained):
        model, rows = trained
        outage = (DAY + 60000.0, DAY + 64000.0)
        faulted = list(feed_gap(rows, *self.GAP))
        faulted = [row for row in faulted
                   if not (row.block_key == 1
                           and outage[0] <= row.time < outage[1])]
        sentinel = VantageSentinel(DAY, SentinelConfig())
        results = run_detector(model, faulted, sentinel=sentinel)
        events = results[1].timeline.events(300.0)
        assert any(e.start < outage[1] and e.end > outage[0]
                   for e in events), "quarantine must not eat real outages"

    def test_sentinel_with_known_rate_needs_no_warmup(self, trained):
        model, rows = trained
        aggregate_rate = 1.0  # sum of the fixture's block rates
        early_gap = (DAY + 120.0, DAY + 1920.0)
        sentinel = VantageSentinel(
            DAY, SentinelConfig(expected_rate=aggregate_rate))
        run_detector(model, feed_gap(rows, *early_gap), sentinel=sentinel)
        windows = sentinel.quarantined_intervals()
        assert windows and windows[0][0] <= early_gap[0]


class TestReorderTolerance:
    def test_ten_percent_reorder_within_horizon_is_bit_identical(
            self, trained):
        model, rows = trained
        clean = run_detector(model, rows)
        rng = np.random.default_rng(23)
        noisy = list(reorder_observations(rows, 0.10, 30.0, rng))
        assert noisy != rows, "fault must actually perturb the order"
        restored = reorder_stream(noisy, horizon_seconds=30.0)
        reordered = run_detector(model, restored)
        assert set(clean) == set(reordered)
        for key in clean:
            assert clean[key].timeline == reordered[key].timeline

    def test_beyond_horizon_records_are_counted_not_fatal(self, trained):
        model, rows = trained
        rng = np.random.default_rng(29)
        noisy = list(reorder_observations(rows, 0.05, 120.0, rng))
        buffer = ReorderBuffer(10.0, LatePolicy.COUNT)
        detector = StreamingDetector(model.family, model.histories,
                                     model.parameters, DAY)
        for row in noisy:
            for ready in buffer.push(row):
                detector.observe(ready)
        for ready in buffer.flush():
            detector.observe(ready)
        detector.finalize(2 * DAY)
        assert buffer.stats.late_dropped > 0
        assert (buffer.stats.emitted + buffer.stats.late_dropped
                == buffer.stats.pushed)


class TestCheckpointResume:
    def test_kill_and_resume_mid_day_is_bit_identical(self, trained,
                                                      tmp_path):
        model, rows = trained
        clean = run_detector(model, rows)

        kill_at = DAY + 43200.0
        first = StreamingDetector(model.family, model.histories,
                                  model.parameters, DAY,
                                  sentinel=VantageSentinel(DAY))
        for row in rows:
            if row.time >= kill_at:
                break  # the process dies here
            first.observe(row)
        path = tmp_path / "detector.ckpt.json"
        save_checkpoint(first, path)
        del first

        resumed = load_checkpoint(path, model)
        assert resumed.sentinel is not None
        for row in rows:
            if row.time <= resumed.last_time:
                continue  # replayed from the capture, already accounted
            resumed.observe(row)
        results = resumed.finalize(2 * DAY)
        for key in clean:
            assert clean[key].timeline == results[key].timeline

    def test_checkpoint_is_atomic_under_crash(self, trained, tmp_path,
                                              monkeypatch):
        model, rows = trained
        detector = StreamingDetector(model.family, model.histories,
                                     model.parameters, DAY)
        path = tmp_path / "detector.ckpt.json"
        save_checkpoint(detector, path)
        good = path.read_text()

        for row in rows[:1000]:
            detector.observe(row)
        monkeypatch.setattr(os, "replace",
                            lambda *a: (_ for _ in ()).throw(OSError("kill")))
        with pytest.raises(OSError):
            save_checkpoint(detector, path)
        assert path.read_text() == good, "old checkpoint must survive"
        assert list(tmp_path.glob("*.tmp")) == []


class TestLossAndDuplication:
    def test_ten_percent_loss_causes_no_false_outages(self, trained):
        model, rows = trained
        rng = np.random.default_rng(31)
        lossy = drop_observations(rows, 0.10, rng)
        results = run_detector(model, lossy)
        for block in results.values():
            assert block.timeline.events(300.0) == [], \
                "10% random loss must not fabricate outages"

    def test_duplication_causes_no_false_recoveries(self, trained):
        model, rows = trained
        outage = (DAY + 30000.0, DAY + 34000.0)
        faulted = [row for row in rows
                   if not (row.block_key == 1
                           and outage[0] <= row.time < outage[1])]
        rng = np.random.default_rng(37)
        duplicated = duplicate_observations(faulted, 0.2, rng)
        results = run_detector(model, duplicated)
        events = results[1].timeline.events(300.0)
        assert any(e.start < outage[1] and e.end > outage[0]
                   for e in events)

    def test_constant_clock_offset_shifts_events_coherently(self, trained):
        model, rows = trained
        outage = (DAY + 30000.0, DAY + 34000.0)
        faulted = [row for row in rows
                   if not (row.block_key == 1
                           and outage[0] <= row.time < outage[1])]
        skewed = clock_skew(faulted, offset=5.0)
        results = run_detector(model, skewed, end=2 * DAY + 5.0)
        events = results[1].timeline.events(300.0)
        assert any(e.start < outage[1] + 5.0 and e.end > outage[0] + 5.0
                   for e in events)

    def test_compose_chains_mutators_in_order(self, trained):
        _, rows = trained
        rng = np.random.default_rng(41)
        gap = (DAY + 10000.0, DAY + 11000.0)
        mutated = list(compose(
            rows,
            lambda s: drop_observations(s, 0.05, rng),
            lambda s: feed_gap(s, *gap),
        ))
        assert 0 < len(mutated) < len(rows)
        assert not any(gap[0] <= row.time < gap[1] for row in mutated)


def tagged_stream(end=100.0, step=1.0):
    """Two interleaved vantages at constant rate, timestamp-ordered."""
    rows = []
    for t in np.arange(0.0, end, step):
        rows.append(("dns", Observation(float(t), Family.IPV4, 1 << 8)))
        rows.append(("darknet",
                     Observation(float(t) + 0.25, Family.IPV4, 1 << 8)))
    return rows


class TestVantageFaults:
    def test_blind_vantage_silences_only_the_target(self):
        rows = tagged_stream()
        blinded = list(blind_vantage(rows, "darknet", at=40.0, until=60.0))
        dark = [o.time for name, o in blinded if name == "darknet"]
        dns = [o.time for name, o in blinded if name == "dns"]
        assert not any(40.0 <= t < 60.0 for t in dark)
        assert dns == [o.time for name, o in rows if name == "dns"]
        # Order is untouched: blinding only deletes.
        times = [o.time for _, o in blinded]
        assert times == sorted(times)

    def test_blind_vantage_open_end_never_recovers(self):
        rows = tagged_stream()
        blinded = list(blind_vantage(rows, "darknet", at=40.0))
        assert all(o.time < 40.0 for name, o in blinded
                   if name == "darknet")

    def test_blind_vantage_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            list(blind_vantage(tagged_stream(), "dns", at=50.0, until=40.0))

    def test_brownout_sheds_partially_and_deterministically(self):
        rows = tagged_stream(end=400.0)
        kept = list(vantage_brownout(rows, "darknet", 0.0, 400.0, 0.3,
                                     np.random.default_rng(7)))
        again = list(vantage_brownout(rows, "darknet", 0.0, 400.0, 0.3,
                                      np.random.default_rng(7)))
        assert kept == again
        dark = sum(1 for name, _ in kept if name == "darknet")
        total = sum(1 for name, _ in rows if name == "darknet")
        assert 0 < dark < total  # degraded, not dead
        assert abs(dark / total - 0.3) < 0.1
        assert (sum(1 for name, _ in kept if name == "dns")
                == sum(1 for name, _ in rows if name == "dns"))

    def test_brownout_validates_fraction(self):
        with pytest.raises(ValueError):
            list(vantage_brownout(tagged_stream(), "dns", 0.0, 10.0, 1.5,
                                  np.random.default_rng(1)))

    def test_lag_displaces_but_keeps_stream_feedable(self):
        rows = tagged_stream()
        lagged = list(vantage_lag(rows, "darknet", 5.0,
                                  start=40.0, end=60.0))
        times = [o.time for _, o in lagged]
        assert times == sorted(times), "output must stay observe()-able"
        dark = [o.time for name, o in lagged if name == "darknet"]
        # Records inside the window are restamped at delivery (+lag).
        assert not any(40.0 <= t < 45.0 for t in dark)
        assert sum(1 for name, _ in lagged if name == "darknet") == sum(
            1 for name, _ in rows if name == "darknet"), \
            "lag displaces, it never drops"

    def test_lag_zero_is_identity(self):
        rows = tagged_stream(end=20.0)
        assert list(vantage_lag(rows, "darknet", 0.0)) == rows


class TestCaptureCorruption:
    def make_capture(self) -> bytes:
        rng = np.random.default_rng(43)
        times = np.sort(rng.uniform(0, 1000.0, 64))
        batch = ObservationBatch(Family.IPV4, times,
                                 np.arange(64, dtype=np.uint64))
        buffer = io.BytesIO()
        with CaptureWriter(buffer) as writer:
            writer.write_batch(batch)
        return buffer.getvalue()

    @pytest.mark.parametrize("mode", ["truncate", "flip"])
    def test_corruption_raises_with_location(self, mode):
        rng = np.random.default_rng(47)
        damaged = corrupt_capture(self.make_capture(), rng, mode)
        reader = CaptureReader(io.BytesIO(damaged))
        with pytest.raises(CaptureCorruptionError) as info:
            list(reader)
        assert info.value.byte_offset > 0
        assert 0 < info.value.records_read < 64
        assert str(info.value.records_read) in str(info.value)

    @pytest.mark.parametrize("mode", ["truncate", "flip"])
    def test_tolerant_reader_stops_at_last_good_frame(self, mode):
        rng = np.random.default_rng(47)
        clean = self.make_capture()
        damaged = corrupt_capture(clean, rng, mode)
        reader = CaptureReader(io.BytesIO(damaged), tolerant=True)
        survivors = list(reader)
        assert reader.stopped_early
        assert 0 < len(survivors) < 64
        assert len(survivors) == reader.records_read
        # The surviving prefix is byte-exact with the clean capture.
        pristine = list(CaptureReader(io.BytesIO(clean)))
        assert survivors == pristine[:len(survivors)]

"""Serving plane: protocol units, query semantics, resync property.

Covers the pieces of :mod:`repro.serve` that do not need chaos
(``tests/test_serve_chaos.py`` owns faults): the hand-rolled WebSocket
codec against the RFC 6455 vector, admission-control primitives with a
fake clock, the event broker's gap contract, snapshot queries with
lost-coverage degradation, an in-process end-to-end pass over real
sockets, and the hypothesis property at the heart of the subscribe
channel — any at-least-once interleaving of drops, duplicates,
reorderings and snapshot/delta resyncs converges every client to the
same replica.
"""

import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import Address, Family
from repro.net.blocks import Block
from repro.serve import (
    AdmissionConfig,
    BlockServingState,
    EventBroker,
    EventSpec,
    LagPolicy,
    ReadyGate,
    ServeConfig,
    ServingPlane,
    SubscriberState,
    SyncServeClient,
    TokenBucket,
    build_snapshot,
)
from repro.serve import ws
from repro.serve.admission import retry_jitter
from repro.serve.client import http_get
from repro.testing.faults import (
    compose,
    drop_observations,
    duplicate_observations,
    reorder_observations,
)

V4 = Family.IPV4


# -- WebSocket codec ---------------------------------------------------------

class TestWebSocketCodec:
    def test_rfc6455_accept_vector(self):
        # The handshake example from RFC 6455 §1.3.
        assert (ws.accept_key("dGhlIHNhbXBsZSBub25jZQ==")
                == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=")

    @pytest.mark.parametrize("mask", [False, True])
    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536])
    def test_frame_roundtrip(self, mask, size):
        payload = bytes(range(256)) * (size // 256 + 1)
        payload = payload[:size]
        frame = ws.encode_frame(ws.OP_TEXT, payload, mask=mask)
        view = memoryview(frame)
        offset = [0]

        def readexactly(n):
            data = bytes(view[offset[0]:offset[0] + n])
            offset[0] += n
            return data

        opcode, decoded = ws.read_frame_blocking(readexactly)
        assert opcode == ws.OP_TEXT
        assert decoded == payload

    def test_close_payload_roundtrip(self):
        payload = ws.close_payload(1001, "going away")
        assert int.from_bytes(payload[:2], "big") == 1001
        assert payload[2:] == b"going away"

    def test_fragmented_frame_rejected(self):
        frame = bytearray(ws.encode_frame(ws.OP_TEXT, b"hi"))
        frame[0] &= 0x7F  # clear FIN
        view = memoryview(bytes(frame))
        offset = [0]

        def readexactly(n):
            data = bytes(view[offset[0]:offset[0] + n])
            offset[0] += n
            return data

        with pytest.raises(ws.WebSocketError):
            ws.read_frame_blocking(readexactly)


# -- admission control -------------------------------------------------------

class TestTokenBucket:
    def test_rate_limits_and_refills(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()
        now[0] += 0.5  # one token refilled at 2/s
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_zero_rate_admits_everything(self):
        bucket = TokenBucket(rate=0.0)
        assert all(bucket.try_take() for _ in range(1000))


class TestRetryJitter:
    def test_deterministic_and_bounded(self):
        first = retry_jitter("salt", "/v1/state", 0, base=4.0)
        again = retry_jitter("salt", "/v1/state", 0, base=4.0)
        assert first == again
        assert 2.0 <= first <= 4.0

    def test_varies_with_attempt_and_endpoint(self):
        hints = {retry_jitter("s", endpoint, n, base=8.0)
                 for endpoint in ("/v1/state", "/v1/events")
                 for n in range(4)}
        assert len(hints) > 1


class TestReadyGate:
    def test_no_snapshot_is_not_ready(self):
        ready, reasons = ReadyGate().evaluate(None, now=100.0)
        assert not ready
        assert any("no snapshot" in reason for reason in reasons)

    def test_fresh_snapshot_is_ready(self):
        snapshot = build_snapshot(V4, {1: BlockServingState(up=True)},
                                  watermark=50.0, published_at=99.0)
        ready, reasons = ReadyGate(max_lag_s=10.0).evaluate(snapshot,
                                                           now=100.0)
        assert ready and not reasons

    def test_lagging_snapshot_trips(self):
        snapshot = build_snapshot(V4, {1: BlockServingState(up=True)},
                                  watermark=50.0, published_at=0.0)
        ready, reasons = ReadyGate(max_lag_s=10.0).evaluate(snapshot,
                                                           now=100.0)
        assert not ready
        assert any("lag" in reason or "stale" in reason
                   for reason in reasons)

    def test_lost_coverage_trips(self):
        snapshot = build_snapshot(
            V4, {1: BlockServingState(up=True)},
            lost={2: "lost-coverage", 3: "lost-coverage"},
            watermark=50.0, published_at=99.0)
        ready, reasons = ReadyGate(
            max_lag_s=10.0, max_lost_fraction=0.5).evaluate(snapshot,
                                                            now=100.0)
        assert not ready
        assert any("lost" in reason for reason in reasons)


# -- event broker ------------------------------------------------------------

class TestEventBroker:
    def test_seqs_are_monotone_from_one(self):
        broker = EventBroker()
        seqs = [broker.publish(EventSpec(kind="onset", time=t),
                               watermark=t).seq
                for t in (1.0, 2.0, 3.0)]
        assert seqs == [1, 2, 3]
        assert broker.last_seq == 3

    def test_since_pure_deltas(self):
        broker = EventBroker(capacity=10)
        for t in range(5):
            broker.publish(EventSpec(kind="onset", time=float(t)),
                           watermark=float(t))
        events, gap = broker.since(2)
        assert [event.seq for event in events] == [3, 4, 5]
        assert not gap

    def test_since_reports_gap_past_the_ring(self):
        broker = EventBroker(capacity=3)
        for t in range(6):
            broker.publish(EventSpec(kind="onset", time=float(t)),
                           watermark=float(t))
        events, gap = broker.since(1)  # seq 2 evicted (ring holds 4..6)
        assert gap
        assert [event.seq for event in events] == [4, 5, 6]

    def test_caught_up_is_empty_without_gap(self):
        broker = EventBroker(capacity=2)
        for t in range(5):
            broker.publish(EventSpec(kind="onset", time=float(t)),
                           watermark=float(t))
        assert broker.since(5) == ([], False)
        assert broker.since(9) == ([], False)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventSpec(kind="mystery", time=0.0)


# -- lag policy and snapshot queries -----------------------------------------

class TestLagPolicy:
    def test_judgements(self):
        policy = LagPolicy(stale_after_s=10.0, fail_after_s=60.0)
        assert policy.judge(5.0) == "ok"
        assert policy.judge(30.0) == "stale"
        assert policy.judge(61.0) == "fail"

    def test_no_hard_bound_never_fails(self):
        policy = LagPolicy(stale_after_s=10.0, fail_after_s=None)
        assert policy.judge(1e9) == "stale"

    def test_fail_bound_must_dominate(self):
        with pytest.raises(ValueError):
            LagPolicy(stale_after_s=30.0, fail_after_s=5.0)


class TestSnapshotQueries:
    @pytest.fixture
    def snapshot(self):
        up = Block.parse("192.0.2.0/24")
        down = Block.parse("192.0.3.0/24")
        return build_snapshot(
            V4,
            {up.prefix: BlockServingState(up=True, belief=0.97),
             down.prefix: BlockServingState(up=False, since=500.0)},
            lost={Block.parse("10.9.0.0/24").prefix: "quarantined"},
            lost_blocks=[Block.parse("203.0.0.0/16")],
            watermark=1000.0, published_at=5.0, seq=3, events_through=7)

    def test_address_longest_prefix(self, snapshot):
        hit = snapshot.query_address(Address.parse("192.0.3.77"))
        assert hit["found"] and not hit["up"]
        assert hit["block"] == "192.0.3.0/24"
        assert hit["since"] == 500.0
        assert hit["degraded"] is None

    def test_address_miss(self, snapshot):
        miss = snapshot.query_address(Address.parse("8.8.8.8"))
        assert not miss["found"] and miss["degraded"] is None

    def test_lost_keyspace_never_answers_silently(self, snapshot):
        lost = snapshot.query_address(Address.parse("203.0.113.9"))
        assert not lost["found"]
        assert lost["degraded"] == "lost-coverage"
        assert lost["affected_prefixes"] == ["203.0.0.0/16"]
        quarantined = snapshot.query_address(Address.parse("10.9.0.1"))
        assert quarantined["degraded"] == "quarantined"

    def test_prefix_subtree(self, snapshot):
        result = snapshot.query_prefix(Block.parse("192.0.0.0/16"))
        assert result["count"] == 2 and result["down"] == 1
        assert result["degraded"] is None

    def test_prefix_inside_lost_keyspace_is_degraded(self, snapshot):
        result = snapshot.query_prefix(Block.parse("203.0.113.0/24"))
        assert result["degraded"] == "lost-coverage"
        assert result["affected_prefixes"] == ["203.0.0.0/16"]

    def test_stamp_shape(self, snapshot):
        stamp = snapshot.stamp(1.23456, "stale")
        assert stamp == {"watermark": 1000.0, "staleness_s": 1.235,
                         "degraded": "stale", "snapshot_seq": 3,
                         "events_through": 7}

    def test_snapshot_message_rebuilds_the_view(self, snapshot):
        client = SubscriberState()
        assert client.apply(snapshot.snapshot_message())
        assert client.blocks["192.0.2.0/24"] == (True, 0.97, None)
        assert client.blocks["192.0.3.0/24"] == (False, None, 500.0)
        assert "203.0.0.0/16" in client.lost
        assert client.last_seq == 7


class TestSubscriberState:
    def test_events_idempotent_by_seq(self):
        client = SubscriberState()
        event = {"type": "event", "seq": 1, "kind": "onset",
                 "block": "192.0.2.0/24", "time": 10.0, "watermark": 10.0}
        assert client.apply(event)
        assert not client.apply(event)  # re-delivery is a no-op
        assert client.blocks["192.0.2.0/24"][0] is False
        assert client.events_applied == 1

    def test_gap_is_detected_not_papered_over(self):
        client = SubscriberState()
        client.apply({"type": "event", "seq": 1, "kind": "onset",
                      "block": "a/24", "time": 1.0, "watermark": 1.0})
        assert not client.apply({"type": "event", "seq": 3,
                                 "kind": "recovery", "block": "a/24",
                                 "time": 3.0, "watermark": 3.0})
        assert client.gaps_detected == 1
        assert client.last_seq == 1  # never applied past the hole

    def test_stale_snapshot_rejected(self):
        client = SubscriberState()
        for seq in (1, 2, 3):
            client.apply({"type": "event", "seq": seq, "kind": "onset",
                          "block": f"b{seq}/24", "time": float(seq),
                          "watermark": float(seq)})
        old = {"type": "snapshot", "seq": 1, "events_through": 1,
               "blocks": [], "lost": []}
        assert not client.apply(old)
        assert client.last_seq == 3


# -- in-process end-to-end ---------------------------------------------------

@pytest.fixture
def plane():
    from repro.obs.metrics import MetricsRegistry
    config = ServeConfig(port=0, lag=LagPolicy(stale_after_s=60.0),
                         ready=ReadyGate(max_lag_s=60.0))
    plane = ServingPlane(V4, config, registry=MetricsRegistry())
    plane.start()
    yield plane
    plane.stop(drain=True)


def _publish_two_blocks(plane):
    up = Block.parse("192.0.2.0/24")
    down = Block.parse("198.51.100.0/24")
    plane.publish(
        {up.prefix: BlockServingState(up=True, belief=0.99),
         down.prefix: BlockServingState(up=False, since=900.0)},
        watermark=1000.0,
        events=[EventSpec(kind="onset", time=900.0, block=str(down),
                          key=down.prefix)])
    return up, down


class TestServingPlaneEndToEnd:
    def test_ready_flips_on_first_snapshot(self, plane):
        status, headers, body = http_get("127.0.0.1", plane.port, "/ready")
        assert status == 503
        assert headers["retry-after"] == "1"
        _publish_two_blocks(plane)
        status, _, body = http_get("127.0.0.1", plane.port, "/ready")
        assert status == 200
        assert json.loads(body)["ready"]

    def test_state_queries_carry_the_stamp(self, plane):
        _, down = _publish_two_blocks(plane)
        status, _, body = http_get(
            "127.0.0.1", plane.port, "/v1/state?address=198.51.100.7")
        assert status == 200
        document = json.loads(body)
        assert document["found"] and not document["up"]
        assert document["block"] == str(down)
        assert document["stamp"]["watermark"] == 1000.0
        assert document["stamp"]["degraded"] is None
        status, _, body = http_get(
            "127.0.0.1", plane.port, "/v1/state?prefix=192.0.0.0/16")
        assert json.loads(body)["count"] == 1

    def test_no_snapshot_is_an_explicit_503(self, plane):
        status, headers, body = http_get(
            "127.0.0.1", plane.port, "/v1/state?address=192.0.2.1")
        assert status == 503
        assert json.loads(body)["degraded"] == "no-snapshot"
        assert "retry-after" in headers

    def test_bad_query_is_400(self, plane):
        _publish_two_blocks(plane)
        status, _, _ = http_get("127.0.0.1", plane.port, "/v1/state")
        assert status == 400
        status, _, _ = http_get("127.0.0.1", plane.port,
                                "/v1/state?address=not-an-ip")
        assert status == 400

    def test_unknown_path_is_404_with_directory(self, plane):
        status, _, body = http_get("127.0.0.1", plane.port, "/nope")
        assert status == 404
        assert "/v1/state" in json.loads(body)["endpoints"]

    def test_events_endpoint_pages_by_seq(self, plane):
        _publish_two_blocks(plane)
        status, _, body = http_get("127.0.0.1", plane.port,
                                   "/v1/events?since=0")
        document = json.loads(body)
        assert status == 200
        assert document["last_seq"] == 1
        assert document["events"][0]["kind"] == "onset"
        assert not document["gap"]

    def test_subscribe_snapshot_then_live_events(self, plane):
        up, down = _publish_two_blocks(plane)
        with SyncServeClient("127.0.0.1", plane.port) as client:
            assert client.accepted
            hello = client.recv_message()
            assert hello["type"] == "hello"
            assert hello["resync"] == "snapshot"
            state = SubscriberState()
            assert state.apply(client.recv_message())  # snapshot
            assert state.blocks[str(down)][0] is False
            # A transition published after subscription fans out live.
            plane.publish(
                {up.prefix: BlockServingState(up=True),
                 down.prefix: BlockServingState(up=True, since=1100.0)},
                watermark=1200.0,
                events=[EventSpec(kind="recovery", time=1100.0,
                                  block=str(down), key=down.prefix)])
            message = client.recv_message()
            assert message["type"] == "event"
            assert state.apply(message)
            assert state.blocks[str(down)][0] is True
            client.ack(state.last_seq)

    def test_reconnect_with_cursor_gets_pure_deltas(self, plane):
        up, down = _publish_two_blocks(plane)
        with SyncServeClient("127.0.0.1", plane.port, since=0) as client:
            hello = client.recv_message()
            assert hello["resync"] == "delta"
            message = client.recv_message()
            assert message["type"] == "event" and message["seq"] == 1

    def test_health_reports_plane_stats(self, plane):
        _publish_two_blocks(plane)
        status, _, body = http_get("127.0.0.1", plane.port, "/health")
        plane_stats = json.loads(body)["plane"]
        assert status == 200
        assert plane_stats["snapshot_seq"] == 1
        assert plane_stats["last_event_seq"] == 1

    def test_metrics_exposition(self, plane):
        _publish_two_blocks(plane)
        http_get("127.0.0.1", plane.port, "/v1/state?address=192.0.2.1")
        status, headers, body = http_get("127.0.0.1", plane.port,
                                         "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert "serve_requests_total" in body.decode()


# -- resync convergence property (satellite: event-seq protocol) -------------

class _Publisher:
    """In-memory stand-in for a bridge: fold-as-you-publish semantics.

    Mirrors :meth:`ServingPlane.publish`: every event is applied to the
    authoritative state *and* sequenced through the broker, so a
    snapshot taken at any instant has ``events_through ==
    broker.last_seq`` — the invariant snapshot-then-deltas resync
    depends on.
    """

    def __init__(self, keys, capacity):
        self.broker = EventBroker(capacity=capacity)
        self.states = {key: BlockServingState(up=True) for key in keys}
        self.snapshots = 0

    def flip(self, key, up, when):
        self.states[key] = BlockServingState(up=up, since=when)
        return self.broker.publish(
            EventSpec(kind="recovery" if up else "onset", time=when,
                      block=str(Block(V4, key, 24)), key=key),
            watermark=when, emitted_at=0.0)

    def snapshot_message(self):
        self.snapshots += 1
        return build_snapshot(
            V4, self.states, watermark=0.0, published_at=0.0,
            seq=self.snapshots, prefix_len=24,
            events_through=self.broker.last_seq).snapshot_message()

    def resync(self, client):
        """What a reconnect with ``since=client.last_seq`` delivers."""
        deltas, gap = self.broker.since(client.last_seq)
        if gap:
            client.apply(self.snapshot_message())
            return
        for event in deltas:
            client.apply(event.to_wire())


@settings(max_examples=60, deadline=None)
@given(
    n_keys=st.integers(min_value=1, max_value=4),
    flips=st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                             st.booleans()),
                   max_size=40),
    capacity=st.integers(min_value=2, max_value=8),
    drop=st.floats(min_value=0.0, max_value=0.6),
    duplicate=st.floats(min_value=0.0, max_value=0.5),
    reorder=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_resync_converges_under_any_interleaving(n_keys, flips, capacity,
                                                 drop, duplicate, reorder,
                                                 seed):
    """At-least-once + idempotent-by-seq + resync-on-gap is exact.

    Deliver the event stream through the chaos mutators (drops model
    disconnects, duplicates model re-delivery after an unacked cut,
    reordering models a hole the client must refuse to jump) and heal
    with reconnect-resyncs; the faulted client must end bit-identical
    to a fault-free one.
    """
    keys = [(0xC00002 + i) for i in range(n_keys)]
    publisher = _Publisher(keys, capacity)
    published = [publisher.flip(keys[key_idx % n_keys], up, float(i))
                 for i, (key_idx, up) in enumerate(flips)]

    reference = SubscriberState()
    faulted = SubscriberState()
    # Both clients bootstrap from the same pre-event snapshot.
    boot = build_snapshot(V4, {key: BlockServingState(up=True)
                               for key in keys},
                          watermark=0.0, published_at=0.0, seq=0,
                          prefix_len=24, events_through=0).snapshot_message()
    reference.apply(boot)
    faulted.apply(boot)
    for event in published:
        reference.apply(event.to_wire())
    publisher.resync(reference)  # no-op: already caught up
    assert reference.last_seq == publisher.broker.last_seq

    rng = np.random.default_rng(seed)
    mutated = compose(
        published,
        lambda s: drop_observations(s, drop, rng),
        lambda s: duplicate_observations(s, duplicate, rng),
        lambda s: reorder_observations(s, reorder, 10.0, rng),
    )
    for event in mutated:
        gaps_before = faulted.gaps_detected
        faulted.apply(event.to_wire())
        if faulted.gaps_detected > gaps_before:
            publisher.resync(faulted)  # client reconnects on a hole
    publisher.resync(faulted)  # final reconnect heals tail drops
    assert faulted.view() == reference.view()

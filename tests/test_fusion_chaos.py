"""Vantage-blinding chaos suite: the fused degradation contracts.

The acceptance bar for multi-source fusion is *attribution*, not just
precision: blinding any single vantage mid-run — batch or live — must
add **zero false onsets attributable to the blinded source**.  The
survivors keep calling real outages, the victim's absence evidence is
gated (never read as "everything is down"), and the partitioned
deployment shape stays bit-identical to the single-process engine
through the fault.  ``test_fusion.py`` pins the deterministic machinery
(specs, routing, checkpoints); this file pins behaviour under fire.
"""

import numpy as np
import pytest

from repro.core.checkpoint import detector_to_json
from repro.fusion import (
    DarknetSource,
    FusedStreamingDetector,
    MappingSource,
    detect_fused,
    fused_detector_from_json,
    train_fused,
)
from repro.live import (
    LiveBlockEngine,
    merge_tagged_captures,
    run_partitioned_live,
)
from repro.net.addr import Family
from repro.telescope.capture import CaptureWriter
from repro.telescope.records import Observation
from repro.testing.faults import vantage_brownout
from repro.traffic.darknet import DarknetTelescope
from repro.traffic.internet import (
    FamilyConfig,
    InternetConfig,
    SimulatedInternet,
)
from repro.traffic.outages import IPV4_OUTAGE_MODEL, OutageModel

pytestmark = pytest.mark.faults

FAMILY = Family.IPV4
SHIFT = FAMILY.bits - FAMILY.default_block_prefix


@pytest.fixture(scope="module")
def chaos_setup(tmp_path_factory):
    """Two vantages over a small simulated Internet, with ground truth,
    the merged tagged eval stream, and per-vantage capture files for
    both the healthy run and the darknet-blinded run."""
    config = InternetConfig(
        end=160000.0, training_seconds=120000.0, seed=7,
        ipv4=FamilyConfig(n_blocks=24, outage_model=IPV4_OUTAGE_MODEL))
    internet = SimulatedInternet.build(config)
    eval_start, end = config.eval_start, config.end
    blind_at = eval_start + (end - eval_start) / 2.0

    dns_blocks = {profile.key: times
                  for profile, times in internet.passive_observations(seed=11)}
    dns = MappingSource("dns", dns_blocks, family=FAMILY)
    darknet = DarknetSource(DarknetTelescope(internet), seed=23)
    model = train_fused([dns, darknet], FAMILY, 0.0, eval_start)

    per_block = {name: adapter.per_block(FAMILY, eval_start, end)
                 for name, adapter in (("dns", dns), ("darknet", darknet))}
    truth = {profile.key: [(max(s, eval_start), min(e, end))
                           for s, e in profile.truth.down_intervals
                           if e > eval_start and s < end]
             for profile in internet.family_profiles(FAMILY)}

    events = []
    for name, blocks in per_block.items():
        for key, times in blocks.items():
            address = key << SHIFT
            events.extend((float(t), name, address) for t in times)
    events.sort(key=lambda event: (event[0], event[1], event[2]))

    root = tmp_path_factory.mktemp("fusion_chaos")

    def write_captures(directory, blinded):
        directory.mkdir()
        captures = {}
        for name, blocks in per_block.items():
            rows = []
            for key, times in blocks.items():
                address = key << SHIFT
                for time in times:
                    if blinded and name == "darknet" and time >= blind_at:
                        continue
                    rows.append((float(time), address))
            rows.sort()
            path = directory / f"{name}.pobs"
            with CaptureWriter(str(path)) as writer:
                for time, address in rows:
                    writer.write_raw(time, FAMILY, address, 0)
            captures[name] = str(path)
        return captures

    return {
        "model": model,
        "per_block": per_block,
        "truth": truth,
        "events": events,
        "eval_start": eval_start,
        "end": end,
        "blind_at": blind_at,
        "captures_healthy": write_captures(root / "healthy", False),
        "captures_blinded": write_captures(root / "blinded", True),
    }


def false_onsets(blocks, truth):
    """Down intervals that overlap no true outage of their block."""
    onsets = []
    for key in sorted(blocks):
        for left, right in blocks[key].timeline.down_intervals:
            if not any(left < t_end and right > t_start
                       for t_start, t_end in truth.get(key, [])):
                onsets.append((key, left, right))
    return onsets


def attributable(candidate, baseline):
    """False onsets of the faulted run with no counterpart in the
    baseline run — the ones the fault itself manufactured."""
    return [(key, left, right) for key, left, right in candidate
            if not any(b_key == key and left < b_right and right > b_left
                       for b_key, b_left, b_right in baseline)]


def run_single_live(model, captures, start):
    detector = FusedStreamingDetector(model, start)
    engine = LiveBlockEngine(detector)
    end_seen = start
    for observation in merge_tagged_captures(captures,
                                             order=model.source_names):
        engine.feed(observation)
        end_seen = max(end_seen, observation.time)
    engine.flush()
    return detector.finalize(end_seen), detector.last_health


class TestBatchBlinding:
    def test_blinding_any_vantage_adds_no_false_onsets(self, chaos_setup):
        model = chaos_setup["model"]
        per_block = chaos_setup["per_block"]
        truth = chaos_setup["truth"]
        start, end = chaos_setup["eval_start"], chaos_setup["end"]
        blind_at = chaos_setup["blind_at"]

        healthy = detect_fused(model, per_block, start, end)

        for victim in model.source_names:
            # A false onset is *attributable* to the blinded vantage
            # only if neither the healthy roster nor the survivors
            # alone would have called it — losing a vantage may let
            # survivor noise through (that is graceful degradation, and
            # a never-had-it run shows the same call), but the victim's
            # own silence must never be read as an outage.
            survivors_only = detect_fused(
                model, {name: blocks for name, blocks in per_block.items()
                        if name != victim},
                start, end, max_quarantine_frac=1.0)
            baseline = (false_onsets(healthy.blocks, truth)
                        + false_onsets(survivors_only.blocks, truth))
            blinded_feed = {
                name: ({key: times[times < blind_at]
                        for key, times in blocks.items()}
                       if name == victim else blocks)
                for name, blocks in per_block.items()}
            detection = detect_fused(model, blinded_feed, start, end,
                                     max_quarantine_frac=1.0)
            # The victim is quarantined, its weight collapsed — and the
            # survivors' calls gained no onset the healthy run lacked.
            health = detection.health.sources[victim]
            assert health.quarantine_windows, victim
            assert health.weight < 1e-6, victim
            assert health.gated_bins > 0, victim
            assert detection.all_dark_windows == []
            assert set(detection.blocks) == set(model.measurable_keys)
            blinded = false_onsets(detection.blocks, truth)
            assert attributable(blinded, baseline) == [], victim

    def test_real_outages_still_called_while_blinded(self):
        """Degradation must stay graceful in both directions: the gate
        that silences the dead vantage must not silence the survivor's
        real outage calls.  Uses an outage-dense Internet so the recall
        comparison has real weight."""
        config = InternetConfig(
            end=2 * 86400.0, training_seconds=86400.0, seed=41,
            ipv4=FamilyConfig(
                n_blocks=16,
                outage_model=OutageModel(outage_probability=1.0,
                                         short_fraction=0.0)))
        internet = SimulatedInternet.build(config)
        start, end = config.eval_start, config.end
        blind_at = start + (end - start) / 2.0
        dns = MappingSource(
            "dns", {profile.key: times for profile, times in
                    internet.passive_observations(seed=11)},
            family=FAMILY)
        darknet = DarknetSource(DarknetTelescope(internet), seed=23)
        model = train_fused([dns, darknet], FAMILY, 0.0, start)
        per_block = {name: adapter.per_block(FAMILY, start, end)
                     for name, adapter in (("dns", dns),
                                           ("darknet", darknet))}
        truth = {profile.key: [(max(s, start), min(e, end))
                               for s, e in profile.truth.down_intervals
                               if e > start and s < end]
                 for profile in internet.family_profiles(FAMILY)}
        blinded_feed = dict(per_block)
        blinded_feed["darknet"] = {key: times[times < blind_at]
                                   for key, times in
                                   per_block["darknet"].items()}
        detection = detect_fused(model, blinded_feed, start, end,
                                 max_quarantine_frac=1.0)
        healthy = detect_fused(model, per_block, start, end)

        def called(blocks, keys):
            return {
                (key, t_start, t_end)
                for key, intervals in truth.items()
                if key in blocks and key in keys
                for t_start, t_end in intervals
                if any(left < t_end and right > t_start for left, right in
                       blocks[key].timeline.down_intervals)}

        # Blocks the survivor can measure alone must keep their calls;
        # blocks only the dead vantage could see may legitimately lose
        # coverage (and the health report accounts for that).
        survivor_keys = set(model.sources["dns"].measurable_keys)
        healthy_calls = called(healthy.blocks, survivor_keys)
        assert len(healthy_calls) >= 5  # dense truth, dense calls
        blinded_calls = called(detection.blocks, survivor_keys)
        assert len(blinded_calls) >= len(healthy_calls) * 0.8


class TestStreamingBrownout:
    def test_brownout_degrades_softly(self, chaos_setup):
        """Partial loss (not death) must sag trust without inventing
        onsets — the soft half of the degradation story."""
        model = chaos_setup["model"]
        truth = chaos_setup["truth"]
        start, end = chaos_setup["eval_start"], chaos_setup["end"]
        events = chaos_setup["events"]

        healthy = FusedStreamingDetector(model, start)
        for time, name, address in events:
            healthy.observe_from(name, Observation(time, FAMILY, address))
        survivors_only = detect_fused(
            model, {"dns": chaos_setup["per_block"]["dns"]}, start, end,
            max_quarantine_frac=1.0)
        baseline = (false_onsets(healthy.finalize(end), truth)
                    + false_onsets(survivors_only.blocks, truth))

        tagged = ((name, Observation(time, FAMILY, address))
                  for time, name, address in events)
        browned = vantage_brownout(
            tagged, "darknet", chaos_setup["blind_at"], end,
            keep_fraction=0.25, rng=np.random.default_rng(99))
        detector = FusedStreamingDetector(model, start)
        for name, observation in browned:
            detector.observe_from(name, observation)
        results = detector.finalize(end)

        assert attributable(false_onsets(results, truth), baseline) == []
        monitor = detector.monitors["darknet"]
        # The sentinel never quarantined the browned-out feed (it is
        # alive), but its depressed bins sagged the weight and gated
        # the evidence all the same.
        assert monitor.sentinel.quarantined_intervals() == []
        assert not monitor.trusted_over(end - 60.0, end)
        assert monitor.weight < 0.01
        assert monitor.gated_bins > 0
        assert monitor.observations < healthy.monitors[
            "darknet"].observations
        assert detector.monitors["dns"].weight > 0.9


class TestLiveBlinding:
    def test_partitioned_matches_single_process_healthy(self, chaos_setup):
        model = chaos_setup["model"]
        captures = chaos_setup["captures_healthy"]
        single, single_health = run_single_live(model, captures,
                                                chaos_setup["eval_start"])
        result = run_partitioned_live(model, captures, partitions=3,
                                      reorder_horizon=30.0)
        assert set(single) == set(result.results)
        for key in sorted(single):
            ours, theirs = single[key], result.results[key]
            assert (list(ours.timeline.segments())
                    == list(theirs.timeline.segments())), key
            assert ours.quarantined == theirs.quarantined, key
        assert ({name: source.as_dict()
                 for name, source in single_health.sources.items()}
                == {name: source.as_dict()
                    for name, source in result.health.sources.items()})
        assert (single_health.sentinel_windows
                == result.health.sentinel_windows)

    def test_partitioned_matches_single_process_blinded(self, chaos_setup):
        model = chaos_setup["model"]
        truth = chaos_setup["truth"]
        captures = chaos_setup["captures_blinded"]
        start = chaos_setup["eval_start"]
        single, single_health = run_single_live(model, captures, start)
        result = run_partitioned_live(model, captures, partitions=3,
                                      reorder_horizon=30.0)
        # Identical through the fault: every worker's whole-tap monitor
        # saw the same vbin rows the single engine derived itself.
        assert set(single) == set(result.results)
        for key in sorted(single):
            ours, theirs = single[key], result.results[key]
            assert (list(ours.timeline.segments())
                    == list(theirs.timeline.segments())), key
            assert ours.quarantined == theirs.quarantined, key
        assert ({name: source.as_dict()
                 for name, source in single_health.sources.items()}
                == {name: source.as_dict()
                    for name, source in result.health.sources.items()})
        darknet = result.health.sources["darknet"]
        assert darknet.weight < 1e-6
        assert darknet.quarantine_windows
        # Attribution holds on the live path too: the blinded live run
        # invented no onset that neither the healthy live run nor the
        # dns-only roster would have called.
        healthy_single, _ = run_single_live(
            model, chaos_setup["captures_healthy"], start)
        survivors_only = detect_fused(
            model, {"dns": chaos_setup["per_block"]["dns"]},
            start, chaos_setup["end"], max_quarantine_frac=1.0)
        baseline = (false_onsets(healthy_single, truth)
                    + false_onsets(survivors_only.blocks, truth))
        assert attributable(false_onsets(single, truth), baseline) == []


class TestMidQuarantineResume:
    def test_checkpoint_inside_quarantine_is_bit_for_bit(self, chaos_setup):
        """Kill the detector 10000 s into an open quarantine; the
        resumed process must be indistinguishable from one that never
        died — gate state, weights, and retractions included."""
        model = chaos_setup["model"]
        start, end = chaos_setup["eval_start"], chaos_setup["end"]
        blind_at = start + 20000.0
        mid = start + 30000.0
        events = [event for event in chaos_setup["events"]
                  if not (event[1] == "darknet" and event[0] >= blind_at)]

        def feed(detector, stream):
            for time, name, address in stream:
                detector.observe_from(name,
                                      Observation(time, FAMILY, address))

        uninterrupted = FusedStreamingDetector(model, start)
        feed(uninterrupted, events)
        full_document = detector_to_json(uninterrupted)
        full_results = uninterrupted.finalize(end)

        victim = FusedStreamingDetector(model, start)
        feed(victim, [event for event in events if event[0] < mid])
        assert not victim.monitors["darknet"].trusted_over(mid - 60.0, mid)
        checkpoint = detector_to_json(victim)
        del victim  # the process dies here, mid-quarantine

        resumed = fused_detector_from_json(checkpoint, model)
        feed(resumed, [event for event in events if event[0] >= mid])
        assert detector_to_json(resumed) == full_document
        resumed_results = resumed.finalize(end)
        assert set(full_results) == set(resumed_results)
        for key in full_results:
            assert (list(full_results[key].timeline.segments())
                    == list(resumed_results[key].timeline.segments())), key
            assert (full_results[key].quarantined
                    == resumed_results[key].quarantined), key
        assert (uninterrupted.last_health.as_dict()
                == resumed.last_health.as_dict())
        monitor = resumed.monitors["darknet"]
        assert monitor.sentinel.quarantined_intervals()
        assert monitor.weight < 1e-6

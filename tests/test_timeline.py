"""Timeline algebra and outage events."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timeline import (
    OutageEvent,
    Timeline,
    intersect_intervals,
    merge_intervals,
    total_duration,
)


class TestIntervals:
    def test_merge_overlapping(self):
        assert merge_intervals([(0, 5), (3, 8), (10, 12)]) == [(0, 8), (10, 12)]

    def test_merge_touching(self):
        assert merge_intervals([(0, 5), (5, 8)]) == [(0, 8)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(3, 3), (5, 4)]) == []

    def test_intersect(self):
        a = [(0, 10), (20, 30)]
        b = [(5, 25)]
        assert intersect_intervals(a, b) == [(5, 10), (20, 25)]

    def test_intersect_disjoint(self):
        assert intersect_intervals([(0, 5)], [(6, 9)]) == []

    def test_total_duration(self):
        assert total_duration([(0, 5), (10, 12)]) == 7


class TestTimelineBasics:
    def test_always_up(self):
        t = Timeline.always_up(0, 100)
        assert t.availability() == 1.0
        assert t.down_seconds() == 0
        assert t.events() == []

    def test_always_down(self):
        t = Timeline.always_down(0, 100)
        assert t.availability() == 0.0
        assert t.events() == [OutageEvent(0, 100)]

    def test_down_intervals_clipped_to_span(self):
        t = Timeline(10, 20, [(0, 12), (18, 30)])
        assert t.down_intervals == [(10, 12), (18, 20)]

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            Timeline(10, 5)

    def test_is_up_at(self):
        t = Timeline(0, 100, [(10, 20)])
        assert t.is_up_at(5)
        assert not t.is_up_at(10)
        assert not t.is_up_at(19.999)
        assert t.is_up_at(20)
        with pytest.raises(ValueError):
            t.is_up_at(101)

    def test_segments_cover_span(self):
        t = Timeline(0, 100, [(10, 20), (50, 60)])
        segments = list(t.segments())
        assert segments == [(0, 10, True), (10, 20, False), (20, 50, True),
                            (50, 60, False), (60, 100, True)]

    def test_events_min_duration(self):
        t = Timeline(0, 100, [(0, 5), (10, 40)])
        assert t.events(10) == [OutageEvent(10, 40)]


class TestFromTransitions:
    def test_simple(self):
        t = Timeline.from_transitions(0, 100, [(10, False), (20, True)])
        assert t.down_intervals == [(10, 20)]

    def test_unterminated_outage_runs_to_end(self):
        t = Timeline.from_transitions(0, 100, [(90, False)])
        assert t.down_intervals == [(90, 100)]

    def test_initially_down(self):
        t = Timeline.from_transitions(0, 100, [(30, True)], initial_up=False)
        assert t.down_intervals == [(0, 30)]

    def test_redundant_transitions_ignored(self):
        t = Timeline.from_transitions(
            0, 100, [(10, False), (15, False), (20, True), (25, True)])
        assert t.down_intervals == [(10, 20)]

    def test_unsorted_input_sorted(self):
        t = Timeline.from_transitions(0, 100, [(20, True), (10, False)])
        assert t.down_intervals == [(10, 20)]


class TestAlgebra:
    def test_clip(self):
        t = Timeline(0, 100, [(10, 30)])
        clipped = t.clip(20, 50)
        assert clipped.start == 20 and clipped.end == 50
        assert clipped.down_intervals == [(20, 30)]

    def test_invert_involution(self):
        t = Timeline(0, 100, [(10, 30), (50, 55)])
        assert t.invert().invert() == t

    def test_union_and_intersection(self):
        a = Timeline(0, 100, [(10, 30)])
        b = Timeline(0, 100, [(20, 40)])
        assert a.union_down(b).down_intervals == [(10, 40)]
        assert a.intersect_down(b).down_intervals == [(20, 30)]

    def test_span_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Timeline(0, 100).union_down(Timeline(0, 99))

    def test_drop_short_outages(self):
        t = Timeline(0, 100, [(0, 2), (10, 40)])
        assert t.drop_short_outages(5).down_intervals == [(10, 40)]

    def test_fill_short_ups(self):
        t = Timeline(0, 100, [(10, 20), (22, 30)])
        assert t.fill_short_ups(5).down_intervals == [(10, 30)]

    def test_shift(self):
        t = Timeline(0, 100, [(10, 20)]).shift(50)
        assert (t.start, t.end) == (50, 150)
        assert t.down_intervals == [(60, 70)]


class TestOutageEvent:
    def test_duration(self):
        assert OutageEvent(5, 25).duration == 20

    def test_overlap_with_slack(self):
        a = OutageEvent(0, 10)
        b = OutageEvent(12, 20)
        assert not a.overlaps(b)
        assert a.overlaps(b, slack=3)


_intervals = st.lists(
    st.tuples(st.floats(0, 1000, allow_nan=False),
              st.floats(0, 1000, allow_nan=False)).map(
        lambda pair: (min(pair), max(pair))),
    max_size=20)


@given(_intervals)
def test_up_plus_down_equals_span(intervals):
    t = Timeline(0, 1000, intervals)
    assert t.up_seconds() + t.down_seconds() == pytest.approx(1000)


@given(_intervals)
def test_down_intervals_sorted_disjoint(intervals):
    t = Timeline(0, 1000, intervals)
    down = t.down_intervals
    for (s1, e1), (s2, e2) in zip(down, down[1:]):
        assert e1 < s2
    assert all(s < e for s, e in down)


@given(_intervals, _intervals)
def test_union_down_is_at_least_each(a_intervals, b_intervals):
    a = Timeline(0, 1000, a_intervals)
    b = Timeline(0, 1000, b_intervals)
    union = a.union_down(b)
    intersection = a.intersect_down(b)
    assert union.down_seconds() >= max(a.down_seconds(), b.down_seconds()) - 1e-9
    assert intersection.down_seconds() <= min(a.down_seconds(),
                                              b.down_seconds()) + 1e-9
    # inclusion-exclusion
    assert union.down_seconds() + intersection.down_seconds() == pytest.approx(
        a.down_seconds() + b.down_seconds())


@given(_intervals)
def test_segments_partition_span(intervals):
    t = Timeline(0, 1000, intervals)
    segments = list(t.segments())
    if segments:
        assert segments[0][0] == 0
        assert segments[-1][1] == 1000
        for (s1, e1, _), (s2, e2, _) in zip(segments, segments[1:]):
            assert e1 == s2

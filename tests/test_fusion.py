"""Fused multi-vantage detector: model assembly, streaming, checkpoints.

The chaos-level degradation contracts (blinding a vantage mid-run adds
no false onsets, batch and live) live in ``test_fusion_chaos.py``; this
file pins the deterministic machinery they stand on: spec derivation,
coverage union, evidence routing, and bit-for-bit kill-and-resume of
per-source sentinel and reliability state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointFormatError, detector_to_json
from repro.core.detector import StreamingDetector
from repro.core.sentinel import SentinelConfig
from repro.fusion import (
    DarknetSource,
    FusedModel,
    FusedStreamingDetector,
    MappingSource,
    SourceMonitor,
    build_block_specs,
    detect_fused,
    fused_detector_from_json,
    train_fused,
)
from repro.core.belief import fused_posterior
from repro.net.addr import Family
from repro.obs.explain import ExplainLog
from repro.telescope.records import Observation
from repro.traffic.darknet import DarknetTelescope
from repro.traffic.internet import (
    FamilyConfig,
    InternetConfig,
    SimulatedInternet,
)
from repro.traffic.outages import IPV4_OUTAGE_MODEL
from repro.traffic.sources import poisson_times

DAY = 86400.0
FAMILY = Family.IPV4
SHIFT = FAMILY.bits - FAMILY.default_block_prefix


@pytest.fixture(scope="module")
def fused_setup():
    """Two vantages over a small simulated Internet, plus the tagged
    merged eval stream both deployment shapes consume."""
    config = InternetConfig(
        end=160000.0, training_seconds=120000.0, seed=7,
        ipv4=FamilyConfig(n_blocks=24, outage_model=IPV4_OUTAGE_MODEL))
    internet = SimulatedInternet.build(config)
    dns_blocks = {profile.key: times
                  for profile, times in internet.passive_observations(seed=11)}
    dns = MappingSource("dns", dns_blocks, family=FAMILY)
    darknet = DarknetSource(DarknetTelescope(internet), seed=23)
    model = train_fused([dns, darknet], FAMILY, 0.0, config.eval_start)
    events = []
    for name, adapter in (("dns", dns), ("darknet", darknet)):
        per_block = adapter.per_block(FAMILY, config.eval_start, config.end)
        for key, times in per_block.items():
            address = key << SHIFT
            events.extend((float(t), name, address) for t in times)
    events.sort(key=lambda event: (event[0], event[1], event[2]))
    return {
        "internet": internet,
        "adapters": (dns, darknet),
        "model": model,
        "events": events,
        "eval_start": config.eval_start,
        "end": config.end,
    }


def feed_events(detector, events):
    for time, name, address in events:
        detector.observe_from(
            name, Observation(time, FAMILY, address))


class TestModelAssembly:
    def test_measurable_keys_are_the_union(self, fused_setup):
        model = fused_setup["model"]
        fused = set(model.measurable_keys)
        for source in model.sources.values():
            assert fused >= set(source.measurable_keys)

    def test_specs_deterministic_with_finest_lead(self, fused_setup):
        model = fused_setup["model"]
        specs = build_block_specs(model)
        again = build_block_specs(model)
        assert set(specs) == set(again)
        for key, spec in specs.items():
            assert spec.lead == again[key].lead
            assert spec.likelihoods == again[key].likelihoods
            for name, _, _, stride in spec.likelihoods:
                source_params = model.sources[name].parameters[key]
                assert stride >= 1
                # The lead has the finest tuned bin of the contributors.
                assert spec.params.bin_seconds <= source_params.bin_seconds

    def test_sparse_block_measurable_only_through_second_vantage(self):
        # The coverage story in miniature: a block too sparse for the
        # DNS tap to model is dense at the darknet, so the fused roster
        # covers it while the DNS-only model cannot.
        rng = np.random.default_rng(3)
        dense = poisson_times(rng, 0.3, 0, DAY)
        sparse = poisson_times(rng, 4.0 / DAY, 0, DAY)
        loud = poisson_times(rng, 0.25, 0, DAY)
        dns = MappingSource("dns", {1: dense, 2: sparse}, family=FAMILY)
        other = MappingSource("other", {1: dense, 2: loud}, family=FAMILY)
        model = train_fused([dns, other], FAMILY, 0.0, DAY)
        assert 2 not in model.sources["dns"].measurable_keys
        assert 2 in model.measurable_keys
        assert model.coverage() == 1.0  # strictly above DNS-only (1 of 2)
        assert build_block_specs(model)[2].lead == "other"

    def test_duplicate_source_names_rejected(self):
        rng = np.random.default_rng(5)
        times = poisson_times(rng, 0.2, 0, DAY)
        first = MappingSource("dns", {1: times}, family=FAMILY)
        second = MappingSource("dns", {1: times}, family=FAMILY)
        with pytest.raises(ValueError, match="duplicate"):
            train_fused([first, second], FAMILY, 0.0, DAY)
        with pytest.raises(ValueError):
            train_fused([], FAMILY, 0.0, DAY)

    def test_primary_must_be_a_source(self, fused_setup):
        model = fused_setup["model"]
        with pytest.raises(ValueError, match="primary"):
            FusedModel(family=FAMILY, sources=dict(model.sources),
                       primary="atlantis")


class TestBatchDetection:
    def test_healthy_run_reports_both_sources(self, fused_setup):
        model = fused_setup["model"]
        start, end = fused_setup["eval_start"], fused_setup["end"]
        dns, darknet = fused_setup["adapters"]
        detection = detect_fused(
            model,
            {"dns": dns.per_block(FAMILY, start, end),
             "darknet": darknet.per_block(FAMILY, start, end)},
            start, end)
        assert set(detection.blocks) == set(model.measurable_keys)
        assert detection.all_dark_windows == []
        health = detection.health
        assert set(health.sources) == {"dns", "darknet"}
        for source in health.sources.values():
            assert source.observations > 0
            assert source.weight > 0.9
            assert source.quarantine_windows == []
            assert source.measurable_blocks > 0

    def test_missing_source_degrades_instead_of_failing(self, fused_setup):
        model = fused_setup["model"]
        start, end = fused_setup["eval_start"], fused_setup["end"]
        dns, _ = fused_setup["adapters"]
        detection = detect_fused(
            model, {"dns": dns.per_block(FAMILY, start, end)},
            start, end, max_quarantine_frac=1.0)
        # The absent vantage never spoke, so every bin of its evidence
        # is gated; the survivor keeps producing calls and nothing is
        # all-dark while one source still talks.
        darknet = detection.health.sources["darknet"]
        assert darknet.observations == 0
        assert darknet.gated_bins > 0
        assert detection.all_dark_windows == []
        assert detection.blocks

    def test_every_source_missing_retracts_the_whole_span(self,
                                                          fused_setup):
        model = fused_setup["model"]
        start, end = fused_setup["eval_start"], fused_setup["end"]
        detection = detect_fused(model, {}, start, end,
                                 max_quarantine_frac=1.0)
        assert detection.all_dark_windows == [(start, end)]
        for block in detection.blocks.values():
            assert block.timeline.down_intervals == []
            assert block.quarantined == [(start, end)]


class TestStreamingRouting:
    def test_untagged_observations_belong_to_the_primary(self, fused_setup):
        model = fused_setup["model"]
        start = fused_setup["eval_start"]
        detector = FusedStreamingDetector(model, start)
        key = model.measurable_keys[0]
        detector.observe(Observation(start + 1.0, FAMILY, key << SHIFT))
        assert detector.monitors[model.primary].observations == 1
        others = [name for name in model.source_names
                  if name != model.primary]
        assert all(detector.monitors[name].observations == 0
                   for name in others)

    def test_unknown_source_rejected(self, fused_setup):
        detector = FusedStreamingDetector(fused_setup["model"],
                                          fused_setup["eval_start"])
        with pytest.raises(ValueError, match="unknown source"):
            detector.observe_from(
                "atlantis",
                Observation(fused_setup["eval_start"] + 1.0, FAMILY, 1 << 8))

    def test_non_finite_timestamp_rejected(self, fused_setup):
        detector = FusedStreamingDetector(fused_setup["model"],
                                          fused_setup["eval_start"])
        with pytest.raises(ValueError, match="non-finite"):
            detector.observe_from(
                "dns", Observation(float("nan"), FAMILY, 1 << 8))


class TestKillAndResume:
    def test_mid_run_checkpoint_is_bit_for_bit(self, fused_setup):
        model = fused_setup["model"]
        events = fused_setup["events"]
        start, end = fused_setup["eval_start"], fused_setup["end"]

        uninterrupted = FusedStreamingDetector(model, start)
        feed_events(uninterrupted, events)
        full_document = detector_to_json(uninterrupted)
        full_results = uninterrupted.finalize(end)

        kill_at = start + (end - start) / 2.0
        victim = FusedStreamingDetector(model, start)
        feed_events(victim, [e for e in events if e[0] < kill_at])
        checkpoint = detector_to_json(victim)
        del victim  # the process dies here

        resumed = fused_detector_from_json(checkpoint, model)
        feed_events(resumed, [e for e in events if e[0] >= kill_at])
        assert detector_to_json(resumed) == full_document
        resumed_results = resumed.finalize(end)
        assert set(resumed_results) == set(full_results)
        for key in full_results:
            assert (full_results[key].timeline
                    == resumed_results[key].timeline), key
            assert (full_results[key].quarantined
                    == resumed_results[key].quarantined), key
        assert (uninterrupted.last_health.as_dict()
                == resumed.last_health.as_dict())

    def test_restore_rehydrates_every_named_sentinel(self, fused_setup):
        model = fused_setup["model"]
        events = fused_setup["events"]
        start = fused_setup["eval_start"]
        detector = FusedStreamingDetector(model, start)
        feed_events(detector, events[:5000])
        restored = fused_detector_from_json(detector_to_json(detector),
                                            model)
        assert list(restored.monitors) == model.source_names
        for name in model.source_names:
            assert (restored.monitors[name].to_dict()
                    == detector.monitors[name].to_dict()), name

    def test_single_source_checkpoint_refused_with_direction(
            self, fused_setup):
        model = fused_setup["model"]
        source = model.sources["dns"]
        plain = StreamingDetector(FAMILY, source.histories,
                                  source.parameters,
                                  fused_setup["eval_start"])
        with pytest.raises(CheckpointFormatError,
                           match="detector_from_json instead"):
            fused_detector_from_json(detector_to_json(plain), model)

    def test_source_roster_mismatch_refused(self, fused_setup):
        model = fused_setup["model"]
        detector = FusedStreamingDetector(model, fused_setup["eval_start"])
        document = detector_to_json(detector)
        renamed = FusedModel(
            family=FAMILY,
            sources={"alpha" if name == "dns" else name: source
                     for name, source in model.sources.items()},
            primary="alpha")
        with pytest.raises(CheckpointFormatError, match="sources"):
            fused_detector_from_json(document, renamed)


class TestMonitorRoundTrip:
    def quiet_monitor(self):
        """A monitor whose feed died: open quarantine, decayed weight."""
        monitor = SourceMonitor.fresh(
            "darknet", 0.0, SentinelConfig(expected_rate=2.0))
        for time in np.arange(0.0, 1000.0, 0.5):
            monitor.observe(float(time))
        monitor.advance(3000.0)  # the feed goes dark; clock runs on
        return monitor

    def test_roundtrip_preserves_open_quarantine(self):
        monitor = self.quiet_monitor()
        assert monitor.sentinel.suspect_since is not None
        assert monitor.weight < 1.0
        restored = SourceMonitor.from_dict(monitor.to_dict())
        assert restored.to_dict() == monitor.to_dict()
        assert (restored.sentinel.quarantined_intervals()
                == monitor.sentinel.quarantined_intervals())
        assert not restored.trusted_over(2500.0, 2600.0)
        # Both evolve identically after the round trip.
        monitor.advance(4000.0)
        restored.advance(4000.0)
        assert restored.to_dict() == monitor.to_dict()

    def test_gated_bins_survive_the_roundtrip(self):
        monitor = self.quiet_monitor()
        monitor.note_gated()
        monitor.note_gated()
        assert SourceMonitor.from_dict(monitor.to_dict()).gated_bins == 2


class TestDecisionProvenance:
    """The explain log's fused evidence reproduces the update exactly.

    The acceptance bar for provenance: an auditor holding only the
    recorded event must be able to re-run the belief arithmetic and land
    on the recorded posterior bit-for-bit — no recomputation from raw
    traffic, no tolerance windows.
    """

    @pytest.fixture(scope="class")
    def provenance_run(self, fused_setup):
        # The small sim has no natural outage in the eval window, so
        # inject one: silence a single block at *both* vantages for a
        # mid-run stretch.  Every other block keeps talking, so the
        # vantage monitors stay trusted and the silence reads as a real
        # outage — transition DOWN, onset, then recovery.
        start = fused_setup["eval_start"]
        victim = sorted(fused_setup["model"].measurable_keys)[0]
        down, up = start + 10000.0, start + 30000.0
        events = [event for event in fused_setup["events"]
                  if not (event[2] >> SHIFT == victim
                          and down <= event[0] < up)]
        explain = ExplainLog(capacity=65536)
        detector = FusedStreamingDetector(
            fused_setup["model"], start, explain=explain)
        feed_events(detector, events)
        detector.finalize(fused_setup["end"])
        return explain.events()

    def test_transition_evidence_reproduces_the_update(self, fused_setup,
                                                       provenance_run):
        specs = build_block_specs(fused_setup["model"])
        transitions = [event for event in provenance_run
                       if event["event"] == "transition"
                       and event.get("sources")]
        assert transitions, "simulated outages should flip some block"
        for event in transitions:
            rows = event["sources"]
            # Re-adding the non-gated per-source contributions, in row
            # order, lands exactly on the recorded sum ...
            total = sum(row["llr"] for row in rows if not row["gated"])
            assert total == event["weighted_llr"], event["block"]
            # ... and pushing that sum through the posterior with the
            # block's own priors lands exactly on the recorded belief.
            params = specs[event["block"]].params
            assert fused_posterior(
                event["prior_belief"], event["weighted_llr"],
                params.prior_down, params.prior_up_recovery
            ) == event["belief"], event["block"]

    def test_rows_carry_the_vantage_state(self, provenance_run):
        rows = [row for event in provenance_run
                for row in event.get("sources") or []]
        assert rows
        names = {row["source"] for row in rows}
        assert names <= {"dns", "darknet"}
        for row in rows:
            assert set(row) >= {"source", "weight", "count", "p_empty",
                                "noise", "llr", "gated", "quarantined"}
            if row["gated"]:
                assert row["llr"] == 0.0

    def test_finalized_boundaries_are_logged(self, provenance_run):
        kinds = {event["event"] for event in provenance_run}
        assert "onset" in kinds
        # Every onset's block also produced transition provenance.
        transitions = {event["block"] for event in provenance_run
                       if event["event"] == "transition"}
        onsets = {event["block"] for event in provenance_run
                  if event["event"] == "onset"}
        assert onsets <= transitions

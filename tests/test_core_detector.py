"""Batch and streaming detectors on synthetic blocks with known truth."""

import numpy as np
import pytest

from repro.core.detector import PassiveDetector, StreamingDetector
from repro.core.history import train_histories
from repro.core.parameters import ParameterPlanner
from repro.net.addr import Family
from repro.telescope.records import Observation
from repro.timeline import Timeline
from repro.traffic.sources import poisson_times, suppress_intervals

DAY = 86400.0


def make_population(rates, outages, seed=0, span=DAY):
    """Blocks with given rates; `outages` maps key -> [(start, end)].

    Returns (train_per_block, eval_per_block); eval arrivals are
    suppressed during the injected outages.
    """
    rng = np.random.default_rng(seed)
    train, evaluate = {}, {}
    for key, rate in rates.items():
        train[key] = poisson_times(rng, rate, 0, span)
        eval_times = poisson_times(rng, rate, span, 2 * span)
        evaluate[key] = suppress_intervals(eval_times,
                                           outages.get(key, []))
    return train, evaluate


@pytest.fixture
def trained_dense():
    rates = {1: 0.2, 2: 0.1, 3: 0.05}
    outages = {1: [(DAY + 30000.0, DAY + 33000.0)],
               2: [(DAY + 50000.0, DAY + 50400.0)]}  # a short outage
    train, evaluate = make_population(rates, outages)
    histories = train_histories(train, 0, DAY)
    parameters = ParameterPlanner().plan(histories)
    return train, evaluate, histories, parameters, outages


class TestBatchDetector:
    def test_long_outage_found_accurately(self, trained_dense):
        _, evaluate, histories, parameters, outages = trained_dense
        results = PassiveDetector().detect(
            Family.IPV4, evaluate, histories, parameters, DAY, 2 * DAY)
        events = results[1].timeline.events()
        assert len(events) == 1
        truth_start, truth_end = outages[1][0]
        assert events[0].start == pytest.approx(truth_start, abs=60.0)
        assert events[0].end == pytest.approx(truth_end, abs=60.0)

    def test_short_outage_found_on_dense_block(self, trained_dense):
        _, evaluate, histories, parameters, outages = trained_dense
        results = PassiveDetector().detect(
            Family.IPV4, evaluate, histories, parameters, DAY, 2 * DAY)
        events = results[2].timeline.events(120.0)
        truth_start, truth_end = outages[2][0]
        matching = [e for e in events
                    if e.start < truth_end and truth_start < e.end]
        assert matching, "400-second outage missed on a dense block"

    def test_healthy_block_clean(self, trained_dense):
        _, evaluate, histories, parameters, _ = trained_dense
        results = PassiveDetector().detect(
            Family.IPV4, evaluate, histories, parameters, DAY, 2 * DAY)
        assert results[3].timeline.events(300.0) == []

    def test_unmeasurable_blocks_excluded(self):
        train, evaluate = make_population({9: 1e-5}, {})
        histories = train_histories(train, 0, DAY)
        parameters = ParameterPlanner().plan(histories)
        results = PassiveDetector().detect(
            Family.IPV4, evaluate, histories, parameters, DAY, 2 * DAY)
        assert 9 not in results

    def test_missing_block_is_full_outage(self):
        train, _ = make_population({5: 0.2}, {})
        histories = train_histories(train, 0, DAY)
        parameters = ParameterPlanner().plan(histories)
        results = PassiveDetector().detect(
            Family.IPV4, {}, histories, parameters, DAY, 2 * DAY)
        assert results[5].timeline.availability() < 0.05

    def test_belief_traces_optional(self, trained_dense):
        _, evaluate, histories, parameters, _ = trained_dense
        detector = PassiveDetector(keep_belief_traces=True)
        results = detector.detect(Family.IPV4, evaluate, histories,
                                  parameters, DAY, 2 * DAY)
        trace = results[1].belief_trace
        assert trace is not None
        assert np.all((trace > 0) & (trace < 1))

    def test_mixed_bin_sizes_grouped(self):
        rates = {1: 0.2, 2: 0.002}
        train, evaluate = make_population(rates, {})
        histories = train_histories(train, 0, DAY)
        parameters = ParameterPlanner().plan(histories)
        assert parameters[1].bin_seconds != parameters[2].bin_seconds
        results = PassiveDetector().detect(
            Family.IPV4, evaluate, histories, parameters, DAY, 2 * DAY)
        assert set(results) == {1, 2}


class TestStreamingDetector:
    def as_stream(self, evaluate):
        rows = []
        for key, times in evaluate.items():
            rows.extend(Observation(float(t), Family.IPV4, int(key) << 8)
                        for t in times)
        rows.sort()
        return rows

    def test_finds_same_long_outage_as_batch(self, trained_dense):
        _, evaluate, histories, parameters, outages = trained_dense
        batch = PassiveDetector().detect(
            Family.IPV4, evaluate, histories, parameters, DAY, 2 * DAY)

        stream = StreamingDetector(Family.IPV4, histories, parameters, DAY)
        for observation in self.as_stream(evaluate):
            stream.observe(observation)
        results = stream.finalize(2 * DAY)

        truth_start, truth_end = outages[1][0]
        events = results[1].timeline.events(300.0)
        assert len(events) == 1
        batch_event = batch[1].timeline.events(300.0)[0]
        assert events[0].start == pytest.approx(batch_event.start, abs=300.0)
        assert events[0].end == pytest.approx(batch_event.end, abs=300.0)

    def test_rejects_time_travel(self, trained_dense):
        _, _, histories, parameters, _ = trained_dense
        stream = StreamingDetector(Family.IPV4, histories, parameters, DAY)
        stream.observe(Observation(DAY + 100.0, Family.IPV4, 1 << 8))
        with pytest.raises(ValueError):
            stream.observe(Observation(DAY + 50.0, Family.IPV4, 1 << 8))

    def test_ignores_unknown_blocks_and_families(self, trained_dense):
        _, _, histories, parameters, _ = trained_dense
        stream = StreamingDetector(Family.IPV4, histories, parameters, DAY)
        stream.observe(Observation(DAY + 1.0, Family.IPV6, 1 << 80))
        stream.observe(Observation(DAY + 2.0, Family.IPV4, 0xFFFFFF00))
        results = stream.finalize(DAY + 10.0)
        assert all(r.timeline.span == 10.0 for r in results.values())

    def test_advance_flushes_silent_blocks(self, trained_dense):
        _, _, histories, parameters, _ = trained_dense
        stream = StreamingDetector(Family.IPV4, histories, parameters, DAY)
        # No packets at all; advancing the clock must judge block 1 down.
        stream.advance(DAY + 7200.0)
        results = stream.finalize(DAY + 7200.0)
        assert results[1].timeline.availability() < 0.5

    def test_gap_detection_streams(self):
        # One dense block, a 1500-s silence well above its gap threshold.
        rng = np.random.default_rng(4)
        train = {3: poisson_times(rng, 0.2, 0, DAY)}
        part1 = poisson_times(rng, 0.2, DAY, DAY + 20000.0)
        part2 = poisson_times(rng, 0.2, DAY + 21500.0, 2 * DAY)
        evaluate = {3: np.concatenate([part1, part2])}
        histories = train_histories(train, 0, DAY)
        parameters = ParameterPlanner().plan(histories)
        assert parameters[3].gap_threshold_seconds < 1500.0

        stream = StreamingDetector(Family.IPV4, histories, parameters, DAY)
        for time in evaluate[3]:
            stream.observe(Observation(float(time), Family.IPV4, 3 << 8))
        results = stream.finalize(2 * DAY)
        events = [e for e in results[3].timeline.events()
                  if e.start < DAY + 21500.0 and e.end > DAY + 20000.0]
        assert events, "streaming gap detection missed the silence"

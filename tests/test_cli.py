"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestSimulateDetect:
    def test_roundtrip(self, tmp_path, capsys):
        capture = tmp_path / "day.pobs"
        assert main(["simulate", "--blocks", "60", "--days", "2",
                     "--seed", "3", "--out", str(capture)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert capture.exists()

        assert main(["detect", str(capture), "--train-end", "86400"]) == 0
        out = capsys.readouterr().out
        assert "trained 60 blocks" in out
        assert "outage events" in out

    def test_detect_missing_family(self, tmp_path, capsys):
        capture = tmp_path / "v4only.pobs"
        main(["simulate", "--blocks", "10", "--days", "1",
              "--out", str(capture)])
        capsys.readouterr()
        assert main(["detect", str(capture), "--family", "6"]) == 1

    def test_train_then_detect_with_saved_model(self, tmp_path, capsys):
        capture = tmp_path / "two_days.pobs"
        model_path = tmp_path / "model.json"
        main(["simulate", "--blocks", "40", "--days", "2",
              "--out", str(capture)])
        capsys.readouterr()
        assert main(["train", str(capture), "--train-end", "86400",
                     "--out", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "trained 40 blocks" in out
        assert model_path.exists()
        assert main(["detect", str(capture),
                     "--model", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "outage events" in out

    def test_simulate_with_ipv6(self, tmp_path, capsys):
        capture = tmp_path / "dual.pobs"
        assert main(["simulate", "--blocks", "20", "--v6-blocks", "10",
                     "--days", "1", "--out", str(capture)]) == 0
        assert main(["detect", str(capture), "--family", "6"]) == 0


class TestExperimentCommand:
    def test_runs_small_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Precision" in out

    def test_runs_small_figure1(self, capsys):
        assert main(["experiment", "figure1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out.lower()


class TestLiveMonitor:
    def _prepare(self, tmp_path):
        capture = tmp_path / "two_days.pobs"
        model = tmp_path / "model.json"
        main(["simulate", "--blocks", "40", "--days", "2", "--seed", "7",
              "--out", str(capture)])
        main(["train", str(capture), "--train-end", "86400",
              "--out", str(model)])
        return capture, model

    def test_live_replay_with_sentinel_and_checkpoint(self, tmp_path,
                                                      capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "live.ckpt.json"
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--sentinel", "--checkpoint", str(checkpoint),
                     "--reorder-horizon", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "sentinel:" in out
        assert "reorder buffer:" in out
        assert checkpoint.exists()

    def test_live_resumes_from_checkpoint(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "live.ckpt.json"
        assert main(["live", str(capture), "--model", str(model),
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        # Second run finds the checkpoint and resumes instead of replaying.
        assert main(["live", str(capture), "--model", str(model),
                     "--checkpoint", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "replayed 0 observations" in out

    def test_live_family_mismatch_fails_cleanly(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--family", "6"]) == 1

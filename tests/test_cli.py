"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestSimulateDetect:
    def test_roundtrip(self, tmp_path, capsys):
        capture = tmp_path / "day.pobs"
        assert main(["simulate", "--blocks", "60", "--days", "2",
                     "--seed", "3", "--out", str(capture)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert capture.exists()

        assert main(["detect", str(capture), "--train-end", "86400"]) == 0
        out = capsys.readouterr().out
        assert "trained 60 blocks" in out
        assert "outage events" in out

    def test_detect_missing_family(self, tmp_path, capsys):
        capture = tmp_path / "v4only.pobs"
        main(["simulate", "--blocks", "10", "--days", "1",
              "--out", str(capture)])
        capsys.readouterr()
        assert main(["detect", str(capture), "--family", "6"]) == 1

    def test_train_then_detect_with_saved_model(self, tmp_path, capsys):
        capture = tmp_path / "two_days.pobs"
        model_path = tmp_path / "model.json"
        main(["simulate", "--blocks", "40", "--days", "2",
              "--out", str(capture)])
        capsys.readouterr()
        assert main(["train", str(capture), "--train-end", "86400",
                     "--out", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "trained 40 blocks" in out
        assert model_path.exists()
        assert main(["detect", str(capture),
                     "--model", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "outage events" in out

    def test_simulate_with_ipv6(self, tmp_path, capsys):
        capture = tmp_path / "dual.pobs"
        assert main(["simulate", "--blocks", "20", "--v6-blocks", "10",
                     "--days", "1", "--out", str(capture)]) == 0
        assert main(["detect", str(capture), "--family", "6"]) == 0


class TestExperimentCommand:
    def test_runs_small_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Precision" in out

    def test_runs_small_figure1(self, capsys):
        assert main(["experiment", "figure1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out.lower()

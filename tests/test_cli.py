"""Command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import EXIT_BUDGET_TRIPPED, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestSimulateDetect:
    def test_roundtrip(self, tmp_path, capsys):
        capture = tmp_path / "day.pobs"
        assert main(["simulate", "--blocks", "60", "--days", "2",
                     "--seed", "3", "--out", str(capture)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert capture.exists()

        assert main(["detect", str(capture), "--train-end", "86400"]) == 0
        out = capsys.readouterr().out
        assert "trained 60 blocks" in out
        assert "outage events" in out

    def test_detect_missing_family(self, tmp_path, capsys):
        capture = tmp_path / "v4only.pobs"
        main(["simulate", "--blocks", "10", "--days", "1",
              "--out", str(capture)])
        capsys.readouterr()
        assert main(["detect", str(capture), "--family", "6"]) == 1

    def test_train_then_detect_with_saved_model(self, tmp_path, capsys):
        capture = tmp_path / "two_days.pobs"
        model_path = tmp_path / "model.json"
        main(["simulate", "--blocks", "40", "--days", "2",
              "--out", str(capture)])
        capsys.readouterr()
        assert main(["train", str(capture), "--train-end", "86400",
                     "--out", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "trained 40 blocks" in out
        assert model_path.exists()
        assert main(["detect", str(capture),
                     "--model", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "outage events" in out

    def test_simulate_with_ipv6(self, tmp_path, capsys):
        capture = tmp_path / "dual.pobs"
        assert main(["simulate", "--blocks", "20", "--v6-blocks", "10",
                     "--days", "1", "--out", str(capture)]) == 0
        assert main(["detect", str(capture), "--family", "6"]) == 0


class TestExperimentCommand:
    def test_runs_small_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Precision" in out

    def test_runs_small_figure1(self, capsys):
        assert main(["experiment", "figure1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out.lower()


class TestLiveMonitor:
    def _prepare(self, tmp_path):
        capture = tmp_path / "two_days.pobs"
        model = tmp_path / "model.json"
        main(["simulate", "--blocks", "40", "--days", "2", "--seed", "7",
              "--out", str(capture)])
        main(["train", str(capture), "--train-end", "86400",
              "--out", str(model)])
        return capture, model

    def test_live_replay_with_sentinel_and_checkpoint(self, tmp_path,
                                                      capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "live.ckpt.json"
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--sentinel", "--checkpoint", str(checkpoint),
                     "--reorder-horizon", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "sentinel:" in out
        assert "reorder buffer:" in out
        assert checkpoint.exists()

    def test_live_resumes_from_checkpoint(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "live.ckpt.json"
        assert main(["live", str(capture), "--model", str(model),
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        # Second run finds the checkpoint and resumes instead of replaying.
        assert main(["live", str(capture), "--model", str(model),
                     "--checkpoint", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "replayed 0 observations" in out

    def test_live_family_mismatch_fails_cleanly(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--family", "6"]) == 1


class TestHealthAndBudget:
    def _poisoned_capture(self, tmp_path, n_poison):
        """Simulated two-day capture with ``n_poison`` blocks' detection
        timestamps overwritten with NaN (20 blocks total)."""
        from repro.telescope.capture import CaptureWriter, read_batches

        capture = tmp_path / "poisoned.pobs"
        main(["simulate", "--blocks", "20", "--days", "2", "--seed", "5",
              "--out", str(capture)])
        ipv4, _ = read_batches(str(capture))
        victims = sorted(set(ipv4.block_keys.tolist()))[:n_poison]
        times = ipv4.times.copy()
        for key in victims:
            mask = (ipv4.block_keys == key) & (times >= 86400.0)
            times[mask] = float("nan")
        with CaptureWriter(str(capture)) as writer:
            writer.write_batch(type(ipv4)(ipv4.family, times,
                                          ipv4.block_keys, ipv4.qtypes))
        return capture

    def test_detect_writes_health_report(self, tmp_path, capsys):
        capture = self._poisoned_capture(tmp_path, 1)
        report_path = tmp_path / "health.json"
        capsys.readouterr()
        assert main(["detect", str(capture), "--train-end", "86400",
                     "--health-report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "non-finite" in out
        document = json.loads(report_path.read_text())
        assert document["run"] == "detect"
        assert len(document["dead_letters"]) == 1
        assert document["budget_tripped"] is False

    def test_detect_budget_trip_exits_3_and_reports(self, tmp_path,
                                                    capsys):
        capture = self._poisoned_capture(tmp_path, 4)  # 20% poisoned
        report_path = tmp_path / "health.json"
        capsys.readouterr()
        code = main(["detect", str(capture), "--train-end", "86400",
                     "--max-quarantine-frac", "0.1",
                     "--health-report", str(report_path)])
        assert code == EXIT_BUDGET_TRIPPED
        err = capsys.readouterr().err
        assert "error budget exceeded" in err
        document = json.loads(report_path.read_text())
        assert document["budget_tripped"] is True
        assert len(document["dead_letters"]) == 4

    def test_clean_run_reports_zero_quarantine(self, tmp_path, capsys):
        capture = tmp_path / "clean.pobs"
        model = tmp_path / "model.json"
        report_path = tmp_path / "health.json"
        main(["simulate", "--blocks", "20", "--days", "2", "--seed", "5",
              "--out", str(capture)])
        main(["train", str(capture), "--train-end", "86400",
              "--out", str(model)])
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--max-quarantine-frac", "0.0",
                     "--health-report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "health report written" in out
        document = json.loads(report_path.read_text())
        assert document["run"] == "streaming"
        assert document["dead_letters"] == []
        assert document["budget_tripped"] is False

"""Command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import (EXIT_BUDGET_TRIPPED, EXIT_DEGRADED_COVERAGE,
                       build_parser, main)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestSimulateDetect:
    def test_roundtrip(self, tmp_path, capsys):
        capture = tmp_path / "day.pobs"
        assert main(["simulate", "--blocks", "60", "--days", "2",
                     "--seed", "3", "--out", str(capture)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert capture.exists()

        assert main(["detect", str(capture), "--train-end", "86400"]) == 0
        out = capsys.readouterr().out
        assert "trained 60 blocks" in out
        assert "outage events" in out

    def test_detect_missing_family(self, tmp_path, capsys):
        capture = tmp_path / "v4only.pobs"
        main(["simulate", "--blocks", "10", "--days", "1",
              "--out", str(capture)])
        capsys.readouterr()
        assert main(["detect", str(capture), "--family", "6"]) == 1

    def test_train_then_detect_with_saved_model(self, tmp_path, capsys):
        capture = tmp_path / "two_days.pobs"
        model_path = tmp_path / "model.json"
        main(["simulate", "--blocks", "40", "--days", "2",
              "--out", str(capture)])
        capsys.readouterr()
        assert main(["train", str(capture), "--train-end", "86400",
                     "--out", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "trained 40 blocks" in out
        assert model_path.exists()
        assert main(["detect", str(capture),
                     "--model", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "outage events" in out

    def test_simulate_with_ipv6(self, tmp_path, capsys):
        capture = tmp_path / "dual.pobs"
        assert main(["simulate", "--blocks", "20", "--v6-blocks", "10",
                     "--days", "1", "--out", str(capture)]) == 0
        assert main(["detect", str(capture), "--family", "6"]) == 0


class TestExperimentCommand:
    def test_runs_small_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Precision" in out

    def test_runs_small_figure1(self, capsys):
        assert main(["experiment", "figure1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out.lower()


class TestLiveMonitor:
    def _prepare(self, tmp_path):
        capture = tmp_path / "two_days.pobs"
        model = tmp_path / "model.json"
        main(["simulate", "--blocks", "40", "--days", "2", "--seed", "7",
              "--out", str(capture)])
        main(["train", str(capture), "--train-end", "86400",
              "--out", str(model)])
        return capture, model

    def test_live_replay_with_sentinel_and_checkpoint(self, tmp_path,
                                                      capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "live.ckpt.json"
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--sentinel", "--checkpoint", str(checkpoint),
                     "--reorder-horizon", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "sentinel:" in out
        assert "reorder buffer:" in out
        assert checkpoint.exists()

    def test_live_resumes_from_checkpoint(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "live.ckpt.json"
        assert main(["live", str(capture), "--model", str(model),
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        # Second run finds the checkpoint and resumes instead of replaying.
        assert main(["live", str(capture), "--model", str(model),
                     "--checkpoint", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "replayed 0 observations" in out

    def test_live_family_mismatch_fails_cleanly(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--family", "6"]) == 1


class TestTelemetry:
    def _prepare(self, tmp_path):
        capture = tmp_path / "two_days.pobs"
        model = tmp_path / "model.json"
        main(["simulate", "--blocks", "30", "--days", "2", "--seed", "11",
              "--out", str(capture)])
        main(["train", str(capture), "--train-end", "86400",
              "--out", str(model)])
        return capture, model

    def test_detect_writes_metrics_and_trace(self, tmp_path, capsys):
        capture, _ = self._prepare(tmp_path)
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        capsys.readouterr()
        assert main(["detect", str(capture), "--train-end", "86400",
                     "--metrics-out", str(metrics_path),
                     "--trace-out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "metrics written to" in out
        assert "trace written to" in out

        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["format"] == "repro-metrics-v1"
        names = {family["name"] for family in snapshot["metrics"]}
        assert "pipeline_stage_seconds" in names
        assert "belief_updates_total" in names

        trace = json.loads(trace_path.read_text())
        span_names = {event["name"] for event in trace["traceEvents"]}
        assert {"train", "fit", "tune", "detect", "aggregate"} <= span_names
        spans = {event["name"]: event for event in trace["traceEvents"]}
        # The per-stage tuning span nests inside the whole-train span.
        outer, inner = spans["train"], spans["tune"]
        assert outer["ts"] <= inner["ts"]
        assert (inner["ts"] + inner["dur"]
                <= outer["ts"] + outer["dur"])

    def test_live_metrics_embed_in_checkpoint(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "live.ckpt.json"
        metrics_path = tmp_path / "metrics.json"
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--checkpoint", str(checkpoint),
                     "--metrics-out", str(metrics_path)]) == 0
        capsys.readouterr()
        document = json.loads(checkpoint.read_text())
        assert document["metrics"]["format"] == "repro-metrics-v1"
        snapshot = json.loads(metrics_path.read_text())
        names = {family["name"] for family in snapshot["metrics"]}
        assert "stream_observations_total" in names
        assert "stream_watermark_lag_seconds" in names

    def test_live_resume_counters_monotone(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "live.ckpt.json"
        first = tmp_path / "m1.json"
        second = tmp_path / "m2.json"
        assert main(["live", str(capture), "--model", str(model),
                     "--checkpoint", str(checkpoint),
                     "--metrics-out", str(first)]) == 0
        assert main(["live", str(capture), "--model", str(model),
                     "--checkpoint", str(checkpoint),
                     "--metrics-out", str(second)]) == 0
        capsys.readouterr()

        def counter_map(path):
            snapshot = json.loads(path.read_text())
            values = {}
            for family in snapshot["metrics"]:
                if family["type"] != "counter":
                    continue
                for series in family["series"]:
                    key = (family["name"], tuple(series["labels"]))
                    values[key] = series["value"]
            return values

        before, after = counter_map(first), counter_map(second)
        assert before
        for key, value in before.items():
            assert after[key] >= value, key

    def test_live_metrics_interval_status_lines(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--metrics-interval", "0.000001"]) == 0
        err = capsys.readouterr().err
        assert "[live t=" in err
        assert "windows/s" in err
        assert "quarantined" in err

    def test_inspect_renders_metrics_snapshot(self, tmp_path, capsys):
        capture, _ = self._prepare(tmp_path)
        metrics_path = tmp_path / "metrics.json"
        main(["detect", str(capture), "--train-end", "86400",
              "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        assert main(["inspect", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "counters and gauges" in out
        assert "belief_updates_total" in out
        assert "stage latency" in out

    def test_inspect_renders_checkpoint_telemetry(self, tmp_path, capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "live.ckpt.json"
        main(["live", str(capture), "--model", str(model),
              "--checkpoint", str(checkpoint)])
        capsys.readouterr()
        assert main(["inspect", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "embedded telemetry from checkpoint" in out
        assert "stream_observations_total" in out

    def test_inspect_rejects_unrecognised_document(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 1
        assert "neither a metrics snapshot" in capsys.readouterr().err

    def test_inspect_checkpoint_without_telemetry_errors(self, tmp_path,
                                                         capsys):
        capture, model = self._prepare(tmp_path)
        checkpoint = tmp_path / "plain.ckpt.json"
        # A checkpoint written without --metrics-out... does not exist:
        # live always meters. Build one via the library instead.
        from repro.core.checkpoint import save_checkpoint
        from repro.core.detector import StreamingDetector
        from repro.core.serialize import load_model

        trained = load_model(str(model))
        detector = StreamingDetector(trained.family, trained.histories,
                                     trained.parameters, 3600.0)
        save_checkpoint(detector, checkpoint)
        capsys.readouterr()
        assert main(["inspect", str(checkpoint)]) == 1
        assert "without embedded telemetry" in capsys.readouterr().err


class TestHealthAndBudget:
    def _poisoned_capture(self, tmp_path, n_poison):
        """Simulated two-day capture with ``n_poison`` blocks' detection
        timestamps overwritten with NaN (20 blocks total)."""
        from repro.telescope.capture import CaptureWriter, read_batches

        capture = tmp_path / "poisoned.pobs"
        main(["simulate", "--blocks", "20", "--days", "2", "--seed", "5",
              "--out", str(capture)])
        ipv4, _ = read_batches(str(capture))
        victims = sorted(set(ipv4.block_keys.tolist()))[:n_poison]
        times = ipv4.times.copy()
        for key in victims:
            mask = (ipv4.block_keys == key) & (times >= 86400.0)
            times[mask] = float("nan")
        with CaptureWriter(str(capture)) as writer:
            writer.write_batch(type(ipv4)(ipv4.family, times,
                                          ipv4.block_keys, ipv4.qtypes))
        return capture

    def test_detect_writes_health_report(self, tmp_path, capsys):
        capture = self._poisoned_capture(tmp_path, 1)
        report_path = tmp_path / "health.json"
        capsys.readouterr()
        assert main(["detect", str(capture), "--train-end", "86400",
                     "--health-report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "non-finite" in out
        document = json.loads(report_path.read_text())
        assert document["run"] == "detect"
        assert len(document["dead_letters"]) == 1
        assert document["budget_tripped"] is False

    def test_detect_budget_trip_exits_3_and_reports(self, tmp_path,
                                                    capsys):
        capture = self._poisoned_capture(tmp_path, 4)  # 20% poisoned
        report_path = tmp_path / "health.json"
        capsys.readouterr()
        code = main(["detect", str(capture), "--train-end", "86400",
                     "--max-quarantine-frac", "0.1",
                     "--health-report", str(report_path)])
        assert code == EXIT_BUDGET_TRIPPED
        err = capsys.readouterr().err
        assert "error budget exceeded" in err
        document = json.loads(report_path.read_text())
        assert document["budget_tripped"] is True
        assert len(document["dead_letters"]) == 4

    def test_clean_run_reports_zero_quarantine(self, tmp_path, capsys):
        capture = tmp_path / "clean.pobs"
        model = tmp_path / "model.json"
        report_path = tmp_path / "health.json"
        main(["simulate", "--blocks", "20", "--days", "2", "--seed", "5",
              "--out", str(capture)])
        main(["train", str(capture), "--train-end", "86400",
              "--out", str(model)])
        capsys.readouterr()
        assert main(["live", str(capture), "--model", str(model),
                     "--max-quarantine-frac", "0.0",
                     "--health-report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "health report written" in out
        document = json.loads(report_path.read_text())
        assert document["run"] == "streaming"
        assert document["dead_letters"] == []
        assert document["budget_tripped"] is False


class TestParallelFlags:
    def test_detect_workers_output_matches_sequential(self, tmp_path,
                                                      capsys):
        capture = tmp_path / "day.pobs"
        main(["simulate", "--blocks", "30", "--days", "2", "--seed", "7",
              "--out", str(capture)])
        capsys.readouterr()
        reports = {}
        for label, extra in (("seq", []),
                             ("w1", ["--workers", "1"]),
                             ("w4", ["--workers", "4"])):
            report = tmp_path / f"health-{label}.json"
            assert main(["detect", str(capture), "--train-end", "86400",
                         "--health-report", str(report)] + extra) == 0
            out = "\n".join(line for line in
                            capsys.readouterr().out.splitlines()
                            if "health report written" not in line)
            reports[label] = (out, json.loads(report.read_text()))
        # stdout (trained/coverage/event lines) is bit-identical across
        # worker counts; health reports match up to wall-clock timings.
        assert reports["w1"][0] == reports["w4"][0] == reports["seq"][0]
        for document in reports.values():
            for stage in document[1]["stages"]:
                stage["seconds"] = 0.0
        assert reports["w1"][1] == reports["w4"][1] == reports["seq"][1]

    def test_detect_workers_budget_trip_still_exits_3(self, tmp_path,
                                                      capsys):
        helper = TestHealthAndBudget()
        capture = helper._poisoned_capture(tmp_path, 4)
        report_path = tmp_path / "health.json"
        capsys.readouterr()
        code = main(["detect", str(capture), "--train-end", "86400",
                     "--workers", "2", "--max-quarantine-frac", "0.1",
                     "--health-report", str(report_path)])
        assert code == EXIT_BUDGET_TRIPPED
        assert "error budget exceeded" in capsys.readouterr().err
        document = json.loads(report_path.read_text())
        assert document["budget_tripped"] is True
        assert len(document["dead_letters"]) == 4

    def test_experiment_workers_installs_process_default(self, capsys,
                                                         monkeypatch):
        from repro import cli
        from repro.parallel import get_default_parallelism

        seen = {}

        def fake_runner(scale=1.0):
            seen["parallelism"] = get_default_parallelism()
            return "ok"

        monkeypatch.setitem(cli.EXPERIMENTS, "week", fake_runner)
        assert main(["experiment", "week", "--workers", "3",
                     "--shard-chunk", "5"]) == 0
        assert seen["parallelism"] == (3, 5)
        assert get_default_parallelism() == (None, None)  # restored
        capsys.readouterr()


class TestTelemetryOnErrorExit:
    def test_budget_tripped_detect_still_writes_telemetry(self, tmp_path,
                                                          capsys):
        helper = TestHealthAndBudget()
        capture = helper._poisoned_capture(tmp_path, 4)
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        capsys.readouterr()
        code = main(["detect", str(capture), "--train-end", "86400",
                     "--max-quarantine-frac", "0.1",
                     "--metrics-out", str(metrics_path),
                     "--trace-out", str(trace_path)])
        assert code == EXIT_BUDGET_TRIPPED
        # The flush lives in a finally: an error exit must not lose the
        # run's telemetry, which is exactly when an operator wants it.
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["format"] == "repro-metrics-v1"
        names = {family["name"] for family in snapshot["metrics"]}
        assert "dead_letters_total" in names
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]

    def test_budget_tripped_experiment_exits_3_with_telemetry(
            self, tmp_path, capsys, monkeypatch):
        from repro import cli
        from repro.core.health import ErrorBudgetExceeded

        metrics_path = tmp_path / "metrics.json"

        def tripping_runner(scale=1.0):
            from repro.obs.metrics import resolve_registry
            resolve_registry(None).counter("attempts_total").inc()
            raise ErrorBudgetExceeded("detect", 10, 9, 0.5)

        monkeypatch.setitem(cli.EXPERIMENTS, "week", tripping_runner)
        code = main(["experiment", "week",
                     "--metrics-out", str(metrics_path)])
        assert code == EXIT_BUDGET_TRIPPED
        assert "error budget exceeded" in capsys.readouterr().err
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["format"] == "repro-metrics-v1"
        assert {f["name"] for f in snapshot["metrics"]} == {"attempts_total"}


class TestSupervisionCLI:
    def test_inspect_renders_coverage_golden(self, tmp_path, capsys):
        from repro.core.health import (CoverageReport, RunHealthReport,
                                       ShardAttemptRecord)

        report = RunHealthReport(run="detect")
        stage = report.stage("detect")
        stage.attempted = 8
        stage.succeeded = 7
        stage.quarantined = 1
        stage.seconds = 2.5
        report.dead_letters.record(
            "supervision", 0x0A00,
            RuntimeError("worker process for unit 00001.1 kept dying"))
        report.coverage = CoverageReport(
            blocks_planned=8, blocks_delivered=7, blocks_lost=[0x0A00],
            shard_attempts=[
                ShardAttemptRecord("00000", ["ok"], "done"),
                ShardAttemptRecord("00001", ["crash", "crash"], "bisected"),
                ShardAttemptRecord("00001.0", ["ok"], "done"),
                ShardAttemptRecord("00001.1", ["crash", "crash"], "lost"),
            ])
        path = tmp_path / "health.json"
        path.write_text(report.to_json())
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        golden = (
            "health report: run=detect\n"
            "  7/8 blocks ok, 1 quarantined, "
            "DEGRADED: 1 blocks lost to supervision\n"
            "stages:\n"
            "  detect: attempted 8, succeeded 7, quarantined 1 (2.50s)\n"
            "coverage (supervised run):\n"
            "  blocks planned    8\n"
            "  blocks delivered  7\n"
            "  blocks lost       1: 0xa00\n"
            "  retry histogram:\n"
            "    1 attempt(s): 2 unit(s)\n"
            "    2 attempt(s): 2 unit(s)\n"
            "  units beyond one clean attempt:\n"
            "    00001: crash,crash -> bisected\n"
            "    00001.1: crash,crash -> lost\n")
        assert capsys.readouterr().out == golden

    @pytest.mark.faults
    def test_strict_coverage_exits_4_when_a_worker_keeps_dying(
            self, tmp_path, capsys, monkeypatch):
        from repro.telescope.aggregate import per_block_times
        from repro.telescope.capture import read_batches
        from repro.testing.faults import crash_on_block, process_fault_env

        capture = tmp_path / "day.pobs"
        assert main(["simulate", "--blocks", "6", "--days", "2",
                     "--seed", "11", "--out", str(capture)]) == 0
        ipv4, _ = read_batches(str(capture))
        victim = sorted(per_block_times(ipv4))[2]
        for name, value in process_fault_env(crash_on_block(victim)).items():
            monkeypatch.setenv(name, value)
        capsys.readouterr()
        report_path = tmp_path / "health.json"
        code = main(["detect", str(capture), "--train-end", "86400",
                     "--shard-timeout", "60", "--shard-retries", "1",
                     "--strict-coverage",
                     "--health-report", str(report_path)])
        out = capsys.readouterr().out
        assert code == EXIT_DEGRADED_COVERAGE
        assert "train coverage degraded: 1/6 blocks lost" in out
        # The victim dies during training, so the detect-side report is
        # clean while the train-side report carries the coverage hole.
        document = json.loads(report_path.read_text())
        assert document["coverage"]["blocks_lost"] == []


class TestFusedInspect:
    def make_fused_checkpoint(self, tmp_path):
        """A deterministic two-vantage checkpoint: dns healthy to the
        end, darknet dead from t=24000 (open suspicion, quarantine)."""
        from repro.core.checkpoint import detector_to_json
        from repro.fusion import (FusedStreamingDetector, MappingSource,
                                  train_fused)
        from repro.net.addr import Family
        from repro.telescope.records import Observation

        family = Family.IPV4
        shift = family.bits - family.default_block_prefix
        times = np.arange(0.0, 40000.0, 10.0)
        dns = MappingSource("dns", {1: times, 2: times}, family=family)
        darknet = MappingSource("darknet", {1: times, 2: times},
                                family=family)
        model = train_fused([dns, darknet], family, 0.0, 20000.0)
        detector = FusedStreamingDetector(model, 20000.0)
        events = []
        for key in (1, 2):
            address = key << shift
            for time in times[times >= 20000.0]:
                events.append((float(time), "dns", address))
                if time < 24000.0:
                    events.append((float(time), "darknet", address))
        events.sort(key=lambda event: (event[0], event[1], event[2]))
        for time, name, address in events:
            detector.observe_from(name,
                                  Observation(time, family, address))
        path = tmp_path / "fused.ckpt.json"
        path.write_text(detector_to_json(detector))
        return path

    def test_inspect_renders_fused_checkpoint_golden(self, tmp_path,
                                                     capsys):
        path = self.make_fused_checkpoint(tmp_path)
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        golden = (
            f"fused checkpoint {path} (t=39,990.0s)\n"
            "fused vantages (2, primary dns):\n"
            "  dns: weight 1.0000 (healthy), 4000 observations, "
            "333 healthy / 0 quiet bins, 0 gated\n"
            "  darknet: weight 0.0000 (SUSPECT since t=24,020.0s), "
            "800 observations, 67 healthy / 266 quiet bins, 106 gated\n"
            "    quarantined [23,960.0s, 40,040.0s)\n")
        captured = capsys.readouterr()
        assert captured.out == golden
        # Metrics-free fused checkpoints are not an error: the fusion
        # state itself is the telemetry.
        assert captured.err == ""

    def test_inspect_renders_vantage_health_golden(self, tmp_path,
                                                   capsys):
        from repro.core.health import RunHealthReport, SourceHealth

        report = RunHealthReport(run="live")
        stage = report.stage("stream")
        stage.attempted = 2
        stage.succeeded = 2
        stage.seconds = 1.25
        report.sources["dns"] = SourceHealth(
            name="dns", observations=4000, weight=1.0,
            healthy_bins=333, quiet_bins=0, gated_bins=0,
            measurable_blocks=2)
        report.sources["darknet"] = SourceHealth(
            name="darknet", observations=800, weight=0.0123,
            healthy_bins=67, quiet_bins=266, gated_bins=106,
            quarantine_windows=[(23960.0, 40040.0)], measurable_blocks=2)
        path = tmp_path / "health.json"
        path.write_text(report.to_json())
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert ("vantages:\n"
                "  darknet: weight 0.0123, 800 observations, "
                "67 healthy / 266 quiet bins, 106 gated, "
                "2 measurable blocks, quarantined 16,080s over 1 window(s)\n"
                "  dns: weight 1.0000, 4000 observations, "
                "333 healthy / 0 quiet bins, 0 gated, "
                "2 measurable blocks\n") in out

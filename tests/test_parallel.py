"""Sharded/sequential equivalence for the parallel pipeline.

The contract under test is absolute: the sharded path must produce
*bit-for-bit* the same events, dead letters, guardrail counters, and
health accounting as the sequential path — for any worker count, any
chunking, under fault injection, and across a kill-and-resume through
a sharded checkpoint.  Wall-clock stage timings are the only sanctioned
difference (shards time their own work), so comparisons zero them.
"""

import json
import os

import numpy as np
import pytest

from repro.core.health import ErrorBudgetExceeded
from repro.core.pipeline import PassiveOutagePipeline
from repro.net.addr import Family
from repro.obs.explain import ExplainLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer
from repro.parallel import (
    get_default_parallelism,
    plan_shards,
    set_default_parallelism,
)
from repro.testing.faults import degenerate_parameters, poison_block_times

DAY = 86400.0


def poisson_times(rng, rate, start, end):
    n = rng.poisson(rate * (end - start))
    return np.sort(rng.uniform(start, end, n))


@pytest.fixture(scope="module")
def population():
    """20 blocks of one simulated day, rates spread over a decade."""
    rng = np.random.default_rng(11)
    return {k << 8: poisson_times(rng, 0.05 + 0.01 * k, 0.0, DAY)
            for k in range(20)}


def run_pair(per_block, workers, *, mutate=None, shard_chunk=3,
             aggregation_levels=0, max_quarantine_frac=1.0):
    """One sequential and one sharded run over identical inputs."""
    results = []
    for w in (0, workers):
        pipeline = PassiveOutagePipeline(
            aggregation_levels=aggregation_levels,
            max_quarantine_frac=max_quarantine_frac,
            metrics=MetricsRegistry(), workers=w, shard_chunk=shard_chunk)
        model = pipeline.train(Family.IPV4, per_block, 0.0, DAY)
        evaluate = mutate(model, per_block) if mutate else per_block
        results.append((pipeline, model,
                        pipeline.detect(model, evaluate, 0.0, DAY)))
    return results


def normalized_health(report):
    """Health dict with wall-clock timings zeroed and letters canonical."""
    report.dead_letters.canonicalize()
    document = report.as_dict()
    for stage in document["stages"]:
        stage["seconds"] = 0.0
    return document


def assert_equivalent(seq, shard):
    (_, seq_model, seq_result) = seq
    (_, shard_model, shard_result) = shard
    assert seq_model.parameters == shard_model.parameters
    assert seq_model.histories.keys() == shard_model.histories.keys()
    assert_results_equivalent(seq_result, shard_result)


def assert_results_equivalent(seq_result, shard_result):
    assert sorted(seq_result.blocks) == sorted(shard_result.blocks)
    for key in seq_result.blocks:
        a, b = seq_result.blocks[key], shard_result.blocks[key]
        assert a.timeline == b.timeline, f"block {key:#x} events differ"
        assert a.coarse_timeline == b.coarse_timeline, f"block {key:#x}"
        assert a.quarantined == b.quarantined
    assert (sorted(e.as_dict().items() for e in
                   seq_result.dead_letters.entries)
            == sorted(e.as_dict().items() for e in
                      shard_result.dead_letters.entries))
    assert (normalized_health(seq_result.health)
            == normalized_health(shard_result.health))


class TestPlanning:
    def test_contiguous_sorted_chunks(self):
        assert plan_shards([5, 1, 3, 2, 4], 2) == [[1, 2], [3, 4], [5]]

    def test_plan_is_deterministic_and_worker_independent(self):
        keys = list(range(100, 0, -1))
        assert plan_shards(keys) == plan_shards(list(reversed(keys)))

    def test_default_chunk_covers_everything(self):
        shards = plan_shards(range(37))
        assert sorted(k for shard in shards for k in shard) == list(range(37))

    def test_empty_population(self):
        assert plan_shards([]) == []

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            plan_shards([1, 2], 0)


class TestCleanEquivalence:
    def test_sharded_one_worker_matches_sequential(self, population):
        seq, shard = run_pair(population, 1)
        assert_equivalent(seq, shard)

    def test_pooled_workers_match_sequential(self, population):
        seq, shard = run_pair(population, 2)
        assert_equivalent(seq, shard)

    def test_worker_counts_are_bit_identical(self, population):
        # The acceptance bar: --workers 4 output == --workers 1 output,
        # including the folded metrics snapshot (same plan, same merge).
        runs = {}
        for w in (1, 4):
            registry = MetricsRegistry()
            pipeline = PassiveOutagePipeline(
                aggregation_levels=0, metrics=registry, workers=w,
                shard_chunk=3)
            model = pipeline.train(Family.IPV4, population, 0.0, DAY)
            result = pipeline.detect(model, population, 0.0, DAY)
            runs[w] = (model, result, registry)
        model1, result1, registry1 = runs[1]
        model4, result4, registry4 = runs[4]
        assert model1.parameters == model4.parameters
        for key in result1.blocks:
            assert result1.blocks[key].timeline == result4.blocks[key].timeline
        assert (result1.dead_letters.as_dict()
                == result4.dead_letters.as_dict())
        assert (normalized_health(result1.health)
                == normalized_health(result4.health))
        # Counter values fold identically; only wall-clock histograms
        # (stage/tune timings) may differ between runs.
        counters1 = {f["name"]: f for f in registry1.snapshot()["metrics"]
                     if f["type"] == "counter"}
        counters4 = {f["name"]: f for f in registry4.snapshot()["metrics"]
                     if f["type"] == "counter"}
        assert counters1 == counters4

    def test_aggregation_fallback_matches(self):
        # Mostly-sparse population so tuning declares blocks
        # unmeasurable and the parent-side aggregation pass runs.
        rng = np.random.default_rng(23)
        per_block = {}
        for k in range(16):
            rate = 0.2 if k % 4 == 0 else 0.0004
            per_block[k << 8] = poisson_times(rng, rate, 0.0, DAY)
        seq, shard = run_pair(per_block, 2, aggregation_levels=4,
                              shard_chunk=5)
        (_, _, seq_result), (_, _, shard_result) = seq, shard
        assert seq_result.aggregated.keys() == shard_result.aggregated.keys()
        for key in seq_result.aggregated:
            assert (seq_result.aggregated[key].timeline
                    == shard_result.aggregated[key].timeline)


@pytest.mark.faults
class TestFaultedEquivalence:
    def test_poisoned_blocks_quarantined_identically(self, population):
        victims = sorted(population)[3:9:2]

        def mutate(model, per_block):
            return poison_block_times(per_block, victims, "nan")

        seq, shard = run_pair(population, 2, mutate=mutate)
        assert_equivalent(seq, shard)
        (_, _, seq_result) = seq
        assert sorted(seq_result.dead_letters.keys()) == victims

    def test_unsorted_and_inf_poison(self, population):
        keys = sorted(population)

        def mutate(model, per_block):
            poisoned = poison_block_times(per_block, keys[:2], "inf")
            return poison_block_times(poisoned, keys[-2:], "unsorted")

        seq, shard = run_pair(population, 2, mutate=mutate)
        assert_equivalent(seq, shard)

    def test_degenerate_parameters_match(self, population):
        victims = sorted(population)[::7]
        runs = []
        for w in (0, 2):
            pipeline = PassiveOutagePipeline(
                aggregation_levels=0, max_quarantine_frac=1.0,
                metrics=MetricsRegistry(), workers=w, shard_chunk=4)
            model = pipeline.train(Family.IPV4, population, 0.0, DAY)
            model.parameters = degenerate_parameters(
                model.parameters, victims, "noise_nonempty", float("nan"))
            runs.append(pipeline.detect(model, population, 0.0, DAY))
        # NaN-poisoned parameters are unequal to themselves, so only
        # the *results* are compared — which is the actual contract.
        assert_results_equivalent(runs[0], runs[1])

    def test_health_report_accounts_for_union(self, population):
        victims = sorted(population)[:4]

        def mutate(model, per_block):
            return poison_block_times(per_block, victims, "nan")

        _, shard = run_pair(population, 2, mutate=mutate)
        (_, model, result) = shard
        assert result.health.accounts_for(model.measurable_keys)
        assert sorted(result.dead_letters.keys()) == victims

    def test_merged_budget_trips_exactly_like_sequential(self, population):
        victims = sorted(population)[:8]  # 40% > 25% budget

        def mutate(model, per_block):
            return poison_block_times(per_block, victims, "nan")

        for w in (0, 2):
            pipeline = PassiveOutagePipeline(
                aggregation_levels=0, max_quarantine_frac=0.25,
                workers=w, shard_chunk=3)
            model = pipeline.train(Family.IPV4, population, 0.0, DAY)
            with pytest.raises(ErrorBudgetExceeded) as info:
                pipeline.detect(model, mutate(model, population), 0.0, DAY)
            assert info.value.quarantined == len(victims)
            assert info.value.report is not None
            assert info.value.report.budget_tripped is True


class TestShardCheckpoint:
    def test_kill_and_resume_is_bit_identical(self, population, tmp_path):
        checkpoint = tmp_path / "shards"
        baseline = PassiveOutagePipeline(aggregation_levels=0, workers=1,
                                         shard_chunk=3)
        model = baseline.train(Family.IPV4, population, 0.0, DAY)
        expected = baseline.detect(model, population, 0.0, DAY)

        first = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=3,
            shard_checkpoint_dir=str(checkpoint))
        first.detect(model, population, 0.0, DAY)
        shard_files = sorted(p for p in os.listdir(checkpoint)
                             if p.startswith("shard-"))
        assert len(shard_files) == len(plan_shards(model.parameters, 3))

        # Simulate a mid-run kill: one completed shard survives on
        # disk, another is lost.  The resume must recompute only the
        # missing one and still merge to the identical result.
        (checkpoint / shard_files[2]).unlink()
        resumed = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=3,
            shard_checkpoint_dir=str(checkpoint))
        result = resumed.detect(model, population, 0.0, DAY)
        for key in expected.blocks:
            assert expected.blocks[key].timeline == result.blocks[key].timeline
        assert (normalized_health(expected.health)
                == normalized_health(result.health))

    def test_stale_plan_is_ignored_not_misread(self, population, tmp_path):
        checkpoint = tmp_path / "shards"
        pipeline = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=3,
            shard_checkpoint_dir=str(checkpoint))
        model = pipeline.train(Family.IPV4, population, 0.0, DAY)
        pipeline.detect(model, population, 0.0, DAY)

        # A different chunking is a different plan: cached shard files
        # must read as misses, not be merged positionally.
        other = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=7,
            shard_checkpoint_dir=str(checkpoint))
        result = other.detect(model, population, 0.0, DAY)
        baseline = PassiveOutagePipeline(aggregation_levels=0, workers=0)
        expected = baseline.detect(model, population, 0.0, DAY)
        for key in expected.blocks:
            assert expected.blocks[key].timeline == result.blocks[key].timeline

    def test_corrupt_shard_file_recomputed(self, population, tmp_path):
        checkpoint = tmp_path / "shards"
        pipeline = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=5,
            shard_checkpoint_dir=str(checkpoint))
        model = pipeline.train(Family.IPV4, population, 0.0, DAY)
        expected = pipeline.detect(model, population, 0.0, DAY)
        (checkpoint / "shard-00001.json").write_text("{ torn", "utf-8")
        result = pipeline.detect(model, population, 0.0, DAY)
        for key in expected.blocks:
            assert expected.blocks[key].timeline == result.blocks[key].timeline

    def test_corrupt_shard_is_counted_and_deleted(self, population,
                                                  tmp_path):
        """Corrupt != missing: a torn cached shard file is an
        infrastructure fault — it must be counted
        (``shard_cache_corrupt_total``), deleted, and rewritten by the
        resume, not silently recomputed behind a rotting file."""
        checkpoint = tmp_path / "shards"
        pipeline = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=5,
            shard_checkpoint_dir=str(checkpoint))
        model = pipeline.train(Family.IPV4, population, 0.0, DAY)
        expected = pipeline.detect(model, population, 0.0, DAY)
        (checkpoint / "shard-00001.json").write_text("{ torn", "utf-8")

        registry = MetricsRegistry()
        resumed = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=5,
            metrics=registry, shard_checkpoint_dir=str(checkpoint))
        result = resumed.detect(model, population, 0.0, DAY)
        assert registry.get("shard_cache_corrupt_total").value == 1
        # The torn file was removed and rewritten valid by the resume.
        rewritten = json.loads(
            (checkpoint / "shard-00001.json").read_text("utf-8"))
        assert rewritten["index"] == 1
        for key in expected.blocks:
            assert expected.blocks[key].timeline == result.blocks[key].timeline

        # A clean re-resume finds nothing corrupt.
        again = MetricsRegistry()
        clean = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=5,
            metrics=again, shard_checkpoint_dir=str(checkpoint))
        clean.detect(model, population, 0.0, DAY)
        assert again.get("shard_cache_corrupt_total") is None

    def test_stale_plan_files_are_pruned(self, population, tmp_path):
        """Two successive plans in one checkpoint dir: files from the
        first plan's digest can never be read again and must be pruned
        at the second plan's plan time, not accumulate forever."""
        checkpoint = tmp_path / "shards"
        first = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=3,
            shard_checkpoint_dir=str(checkpoint))
        model = first.train(Family.IPV4, population, 0.0, DAY)
        first.detect(model, population, 0.0, DAY)
        first_files = [name for name in os.listdir(checkpoint)
                       if name.startswith("shard-")]
        assert len(first_files) == len(plan_shards(model.parameters, 3))

        second = PassiveOutagePipeline(
            aggregation_levels=0, workers=1, shard_chunk=7,
            shard_checkpoint_dir=str(checkpoint))
        second.detect(model, population, 0.0, DAY)
        manifest = json.loads(
            (checkpoint / "manifest.json").read_text("utf-8"))
        shard_files = [name for name in os.listdir(checkpoint)
                       if name.startswith("shard-")]
        assert len(shard_files) == len(plan_shards(model.parameters, 7))
        for name in shard_files:
            document = json.loads((checkpoint / name).read_text("utf-8"))
            assert document["plan_digest"] == manifest["plan_digest"]


class TestProcessDefaults:
    def test_set_default_parallelism_round_trip(self):
        previous = set_default_parallelism(3, 7)
        try:
            assert get_default_parallelism() == (3, 7)
            pipeline = PassiveOutagePipeline()
            assert pipeline.workers == 3
            assert pipeline.shard_chunk == 7
            explicit = PassiveOutagePipeline(workers=0)
            assert explicit.workers == 0
        finally:
            set_default_parallelism(*previous)

    def test_default_default_is_sequential(self):
        pipeline = PassiveOutagePipeline()
        assert not pipeline.workers  # None/0: legacy sequential path


class TestShardedTelemetryShipping:
    """Spans and explain events recorded in workers ship home.

    The shard document is the only channel a pool worker has, so the
    tracer's spans and the explain ring both ride it: the parent must
    end up holding one coherent trace (its own lane plus one per worker
    pid, all under its trace id) and the same decision provenance a
    sequential run would have recorded.
    """

    def outage_evaluate(self, population):
        """The training population with one block silenced mid-window."""
        victim = sorted(population)[0]
        evaluate = dict(population)
        times = evaluate[victim]
        evaluate[victim] = times[(times < DAY * 0.3) | (times >= DAY * 0.7)]
        return victim, evaluate

    def test_worker_spans_merge_into_the_parent_trace(self, population):
        tracer = SpanTracer()
        pipeline = PassiveOutagePipeline(
            aggregation_levels=0, metrics=MetricsRegistry(),
            tracer=tracer, workers=2, shard_chunk=3)
        model = pipeline.train(Family.IPV4, population, 0.0, DAY)
        pipeline.detect(model, population, 0.0, DAY)
        # Foreign spans (pid set) arrived and joined this trace id.
        foreign = [span for span in tracer.spans if span.pid]
        assert foreign
        assert {span.pid for span in foreign} != {os.getpid()}
        assert all(span.args.get("trace_id", tracer.trace_id)
                   == tracer.trace_id for span in foreign)
        document = tracer.chrome_trace()
        assert document["metadata"]["trace_id"] == tracer.trace_id
        # Parent lane plus at least one worker lane.
        assert len({event["pid"]
                    for event in document["traceEvents"]}) >= 2

    def test_sharded_explain_matches_sequential(self, population):
        victim, evaluate = self.outage_evaluate(population)

        def provenance(workers):
            pipeline = PassiveOutagePipeline(
                aggregation_levels=0, metrics=MetricsRegistry(),
                workers=workers, shard_chunk=3)
            pipeline.detector.explain = ExplainLog()
            model = pipeline.train(Family.IPV4, population, 0.0, DAY)
            pipeline.detect(model, evaluate, 0.0, DAY)
            return [{k: v for k, v in event.items() if k != "seq"}
                    for event in pipeline.detector.explain.events()]

        sequential, sharded = provenance(0), provenance(2)
        assert sequential  # the silenced block produced decisions
        assert any(event["block"] == victim for event in sequential)
        canonical = lambda events: sorted(
            json.dumps(event, sort_keys=True) for event in events)
        assert canonical(sequential) == canonical(sharded)

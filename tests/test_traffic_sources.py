"""Arrival-process generators."""

import numpy as np
import pytest

from repro.traffic.seasonal import DiurnalPattern
from repro.traffic.sources import (
    arrival_generator_for,
    mmpp_times,
    modulated_poisson_times,
    poisson_times,
    suppress_intervals,
)


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestPoisson:
    def test_count_matches_rate(self, rng):
        times = poisson_times(rng, rate=0.5, start=0, end=10000)
        assert times.size == pytest.approx(5000, rel=0.1)

    def test_sorted_and_bounded(self, rng):
        times = poisson_times(rng, 0.2, 100, 200)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 100 and times.max() < 200

    def test_zero_rate(self, rng):
        assert poisson_times(rng, 0.0, 0, 100).size == 0

    def test_empty_span(self, rng):
        assert poisson_times(rng, 1.0, 100, 100).size == 0

    def test_exponential_gaps(self, rng):
        times = poisson_times(rng, 1.0, 0, 50000)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1.0, rel=0.05)
        # CV of exponential is 1.
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.1)


class TestModulated:
    def test_mean_rate_preserved(self, rng):
        pattern = DiurnalPattern(amplitude=0.5, peak_hour=12.0)
        times = modulated_poisson_times(rng, 0.1, pattern, 0, 5 * 86400.0)
        assert times.size == pytest.approx(0.1 * 5 * 86400, rel=0.1)

    def test_peak_hour_is_busiest(self, rng):
        pattern = DiurnalPattern(amplitude=0.9, peak_hour=12.0)
        times = modulated_poisson_times(rng, 0.2, pattern, 0, 10 * 86400.0)
        hours = ((times % 86400.0) // 3600.0).astype(int)
        counts = np.bincount(hours, minlength=24)
        assert counts[12] > 2 * counts[0]


class TestMmpp:
    def test_long_run_mean(self, rng):
        times = mmpp_times(rng, 0.1, 0, 10 * 86400.0)
        assert times.size == pytest.approx(0.1 * 10 * 86400, rel=0.15)

    def test_burstier_than_poisson(self, rng):
        times = mmpp_times(rng, 0.2, 0, 5 * 86400.0, burst_factor=10.0)
        counts = np.bincount((times // 60).astype(int))
        dispersion = counts.var() / counts.mean()
        assert dispersion > 1.5  # Poisson would be ~1

    def test_zero_rate(self, rng):
        assert mmpp_times(rng, 0.0, 0, 1000).size == 0


class TestSuppress:
    def test_removes_inside_interval(self):
        times = np.arange(0.0, 100.0, 10.0)
        kept = suppress_intervals(times, [(25.0, 55.0)])
        assert list(kept) == [0, 10, 20, 60, 70, 80, 90]

    def test_half_open_semantics(self):
        times = np.array([10.0, 20.0])
        assert list(suppress_intervals(times, [(10.0, 20.0)])) == [20.0]

    def test_empty_inputs(self):
        empty = np.empty(0)
        assert suppress_intervals(empty, [(0, 1)]).size == 0
        times = np.array([1.0])
        assert suppress_intervals(times, []).size == 1


class TestRegistry:
    def test_known_names(self):
        assert arrival_generator_for("poisson") is poisson_times
        assert arrival_generator_for("mmpp") is mmpp_times

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            arrival_generator_for("fractal")

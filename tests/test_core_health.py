"""Fault-containment vocabulary: dead letters, budget, health reports."""

import json

import numpy as np
import pytest

from repro.core.health import (
    BlockDataError,
    DeadLetterEntry,
    DeadLetterRegistry,
    ErrorBudget,
    ErrorBudgetExceeded,
    GuardrailCounters,
    RunHealthReport,
    inputs_digest,
)


class TestErrorBudget:
    def test_at_threshold_is_within_budget(self):
        ErrorBudget(0.1).check("detect", 10, 1)  # exactly 10%: fine

    def test_above_threshold_raises_with_accounting(self):
        with pytest.raises(ErrorBudgetExceeded) as info:
            ErrorBudget(0.1).check("detect", 10, 2)
        error = info.value
        assert error.stage == "detect"
        assert error.attempted == 10
        assert error.quarantined == 2
        assert error.fraction == pytest.approx(0.2)
        assert "20.0%" in str(error)

    def test_one_point_zero_disables(self):
        ErrorBudget(1.0).check("detect", 10, 10)

    def test_zero_budget_trips_on_any_quarantine(self):
        with pytest.raises(ErrorBudgetExceeded):
            ErrorBudget(0.0).check("train", 100, 1)

    def test_zero_attempted_never_trips(self):
        ErrorBudget(0.0).check("detect", 0, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ErrorBudget(1.5)
        with pytest.raises(ValueError):
            ErrorBudget(-0.1)


class TestInputsDigest:
    def test_array_digest_is_deterministic_and_counts_finite(self):
        values = np.array([1.0, float("nan"), 3.0])
        digest = inputs_digest(values)
        assert digest.startswith("n=3,finite=2,blake2b=")
        assert digest == inputs_digest(values.copy())

    def test_distinct_data_distinct_digest(self):
        assert inputs_digest(np.arange(5.0)) != inputs_digest(np.arange(6.0))

    def test_non_array_inputs_fall_back_to_repr(self):
        assert inputs_digest({"weird": object()}).startswith("repr:")


class TestDeadLetterRegistry:
    def test_record_captures_exception_and_digest(self):
        registry = DeadLetterRegistry()
        entry = registry.record("train", 0x2b, BlockDataError("poisoned"),
                                np.array([1.0, float("inf")]))
        assert entry.block_key == 0x2b
        assert entry.error_type == "BlockDataError"
        assert "poisoned" in entry.error
        assert entry.digest.startswith("n=2,finite=1")

    def test_block_counts_once_across_stages(self):
        registry = DeadLetterRegistry()
        registry.record("train", 7, ValueError("a"))
        registry.record("detect", 7, ValueError("b"))
        registry.record("detect", 9, ValueError("c"))
        assert len(registry) == 2
        assert registry.keys() == [7, 9]
        assert 7 in registry and 8 not in registry
        assert len(registry.by_stage("detect")) == 2

    def test_round_trips_through_dict(self):
        registry = DeadLetterRegistry()
        registry.record("tune", 3, RuntimeError("boom"))
        restored = DeadLetterRegistry.from_dict(
            json.loads(json.dumps(registry.as_dict())))
        assert restored.entries == registry.entries
        assert isinstance(restored.entries[0], DeadLetterEntry)


class TestGuardrailCounters:
    def test_trip_and_merge(self):
        a = GuardrailCounters()
        a.trip("nonfinite_count", 3)
        a.trip("nonfinite_count")
        b = GuardrailCounters()
        b.trip("masked_row", 2)
        a.merge(b)
        assert a.count("nonfinite_count") == 4
        assert a.count("masked_row") == 2
        assert a.total == 6
        assert bool(a)

    def test_zero_trips_are_not_recorded(self):
        counters = GuardrailCounters()
        counters.trip("masked_row", 0)
        assert counters.as_dict() == {}
        assert not counters


class TestRunHealthReport:
    def build(self):
        report = RunHealthReport(run="detect", max_quarantine_frac=0.5)
        stage = report.stage("detect")
        stage.attempted = 10
        stage.succeeded = 8
        stage.quarantined = 2
        stage.seconds = 1.5
        report.dead_letters.record("detect", 1, ValueError("x"))
        report.dead_letters.record("detect", 2, ValueError("y"))
        report.guardrails.trip("nonfinite_count", 4)
        return report

    def test_accounts_for_every_block(self):
        report = self.build()
        assert report.accounts_for(range(1, 11))
        # A key that never ran, a quarantined stranger, a count
        # mismatch: all must fail the completeness check.
        assert not report.accounts_for(range(1, 12))
        assert not report.accounts_for(range(3, 13))

    def test_stage_is_get_or_create(self):
        report = RunHealthReport()
        assert report.stage("train") is report.stage("train")
        assert len(report.stages) == 1

    def test_json_round_trip(self):
        report = self.build()
        restored = RunHealthReport.from_json(report.to_json())
        assert restored.run == "detect"
        assert restored.blocks_attempted == 10
        assert restored.blocks_quarantined == 2
        assert restored.quarantine_fraction == pytest.approx(0.2)
        assert restored.guardrails.count("nonfinite_count") == 4
        assert restored.stage("detect").seconds == pytest.approx(1.5)

    def test_summary_mentions_quarantine_and_guardrails(self):
        text = self.build().summary()
        assert "8/10 blocks ok" in text
        assert "2 quarantined" in text
        assert "4 guardrail trips" in text

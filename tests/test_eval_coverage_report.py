"""Coverage accounting and table/figure renderers."""

import numpy as np
import pytest

from repro.core.history import BlockHistory
from repro.core.parameters import DEFAULT_BIN_LADDER
from repro.eval.confusion import Confusion
from repro.eval.coverage import (
    CoveragePoint,
    confusion_by_density,
    coverage_vs_bin,
    outage_rate_report,
    prior_coverage_report,
)
from repro.eval.report import (
    ascii_bar_chart,
    format_confusion_table,
    format_coverage_curve,
    format_outage_rates,
    format_prior_coverage,
)
from repro.timeline import Timeline

DAY = 86400.0


def history(rate, count=None):
    count = int(rate * DAY) if count is None else count
    gap = 1.0 / rate if rate else DAY
    return BlockHistory(rate, count, DAY, gap, 3 * gap, 10 * gap)


class TestCoverageVsBin:
    def test_monotone_in_bin_size(self):
        histories = {k: history(rate) for k, rate in
                     enumerate(np.geomspace(1e-4, 1.0, 50))}
        points = coverage_vs_bin(histories, DEFAULT_BIN_LADDER)
        coverages = [p.coverage for p in points]
        assert coverages == sorted(coverages)

    def test_dense_only_at_finest(self):
        histories = {1: history(0.5), 2: history(0.001)}
        points = coverage_vs_bin(histories, (300.0, 7200.0))
        assert points[0].measurable_blocks == 1
        assert points[1].measurable_blocks == 2

    def test_thin_history_never_covered(self):
        histories = {1: history(0.5, count=3)}
        points = coverage_vs_bin(histories, (300.0,))
        assert points[0].measurable_blocks == 0

    def test_coverage_point_math(self):
        point = CoveragePoint(300.0, 30, 120)
        assert point.coverage == 0.25
        assert CoveragePoint(300.0, 0, 0).coverage == 0.0


class TestDensitySplit:
    def test_split_by_class(self):
        observed = {1: Timeline(0, 100), 2: Timeline(0, 100, [(0, 10)])}
        truth = {1: Timeline(0, 100), 2: Timeline(0, 100, [(0, 10)])}
        histories = {1: history(0.5), 2: history(0.001)}
        split = confusion_by_density(observed, truth, histories)
        from repro.traffic.rates import DensityClass
        assert split[DensityClass.DENSE].total == pytest.approx(100)
        assert split[DensityClass.SPARSE].to == pytest.approx(10)

    def test_unknown_blocks_skipped(self):
        observed = {9: Timeline(0, 100)}
        truth = {9: Timeline(0, 100)}
        split = confusion_by_density(observed, truth, {})
        assert all(c.total == 0 for c in split.values())


class TestReports:
    def test_outage_rate_report(self):
        timelines = {1: Timeline(0, DAY, [(0, 700)]),
                     2: Timeline(0, DAY, [(0, 100)]),
                     3: Timeline(0, DAY)}
        report = outage_rate_report("IPv4 /24", timelines,
                                    min_outage_seconds=600.0)
        assert report.measurable_blocks == 3
        assert report.blocks_with_outage == 1
        assert report.outage_rate == pytest.approx(1 / 3)

    def test_prior_coverage_report(self):
        report = prior_coverage_report("IPv6 /48", 123, "Gasser", 1000)
        assert report.fraction_of_prior == pytest.approx(0.123)
        assert prior_coverage_report("x", 1, "y", 0).fraction_of_prior == 0.0


class TestFormatting:
    def test_confusion_table_contains_cells_and_metrics(self):
        confusion = Confusion(ta=1000, fa=10, fo=20, to=70)
        text = format_confusion_table(confusion, "Table X", unit="s")
        assert "Table X" in text
        assert "ta=1,000" in text
        assert "Precision" in text and "Recall" in text and "TNR" in text
        assert f"{confusion.precision:.4f}" in text

    def test_coverage_curve_rows(self):
        points = [CoveragePoint(300.0, 10, 100), CoveragePoint(600.0, 60, 100)]
        text = format_coverage_curve(points)
        assert "10.0%" in text and "60.0%" in text

    def test_outage_rates_rows(self):
        reports = [outage_rate_report("IPv4 /24",
                                      {1: Timeline(0, DAY, [(0, 700)])})]
        text = format_outage_rates(reports)
        assert "IPv4 /24" in text and "100.0%" in text

    def test_prior_coverage_rows(self):
        text = format_prior_coverage(
            [prior_coverage_report("IPv4 /24", 200, "Trinocular", 1000)])
        assert "Trinocular" in text and "20.0%" in text

    def test_ascii_bar_chart(self):
        text = ascii_bar_chart(["a", "bb"], [1.0, 0.5])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_ascii_bar_chart_validates(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_ascii_bar_chart_zero_values(self):
        assert ascii_bar_chart(["a"], [0.0])  # no division by zero

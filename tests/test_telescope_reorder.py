"""Unit tests for the watermark/reorder buffer."""

import numpy as np
import pytest

from repro.net.addr import Family
from repro.telescope.records import Observation, TaggedObservation
from repro.telescope.reorder import (
    LatePolicy,
    ReorderBuffer,
    reorder_stream,
)
from repro.telescope.stream import merge_streams, window_stream


def obs(time, source=1 << 8, qtype=0):
    return Observation(float(time), Family.IPV4, source, qtype)


class TestReorderBuffer:
    def test_sorted_input_passes_through(self):
        buffer = ReorderBuffer(2.0)
        out = []
        for t in [1.0, 2.0, 3.0, 10.0]:
            out.extend(buffer.push(obs(t)))
        out.extend(buffer.flush())
        assert [o.time for o in out] == [1.0, 2.0, 3.0, 10.0]

    def test_bounded_disorder_is_restored_exactly(self):
        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0, 100, 200))
        rows = [obs(t) for t in times]
        # Swap random adjacent pairs closer than the horizon.
        noisy = rows[:]
        for i in range(0, len(noisy) - 1, 2):
            if noisy[i + 1].time - noisy[i].time < 1.0:
                noisy[i], noisy[i + 1] = noisy[i + 1], noisy[i]
        assert list(reorder_stream(noisy, 1.0)) == rows

    def test_watermark_withholds_recent_records(self):
        buffer = ReorderBuffer(5.0)
        assert buffer.push(obs(10.0)) == []
        assert buffer.push(obs(11.0)) == []
        released = buffer.push(obs(16.0))  # watermark now 11.0
        assert [o.time for o in released] == [10.0, 11.0]
        assert buffer.pending == 1

    def test_zero_horizon_is_immediate(self):
        buffer = ReorderBuffer(0.0)
        assert [o.time for o in buffer.push(obs(1.0))] == [1.0]
        assert [o.time for o in buffer.push(obs(2.0))] == [2.0]

    def test_ties_released_in_arrival_order(self):
        buffer = ReorderBuffer(0.0)
        first, second = obs(1.0, qtype=1), obs(1.0, qtype=2)
        out = buffer.push(first) + buffer.push(second) + buffer.flush()
        assert [o.qtype for o in out] == [1, 2]

    def test_late_policy_count_drops_and_counts(self):
        buffer = ReorderBuffer(1.0, LatePolicy.COUNT)
        buffer.push(obs(10.0))
        buffer.push(obs(20.0))  # emits 10.0, watermark 19.0
        assert buffer.push(obs(5.0)) == []
        assert buffer.stats.late_total == 1
        assert buffer.stats.late_dropped == 1
        assert buffer.stats.late_admitted == 0

    def test_late_policy_admit_emits_out_of_order(self):
        buffer = ReorderBuffer(1.0, LatePolicy.ADMIT)
        buffer.push(obs(10.0))
        buffer.push(obs(20.0))
        released = buffer.push(obs(5.0))
        assert [o.time for o in released] == [5.0]
        assert buffer.stats.late_admitted == 1

    def test_late_policy_raise_is_fatal(self):
        buffer = ReorderBuffer(1.0, LatePolicy.RAISE)
        buffer.push(obs(10.0))
        buffer.push(obs(20.0))
        with pytest.raises(ValueError, match="behind the reorder watermark"):
            buffer.push(obs(5.0))

    def test_stats_accounting_balances(self):
        rng = np.random.default_rng(9)
        buffer = ReorderBuffer(0.5, LatePolicy.COUNT)
        emitted = 0
        for t in rng.uniform(0, 50, 300):
            emitted += len(buffer.push(obs(t)))
        emitted += len(buffer.flush())
        stats = buffer.stats
        assert stats.pushed == 300
        assert stats.emitted == emitted
        assert stats.emitted + stats.late_dropped == stats.pushed
        assert stats.out_of_order > 0
        assert stats.max_displacement_seconds > 0

    def test_tie_with_watermark_is_on_time(self):
        # The drain releases records with time <= watermark, so the late
        # check must treat time == watermark as on-time too: both
        # comparisons judge the same boundary, ties land on-time.
        buffer = ReorderBuffer(5.0, LatePolicy.COUNT)
        buffer.push(obs(10.0))
        buffer.push(obs(16.0))  # watermark 11.0, emits 10.0
        # On-time at the boundary: emitted immediately by this drain.
        assert [o.time for o in buffer.push(obs(11.0))] == [11.0]
        assert buffer.stats.late_total == 0
        assert [o.time for o in buffer.flush()] == [16.0]

    def test_just_behind_watermark_is_late(self):
        buffer = ReorderBuffer(5.0, LatePolicy.COUNT)
        buffer.push(obs(10.0))
        buffer.push(obs(16.0))  # watermark 11.0
        assert buffer.push(obs(10.999)) == []
        assert buffer.stats.late_total == 1
        assert buffer.stats.late_dropped == 1

    def test_lateness_judged_against_watermark_not_last_emission(self):
        # The watermark can advance without emitting anything (empty
        # heap at the boundary); a record behind it is still late —
        # otherwise the late verdict would depend on what happened to
        # be buffered, not on the horizon contract.
        buffer = ReorderBuffer(1.0, LatePolicy.COUNT)
        buffer.push(obs(10.0))  # watermark 9.0, nothing emitted yet
        assert buffer.stats.emitted == 0
        assert buffer.push(obs(8.0)) == []
        assert buffer.stats.late_total == 1

    def test_flush_does_not_wedge_the_boundary(self):
        # flush() drains with an infinite bound; only what it actually
        # popped may raise the late boundary, or every post-flush
        # arrival would read as late.
        buffer = ReorderBuffer(5.0, LatePolicy.COUNT)
        buffer.push(obs(10.0))
        assert [o.time for o in buffer.flush()] == [10.0]
        assert [o.time for o in buffer.push(obs(10.0))] == []  # tie: on-time
        assert buffer.stats.late_total == 0
        buffer.push(obs(9.0))  # behind the emitted 10.0: late
        assert buffer.stats.late_total == 1
        out = buffer.flush()
        assert [o.time for o in out] == [10.0]

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(-1.0)

    def test_output_monotone_under_count_policy(self):
        rng = np.random.default_rng(13)
        buffer = ReorderBuffer(2.0, LatePolicy.COUNT)
        out = []
        for t in rng.uniform(0, 100, 500):
            out.extend(buffer.push(obs(t)))
        out.extend(buffer.flush())
        times = [o.time for o in out]
        assert times == sorted(times)


class TestReorderTelemetry:
    def test_occupancy_peak_tracks_high_watermark(self):
        buffer = ReorderBuffer(5.0)
        buffer.push(obs(10.0))
        buffer.push(obs(11.0))
        assert buffer.stats.occupancy_peak == 2
        buffer.push(obs(20.0))  # drains 10.0 and 11.0
        assert buffer.pending == 1
        assert buffer.stats.occupancy_peak == 3  # peak was before the drain
        assert buffer.stats.as_dict()["occupancy_peak"] == 3

    def test_record_outcomes_routed_through_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        buffer = ReorderBuffer(1.0, LatePolicy.COUNT, metrics=registry)
        buffer.push(obs(10.0))
        buffer.push(obs(20.0))   # admits 10.0, watermark 19.0
        buffer.push(obs(5.0))    # late: dropped under COUNT
        buffer.flush()
        outcomes = registry.get("reorder_records_total")
        assert outcomes.labels(outcome="admitted").value == 2
        assert outcomes.labels(outcome="late_dropped").value == 1
        assert outcomes.labels(outcome="late_admitted").value == 0
        assert (registry.get("reorder_buffer_occupancy_peak").value
                == buffer.stats.occupancy_peak)

    def test_late_admitted_outcome_counted(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        buffer = ReorderBuffer(1.0, LatePolicy.ADMIT, metrics=registry)
        buffer.push(obs(10.0))
        buffer.push(obs(20.0))
        buffer.push(obs(5.0))
        outcomes = registry.get("reorder_records_total")
        assert outcomes.labels(outcome="late_admitted").value == 1
        assert outcomes.labels(outcome="late_dropped").value == 0

    def test_merge_streams_counts_per_stream(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        merged = list(merge_streams([obs(1.0), obs(3.0)], [obs(2.0)],
                                    metrics=registry))
        assert len(merged) == 3
        family = registry.get("merge_records_total")
        assert family.labels(stream="0").value == 2
        assert family.labels(stream="1").value == 1

    def test_merge_streams_counts_flushed_on_abandonment(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        stream = merge_streams([obs(1.0), obs(2.0), obs(3.0)],
                               metrics=registry)
        next(stream)
        stream.close()  # abandon mid-way: the finally block still flushes
        assert registry.get("merge_records_total").labels(
            stream="0").value == 1

    def test_untelemetered_buffer_has_no_registry_cost(self):
        buffer = ReorderBuffer(1.0)
        assert buffer.push(obs(1.0)) == []
        # No metrics kwarg means the null registry: nothing registered.
        from repro.obs.metrics import NULL_REGISTRY
        assert NULL_REGISTRY.families() == []


class TestCheckpointState:
    def test_vantage_tag_survives_state_roundtrip(self):
        buffer = ReorderBuffer(5.0)
        buffer.push(TaggedObservation(10.0, Family.IPV4, 1 << 8, 0, "dns"))
        buffer.push(TaggedObservation(11.0, Family.IPV4, 2 << 8, 0,
                                      "darknet"))
        state = buffer.state_dict()
        # Tagged rows carry the vantage as a 5th element.
        assert all(len(row[2]) == 5 for row in state["heap"])
        restored = ReorderBuffer(5.0)
        restored.restore_state(state)
        held = sorted(restored.flush(), key=lambda o: o.time)
        assert [type(o) for o in held] == [TaggedObservation] * 2
        assert [o.vantage for o in held] == ["dns", "darknet"]
        assert [o.time for o in held] == [10.0, 11.0]

    def test_plain_rows_keep_four_element_shape(self):
        # Single-source checkpoints must stay byte-identical to the
        # pre-fusion format: no vantage column for plain observations.
        buffer = ReorderBuffer(5.0)
        buffer.push(obs(10.0))
        state = buffer.state_dict()
        assert all(len(row[2]) == 4 for row in state["heap"])
        restored = ReorderBuffer(5.0)
        restored.restore_state(state)
        held = restored.flush()
        assert [type(o) for o in held] == [Observation]

    def test_mixed_heap_restores_each_shape(self):
        buffer = ReorderBuffer(5.0)
        buffer.push(obs(10.0))
        buffer.push(TaggedObservation(10.5, Family.IPV4, 1 << 8, 0, "dns"))
        restored = ReorderBuffer(5.0)
        restored.restore_state(buffer.state_dict())
        held = sorted(restored.flush(), key=lambda o: o.time)
        assert type(held[0]) is Observation
        assert type(held[1]) is TaggedObservation
        assert held[1].vantage == "dns"


class TestStreamIntegration:
    def test_window_stream_reorder_horizon_matches_clean(self):
        rng = np.random.default_rng(17)
        times = np.sort(rng.uniform(0, 600, 400))
        rows = [obs(t) for t in times]
        noisy = rows[:]
        for i in range(0, len(noisy) - 1, 3):
            noisy[i], noisy[i + 1] = noisy[i + 1], noisy[i]
        clean = list(window_stream(rows, 0.0, 60.0))
        recovered = list(window_stream(noisy, 0.0, 60.0,
                                       reorder_horizon=600.0))
        assert clean == recovered

    def test_merge_streams_error_names_stream_and_times(self):
        good = [obs(1.0), obs(2.0), obs(3.0)]
        bad = [obs(1.5), obs(0.5)]  # stream 1, goes backwards
        with pytest.raises(ValueError) as info:
            list(merge_streams(good, bad))
        message = str(info.value)
        assert "stream 1" in message
        assert "0.5" in message and "1.5" in message
        assert "reorder_stream" in message

    def test_merge_streams_tie_break_is_stable(self):
        # Docstring claim: ties break by input order and stay stable.
        left = [obs(1.0, qtype=10), obs(2.0, qtype=11), obs(2.0, qtype=12)]
        right = [obs(1.0, qtype=20), obs(2.0, qtype=21)]
        merged = list(merge_streams(left, right))
        assert [o.qtype for o in merged] == [10, 20, 11, 12, 21]


class TestNonFiniteTimestamps:
    def test_merge_streams_rejects_nan_naming_stream_and_index(self):
        good = [obs(1.0), obs(2.0)]
        bad = [obs(0.5), obs(float("nan"))]
        with pytest.raises(ValueError) as info:
            list(merge_streams(good, bad))
        message = str(info.value)
        assert "stream 1" in message
        assert "record 1" in message
        assert "nan" in message

    def test_merge_streams_rejects_inf_at_head(self):
        with pytest.raises(ValueError) as info:
            list(merge_streams([obs(float("inf"))], [obs(1.0)]))
        message = str(info.value)
        assert "stream 0" in message
        assert "record 0" in message
        assert "inf" in message

    def test_reorder_buffer_rejects_nan_naming_arrival_index(self):
        buffer = ReorderBuffer(2.0)
        buffer.push(obs(1.0))
        buffer.push(obs(2.0))
        with pytest.raises(ValueError) as info:
            buffer.push(obs(float("nan")))
        message = str(info.value)
        assert "arrival 2" in message
        assert "nan" in message

    def test_reorder_buffer_rejects_inf_under_every_policy(self):
        for policy in LatePolicy:
            buffer = ReorderBuffer(2.0, policy)
            with pytest.raises(ValueError):
                buffer.push(obs(float("-inf")))

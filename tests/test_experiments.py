"""Experiment runners reproduce the paper's qualitative shape.

These run at reduced scale, so the assertions are *shape* bounds (who
wins, which way the curves bend), not the recorded full-scale numbers —
those live in EXPERIMENTS.md and the benchmarks.
"""

import pytest

from repro.experiments import (
    run_baseline_comparison,
    run_figure1,
    run_figure2a,
    run_figure2b,
    run_short_uplift,
    run_table1,
    run_table2,
    run_table3,
    run_tuning_ablation,
)

SCALE = 0.25


@pytest.fixture(scope="module")
def table1():
    return run_table1(scale=SCALE)


@pytest.fixture(scope="module")
def table2():
    return run_table2(scale=SCALE)


class TestTables:
    def test_table1_shape(self, table1):
        confusion = table1.confusion
        assert confusion.precision > 0.995
        assert confusion.recall > 0.99
        assert 0.6 < confusion.tnr <= 1.0
        assert table1.compared_blocks > 100
        assert "Table 1" in table1.text

    def test_table2_dense_shape(self, table1, table2):
        # At reduced scale the dense slice is small, so allow sampling
        # noise around the overall TNR; dense must still be strong.
        assert table2.confusion.tnr > min(0.9, table1.confusion.tnr - 0.05)
        assert table2.confusion.precision > 0.995

    def test_table3_shape(self):
        result = run_table3(scale=SCALE)
        confusion = result.confusion
        assert confusion.precision > 0.9
        assert confusion.recall > 0.85
        assert confusion.tnr > 0.5
        assert result.compared_blocks > 50

    def test_paper_reference_recorded(self, table1):
        assert table1.paper["tnr"] == pytest.approx(0.84178)


class TestFigures:
    def test_figure1_coverage_monotone(self):
        result = run_figure1(scale=SCALE)
        coverages = [p.coverage for p in result.points]
        assert coverages == sorted(coverages)
        assert result.coverage_at_coarsest > 0.75
        assert result.coverage_at_finest < result.coverage_at_coarsest

    def test_figure1_dense_more_precise(self):
        from repro.traffic.rates import DensityClass
        result = run_figure1(scale=SCALE)
        dense = result.precision_by_density[DensityClass.DENSE]
        sparse = result.precision_by_density[DensityClass.SPARSE]
        assert dense.tnr > sparse.tnr

    def test_figure2a_ipv6_rate_higher(self):
        result = run_figure2a(scale=0.5)
        assert result.ipv4.measurable_blocks > result.ipv6.measurable_blocks
        assert result.ipv6.outage_rate > result.ipv4.outage_rate

    def test_figure2b_fractions_in_band(self):
        result = run_figure2b(scale=0.5)
        assert 0.1 < result.ipv4.fraction_of_prior < 0.35
        assert 0.1 < result.ipv6.fraction_of_prior < 0.35
        assert result.ipv4.prior_system == "Trinocular"
        assert result.ipv6.prior_system == "Gasser hitlist"


class TestExtensions:
    def test_short_uplift_material(self):
        result = run_short_uplift(scale=0.5)
        assert result.short_events > 0
        assert 0.05 < result.uplift < 0.5
        assert "increases by" in result.text

    def test_ablation_tuned_covers_more_than_fine_fixed(self):
        result = run_tuning_ablation(scale=SCALE)
        assert result.tuned_coverage > result.homogeneous[300.0]
        # fixed fine bin only covers the dense slice
        assert result.homogeneous[300.0] < 0.5
        # tuned precision does not collapse
        assert result.tuned_confusion.precision > 0.99

    def test_baselines_ordering(self):
        result = run_baseline_comparison(scale=SCALE)
        # Chocolatine's AS-granularity verdicts catch almost none of the
        # per-block outage time, and Disco needs correlated regional
        # bursts this workload (independent block outages) never forms.
        assert result.chocolatine.tnr < 0.3
        assert result.disco.tnr < 0.3
        assert result.ours.tnr > result.chocolatine.tnr
        assert result.ours.tnr > result.cusum.tnr
        assert result.ours.precision > 0.99

    def test_fusion_improves_coverage(self):
        from repro.experiments import run_darknet_fusion
        result = run_darknet_fusion(scale=SCALE)
        assert result.fused_coverage >= result.dns_coverage

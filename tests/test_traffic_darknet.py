"""Darknet telescope (IBR second source)."""

import hashlib
import multiprocessing

import numpy as np
import pytest

from repro.net.addr import Family
from repro.traffic.darknet import DarknetConfig, DarknetTelescope
from repro.traffic.internet import (
    FamilyConfig,
    InternetConfig,
    SimulatedInternet,
)
from repro.traffic.outages import OutageModel

DAY = 86400.0

_SPAWN_CONFIG = InternetConfig(
    end=DAY, training_seconds=DAY / 2, seed=41,
    ipv4=FamilyConfig(n_blocks=12,
                      outage_model=OutageModel(outage_probability=0.5)))


def _darknet_digest(seed):
    """Digest of the telescope's full IPv4 stream (spawn-safe, top-level).

    Rebuilt from scratch so a spawned child shares nothing with its
    parent but the code — the digest matching across processes proves
    the stream derives from the seed alone, never from global RNG state.
    """
    telescope = DarknetTelescope(SimulatedInternet.build(_SPAWN_CONFIG))
    digest = hashlib.sha256()
    for key in sorted(telescope.per_block(Family.IPV4, seed=seed)):
        times = telescope.per_block(Family.IPV4, seed=seed)[key]
        digest.update(str(key).encode())
        digest.update(np.ascontiguousarray(times, dtype=float).tobytes())
    return digest.hexdigest()


def _digest_to_queue(queue, seed):
    queue.put(_darknet_digest(seed))


@pytest.fixture(scope="module")
def internet():
    config = InternetConfig(
        end=2 * DAY, training_seconds=DAY, seed=41,
        ipv4=FamilyConfig(
            n_blocks=60,
            outage_model=OutageModel(outage_probability=1.0,
                                     short_fraction=0.0)))
    return SimulatedInternet.build(config)


class TestRates:
    def test_rates_positive_and_deterministic(self, internet):
        a = DarknetTelescope(internet)
        b = DarknetTelescope(internet)
        for profile in internet.profiles:
            assert a.ibr_rate_for(profile) > 0
            assert a.ibr_rate_for(profile) == b.ibr_rate_for(profile)

    def test_rates_weakly_correlated_with_dns(self, internet):
        telescope = DarknetTelescope(internet)
        dns_rates = np.array([p.mean_rate for p in internet.profiles])
        ibr_rates = np.array([telescope.ibr_rate_for(p)
                              for p in internet.profiles])
        correlation = np.corrcoef(np.log(dns_rates), np.log(ibr_rates))[0, 1]
        assert 0.2 < correlation < 0.95  # related, but not a copy

    def test_config_scaling(self, internet):
        small = DarknetTelescope(internet, DarknetConfig(rate_scale=0.1))
        large = DarknetTelescope(internet, DarknetConfig(rate_scale=1.0))
        profile = internet.profiles[0]
        assert large.ibr_rate_for(profile) > small.ibr_rate_for(profile)


class TestObservations:
    def test_sorted_within_window(self, internet):
        telescope = DarknetTelescope(internet)
        for profile, times in telescope.observations(start=0, end=DAY):
            assert np.all(np.diff(times) >= 0)
            if times.size:
                assert times[0] >= 0 and times[-1] < DAY

    def test_outage_suppresses_genuine_but_not_spoofed(self, internet):
        config = DarknetConfig(spoofed_fraction=0.0)
        clean = DarknetTelescope(internet, config)
        for profile, times in clean.observations():
            for start, end in profile.truth.down_intervals:
                inside = times[(times >= start) & (times < end)]
                assert inside.size == 0

        spoofy = DarknetTelescope(internet,
                                  DarknetConfig(spoofed_fraction=0.5,
                                                rate_scale=2.0))
        leaked = 0
        for profile, times in spoofy.observations():
            for start, end in profile.truth.down_intervals:
                leaked += times[(times >= start) & (times < end)].size
        assert leaked > 0  # spoofed traffic ignores the outage

    def test_per_block_family_filter(self, internet):
        telescope = DarknetTelescope(internet)
        v4 = telescope.per_block(Family.IPV4)
        assert set(v4) == {p.key for p in
                           internet.family_profiles(Family.IPV4)}
        assert telescope.per_block(Family.IPV6) == {}

    def test_reproducible_given_seed(self, internet):
        telescope = DarknetTelescope(internet)
        first = telescope.per_block(Family.IPV4, seed=5)
        second = telescope.per_block(Family.IPV4, seed=5)
        for key in first:
            assert np.array_equal(first[key], second[key])

    def test_observations_match_per_block(self, internet):
        # The two access paths expose one stream, not two generators.
        telescope = DarknetTelescope(internet)
        per_block = telescope.per_block(Family.IPV4, seed=5)
        via_observations = {
            profile.key: times
            for profile, times in telescope.observations(seed=5)
            if profile.family is Family.IPV4}
        assert set(per_block) == set(via_observations)
        for key in per_block:
            assert np.array_equal(per_block[key], via_observations[key])


class TestSpawnDeterminism:
    """The fused live path regenerates telescope streams in spawned
    partition workers; the whole-tap monitor protocol only works if a
    child's regenerated stream is bit-identical to the parent's."""

    def test_identical_stream_across_spawned_processes(self):
        expected = _darknet_digest(5)
        assert _darknet_digest(5) == expected  # same-process repeat
        context = multiprocessing.get_context("spawn")
        queue = context.Queue()
        child = context.Process(target=_digest_to_queue, args=(queue, 5))
        child.start()
        try:
            assert queue.get(timeout=120) == expected
        finally:
            child.join(timeout=30)
        assert _darknet_digest(6) != expected  # the seed is the input


class TestFusionExperiment:
    def test_fused_coverage_dominates(self):
        from repro.experiments import run_darknet_fusion
        result = run_darknet_fusion(scale=0.2)
        assert result.fused_coverage >= result.dns_coverage
        assert result.fused_coverage >= result.darknet_coverage - 0.02
        assert result.fused_confusion.precision > 0.99

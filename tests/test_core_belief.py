"""Bayesian belief filtering: scalar and vector engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.belief import (
    BELIEF_CEIL,
    BELIEF_FLOOR,
    BeliefState,
    vector_belief_pass,
)
from repro.core.parameters import BlockParameters


def make_params(p_empty=0.001, noise=1e-5, prior_down=0.002,
                prior_up=0.08, **kwargs):
    return BlockParameters(
        bin_seconds=300.0, p_empty_up=p_empty, noise_nonempty=noise,
        prior_down=prior_down, prior_up_recovery=prior_up, **kwargs)


class TestScalar:
    def test_traffic_keeps_belief_up(self):
        state = BeliefState(make_params())
        for _ in range(100):
            assert state.update(3)
        assert state.belief > 0.99

    def test_silence_drives_down(self):
        state = BeliefState(make_params())
        flips = 0
        for _ in range(5):
            if not state.update(0):
                flips += 1
        assert flips > 0
        assert state.belief < 0.1

    def test_recovery_flips_up(self):
        state = BeliefState(make_params())
        while state.update(0):
            pass
        assert state.update(5)
        assert state.belief > 0.9

    def test_hysteresis_no_flapping(self):
        # A block with weak evidence should hold its state between the
        # thresholds rather than oscillating.
        params = make_params(p_empty=0.5)
        state = BeliefState(params)
        states = [state.update(count) for count in (0, 1, 0, 1, 0, 1)]
        assert all(states)  # never confidently down

    def test_belief_clamped(self):
        state = BeliefState(make_params())
        for _ in range(1000):
            state.update(10)
        assert state.belief <= BELIEF_CEIL
        for _ in range(1000):
            state.update(0)
        assert state.belief >= BELIEF_FLOOR

    def test_count_strengthens_evidence(self):
        weak = BeliefState(make_params())
        strong = BeliefState(make_params())
        # pull both down first
        for state in (weak, strong):
            while state.update(0):
                pass
        weak.update(1)
        strong.update(50)
        assert strong.belief >= weak.belief

    def test_time_varying_override(self):
        state = BeliefState(make_params())
        # quiet-hour override: empty bin is expected, belief barely moves
        before = state.belief
        state.update(0, p_empty_up=0.999999)
        assert state.belief == pytest.approx(before, abs=0.01)
        assert state.is_up


class TestVector:
    def test_matches_scalar_exactly(self):
        rng = np.random.default_rng(8)
        n_blocks, n_bins = 7, 60
        counts = rng.poisson(2.0, size=(n_blocks, n_bins))
        counts[:, 20:30] = 0  # an outage window
        p_empty = rng.uniform(1e-4, 0.05, n_blocks)
        noise = rng.uniform(1e-6, 1e-4, n_blocks)
        prior_down = np.full(n_blocks, 0.002)
        prior_up = np.full(n_blocks, 0.08)

        states, beliefs = vector_belief_pass(
            counts, p_empty, noise, prior_down, prior_up,
            return_beliefs=True)

        for row in range(n_blocks):
            scalar = BeliefState(make_params(
                p_empty=float(p_empty[row]), noise=float(noise[row])))
            for bin_index in range(n_bins):
                is_up = scalar.update(int(counts[row, bin_index]))
                assert is_up == states[row, bin_index], (row, bin_index)
                assert scalar.belief == pytest.approx(
                    beliefs[row, bin_index], rel=1e-9)

    def test_time_varying_matrix(self):
        counts = np.zeros((1, 48), dtype=int)
        # identical silence, but expected at night (p_empty ~ 1)
        p_empty = np.full((1, 48), 1.0 - 1e-9)
        noise = np.array([1e-5])
        states, _ = vector_belief_pass(
            counts, p_empty, noise, np.array([0.002]), np.array([0.08]))
        assert states.all()  # silence carried no evidence

    def test_shape_validation(self):
        counts = np.zeros((2, 10), dtype=int)
        good = np.ones(2) * 0.01
        with pytest.raises(ValueError):
            vector_belief_pass(np.zeros(10), good, good, good, good)
        with pytest.raises(ValueError):
            vector_belief_pass(counts, np.ones(3), good, good, good)
        with pytest.raises(ValueError):
            vector_belief_pass(counts, np.ones((2, 9)), good, good, good)

    def test_initial_belief_respected(self):
        counts = np.ones((1, 1), dtype=int)
        states, beliefs = vector_belief_pass(
            np.zeros((1, 3), dtype=int), np.array([0.001]),
            np.array([1e-5]), np.array([0.002]), np.array([0.08]),
            initial_belief=np.array([0.05]), return_beliefs=True)
        # started almost-down; silence keeps it down immediately
        assert not states[0, 0]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                max_size=120),
       st.floats(min_value=1e-6, max_value=0.5),
       st.floats(min_value=1e-8, max_value=1e-3))
def test_vector_scalar_equivalence_property(counts, p_empty, noise):
    """The two engines are the same filter, bit for bit (one block)."""
    matrix = np.array([counts])
    states, beliefs = vector_belief_pass(
        matrix, np.array([p_empty]), np.array([noise]),
        np.array([0.002]), np.array([0.08]), return_beliefs=True)
    scalar = BeliefState(make_params(p_empty=p_empty, noise=noise))
    for index, count in enumerate(counts):
        is_up = scalar.update(count)
        assert is_up == states[0, index]
        assert 0.0 < beliefs[0, index] < 1.0
        assert scalar.belief == pytest.approx(beliefs[0, index], rel=1e-9)

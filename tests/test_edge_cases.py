"""Edge cases and failure paths across module boundaries."""

import io

import numpy as np
import pytest

from repro.core.aggregation import plan_aggregation
from repro.core.detector import PassiveDetector, StreamingDetector
from repro.core.history import train_histories, train_history
from repro.core.parameters import ParameterPlanner
from repro.core.pipeline import PassiveOutagePipeline
from repro.net.addr import Family
from repro.telescope.aggregate import BinGrid, binned_counts
from repro.telescope.records import Observation, ObservationBatch
from repro.timeline import Timeline
from repro.traffic.sources import poisson_times

DAY = 86400.0


class TestDetectorEdges:
    def test_empty_population(self):
        results = PassiveDetector().detect(Family.IPV4, {}, {}, {}, 0, DAY)
        assert results == {}

    def test_single_bin_window(self):
        rng = np.random.default_rng(0)
        train = {1: poisson_times(rng, 0.1, 0, DAY)}
        histories = train_histories(train, 0, DAY)
        parameters = ParameterPlanner().plan(histories)
        bin_seconds = parameters[1].bin_seconds
        evaluate = {1: poisson_times(rng, 0.1, DAY, DAY + bin_seconds)}
        results = PassiveDetector().detect(
            Family.IPV4, evaluate, histories, parameters,
            DAY, DAY + bin_seconds)
        assert results[1].timeline.span == bin_seconds

    def test_observation_at_exact_window_end_clamped(self):
        """An arrival exactly at `end` must not crash the binner."""
        grid = BinGrid(0, 100, 10)
        counts = binned_counts([1], {1: np.array([100.0 - 1e-12, 50.0])},
                               grid)
        assert counts.sum() == 2

    def test_streaming_finalize_before_any_observation(self):
        rng = np.random.default_rng(1)
        train = {1: poisson_times(rng, 0.1, 0, DAY)}
        histories = train_histories(train, 0, DAY)
        parameters = ParameterPlanner().plan(histories)
        detector = StreamingDetector(Family.IPV4, histories, parameters,
                                     DAY)
        results = detector.finalize(DAY)  # zero-length window
        assert results[1].timeline.span == 0.0

    def test_duplicate_timestamps_accepted(self):
        rng = np.random.default_rng(2)
        train = {1: poisson_times(rng, 0.1, 0, DAY)}
        histories = train_histories(train, 0, DAY)
        parameters = ParameterPlanner().plan(histories)
        detector = StreamingDetector(Family.IPV4, histories, parameters,
                                     DAY)
        for _ in range(3):
            detector.observe(Observation(DAY + 5.0, Family.IPV4, 1 << 8))
        results = detector.finalize(DAY + 600.0)
        assert 1 in results


class TestPipelineEdges:
    def test_detect_block_absent_from_training(self):
        """Blocks that appear only in the detection window are ignored
        (no model exists for them) rather than crashing."""
        rng = np.random.default_rng(3)
        pipeline = PassiveOutagePipeline()
        model = pipeline.train(
            Family.IPV4, {1: poisson_times(rng, 0.1, 0, DAY)}, 0, DAY)
        evaluate = {1: poisson_times(rng, 0.1, DAY, 2 * DAY),
                    2: poisson_times(rng, 0.1, DAY, 2 * DAY)}
        result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        assert set(result.blocks) == {1}

    def test_training_on_empty_streams(self):
        pipeline = PassiveOutagePipeline()
        model = pipeline.train(Family.IPV4, {1: np.empty(0)}, 0, DAY)
        assert model.unmeasurable_keys == [1]
        result = pipeline.detect(model, {1: np.empty(0)}, DAY, 2 * DAY)
        assert result.blocks == {}

    def test_aggregation_of_ipv6_siblings(self):
        """The spatial fallback must handle 48-bit keys."""
        rng = np.random.default_rng(4)
        base = 0x20010DB80000 & ~0xF
        per_block = {base + low: poisson_times(rng, 0.0004, 0, 2 * DAY)
                     for low in range(4)}
        pipeline = PassiveOutagePipeline(aggregation_levels=4)
        train = {k: t[t < DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV6, train, 0, DAY)
        assert len(model.unmeasurable_keys) == 4
        result = pipeline.detect(model, per_block, DAY, 2 * DAY)
        assert base >> 4 in result.aggregated


class TestHistoryEdges:
    def test_single_arrival(self):
        history = train_history(np.array([100.0]), 0, DAY)
        assert history.observed_count == 1
        assert history.median_gap == DAY

    def test_all_arrivals_identical(self):
        history = train_history(np.full(50, 123.0), 0, DAY)
        assert history.observed_count == 50
        assert history.median_gap == 0.0
        params = ParameterPlanner().plan_block(history)
        # 50 packets in one instant is a burst, not a healthy block: the
        # empirical max gap (0) keeps the gap detector floored, and the
        # tuner must not crash.
        assert params.gap_threshold_seconds >= 90.0


class TestAggregationEdges:
    def test_plan_with_empty_keys(self):
        plan = plan_aggregation(Family.IPV4, [], levels=4)
        assert plan.groups == {}
        assert plan.covered_children() == 0


class TestBatchEdges:
    def test_empty_batch_roundtrip(self):
        from repro.telescope.capture import read_batches, write_batches
        buffer = io.BytesIO()
        with pytest.raises(ValueError):
            ObservationBatch.concatenate([])
        write_batches(buffer)  # header-only capture
        buffer.seek(0)
        v4, v6 = read_batches(buffer)
        assert len(v4) == 0 and len(v6) == 0

    def test_time_slice_outside_range(self):
        batch = ObservationBatch(
            Family.IPV4, np.array([10.0, 20.0]),
            np.array([1, 2], dtype=np.uint64))
        assert len(batch.time_slice(100.0, 200.0)) == 0

    def test_timeline_zero_span(self):
        timeline = Timeline(5.0, 5.0)
        assert timeline.availability() == 1.0
        assert timeline.events() == []
        assert list(timeline.segments()) == []

"""Synthetic IPv6 hitlist."""

import numpy as np
import pytest

from repro.net.addr import Family
from repro.net.blocks import Block
from repro.net.hitlist import Hitlist, hitlist_from_blocks, synthesize_hitlist


class TestSynthesize:
    def test_size_close_to_target(self):
        rng = np.random.default_rng(5)
        hitlist = synthesize_hitlist(rng, total_blocks=5000)
        # Collisions within a provider may shave a little off the target.
        assert 4000 <= len(hitlist) <= 5000

    def test_entries_are_48s_in_global_unicast(self):
        rng = np.random.default_rng(5)
        hitlist = synthesize_hitlist(rng, total_blocks=500)
        for block in hitlist.blocks():
            assert block.prefix_len == 48
            top_nibble = block.prefix >> 44
            assert 0x2 <= top_nibble <= 0x3

    def test_clustered_into_providers(self):
        rng = np.random.default_rng(5)
        hitlist = synthesize_hitlist(rng, total_blocks=2000,
                                     num_providers=50)
        providers = {key >> 16 for key in hitlist.keys}
        assert len(providers) <= 50

    def test_deterministic_given_seed(self):
        a = synthesize_hitlist(np.random.default_rng(7), total_blocks=300)
        b = synthesize_hitlist(np.random.default_rng(7), total_blocks=300)
        assert a.keys == b.keys


class TestHitlist:
    def test_membership(self):
        hitlist = Hitlist()
        hitlist.add(0xABC)
        assert 0xABC in hitlist
        assert 0xDEF not in hitlist

    def test_coverage_fraction(self):
        hitlist = Hitlist(keys={1, 2, 3, 4})
        assert hitlist.coverage_fraction([1, 2, 99]) == pytest.approx(0.5)
        assert hitlist.coverage_fraction([]) == 0.0

    def test_coverage_of_empty_hitlist(self):
        assert Hitlist().coverage_fraction([1]) == 0.0

    def test_from_blocks(self):
        blocks = [Block(Family.IPV6, 0x20010DB80000, 48)]
        hitlist = hitlist_from_blocks(blocks)
        assert 0x20010DB80000 in hitlist

    def test_from_blocks_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            hitlist_from_blocks([Block.parse("10.0.0.0/24")])
        with pytest.raises(ValueError):
            hitlist_from_blocks([Block.parse("2001:db8::/44")])

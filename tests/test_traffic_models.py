"""Rate mixtures, seasonality, and outage models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traffic.outages import IPV4_OUTAGE_MODEL, IPV6_OUTAGE_MODEL, OutageModel
from repro.traffic.rates import (
    DENSE_RATE_THRESHOLD,
    DensityClass,
    RateMixture,
    classify_rate,
)
from repro.traffic.seasonal import DiurnalPattern


class TestRateMixture:
    def test_dense_share_near_configured(self):
        mixture = RateMixture(dense_fraction=0.22)
        assert mixture.expected_dense_share() == pytest.approx(0.22, abs=0.05)

    def test_draw_shapes_and_positivity(self):
        rng = np.random.default_rng(1)
        rates = RateMixture().draw(rng, 1000)
        assert rates.shape == (1000,)
        assert np.all(rates > 0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            RateMixture().draw(np.random.default_rng(0), -1)

    def test_heavy_tail(self):
        rng = np.random.default_rng(1)
        rates = RateMixture().draw(rng, 20000)
        assert rates.max() / np.median(rates) > 100


class TestClassify:
    def test_thresholds(self):
        assert classify_rate(1.0) is DensityClass.DENSE
        assert classify_rate(DENSE_RATE_THRESHOLD) is DensityClass.DENSE
        assert classify_rate(0.001) is DensityClass.SPARSE
        assert classify_rate(1e-6) is DensityClass.UNMEASURABLE


class TestDiurnal:
    def test_flat_is_identity(self):
        pattern = DiurnalPattern.flat()
        times = np.linspace(0, 86400, 100)
        assert np.allclose(pattern.intensity(times), 1.0)

    def test_intensity_nonnegative_and_bounded(self):
        pattern = DiurnalPattern(amplitude=0.9, peak_hour=3.0,
                                 week_amplitude=0.15)
        times = np.linspace(0, 7 * 86400, 5000)
        intensity = pattern.intensity(times)
        assert np.all(intensity >= 0)
        assert np.all(intensity <= pattern.max_intensity + 1e-9)

    def test_daily_mean_near_one(self):
        pattern = DiurnalPattern(amplitude=0.5, peak_hour=14.0)
        times = np.linspace(0, 86400, 86400, endpoint=False)
        assert pattern.intensity(times).mean() == pytest.approx(1.0, abs=0.01)

    def test_peak_at_peak_hour(self):
        pattern = DiurnalPattern(amplitude=0.5, peak_hour=14.0)
        peak = pattern.intensity(np.array([14 * 3600.0]))[0]
        trough = pattern.intensity(np.array([2 * 3600.0]))[0]
        assert peak > trough

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            DiurnalPattern(amplitude=0.99)
        with pytest.raises(ValueError):
            DiurnalPattern(amplitude=0.1, week_amplitude=0.9)

    def test_draw_within_bounds(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            pattern = DiurnalPattern.draw(rng)
            assert 0 <= pattern.amplitude <= 0.95
            assert 0 <= pattern.peak_hour < 24


class TestOutageModel:
    def test_durations_respect_bounds(self):
        rng = np.random.default_rng(3)
        model = OutageModel(min_duration=100, max_duration=1000)
        durations = model.draw_durations(rng, 500)
        assert np.all(durations >= 100)
        assert np.all(durations <= 1000)

    def test_outage_probability_scales(self):
        rng = np.random.default_rng(4)
        model = OutageModel(outage_probability=0.5)
        full_day = sum(
            bool(model.draw_timeline(rng, 0, 86400).events())
            for _ in range(600)) / 600
        assert full_day == pytest.approx(0.5, abs=0.08)

    def test_half_window_halves_probability(self):
        rng = np.random.default_rng(5)
        model = OutageModel(outage_probability=0.5)
        half_day = sum(
            bool(model.draw_timeline(rng, 0, 43200).events())
            for _ in range(600)) / 600
        assert half_day == pytest.approx(0.25, abs=0.08)

    def test_timeline_within_window(self):
        rng = np.random.default_rng(6)
        model = OutageModel(outage_probability=1.0)
        timeline = model.draw_timeline(rng, 100.0, 1000.0)
        for start, end in timeline.down_intervals:
            assert 100.0 <= start < end <= 1000.0

    def test_short_long_mixture(self):
        rng = np.random.default_rng(7)
        durations = OutageModel().draw_durations(rng, 4000)
        short = np.mean(durations < 660)
        assert 0.2 < short < 0.7

    def test_default_models_calibration(self):
        assert IPV6_OUTAGE_MODEL.outage_probability > \
            IPV4_OUTAGE_MODEL.outage_probability
        assert IPV4_OUTAGE_MODEL.expected_outage_rate() == pytest.approx(0.055)

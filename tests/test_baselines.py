"""Passive baselines: threshold bins, CUSUM, Chocolatine."""

import numpy as np
import pytest

from repro.baselines.bins import ThresholdBinDetector
from repro.baselines.chocolatine import (
    ChocolatineConfig,
    ChocolatineDetector,
    group_by_as,
)
from repro.baselines.cusum import CusumConfig, CusumDetector
from repro.traffic.seasonal import DiurnalPattern
from repro.traffic.sources import (
    modulated_poisson_times,
    poisson_times,
    suppress_intervals,
)

DAY = 86400.0


def dense_block_with_outage(rng, rate=0.1, outage=(40000.0, 50000.0),
                            span=DAY):
    times = poisson_times(rng, rate, 0, span)
    return suppress_intervals(times, [outage]), outage


class TestThresholdBins:
    def test_finds_outage(self):
        rng = np.random.default_rng(0)
        times, outage = dense_block_with_outage(rng)
        timeline = ThresholdBinDetector(bin_seconds=300.0).detect_block(
            times, 0, DAY)
        overlap = [i for i in timeline.down_intervals
                   if i[0] < outage[1] and i[1] > outage[0]]
        assert overlap

    def test_consecutive_debounce(self):
        # one empty bin should not alarm with consecutive_bins=2
        times = np.concatenate([np.arange(0.0, 300.0, 10.0),
                                np.arange(600.0, 1200.0, 10.0)])
        strict = ThresholdBinDetector(300.0, consecutive_bins=2)
        assert strict.detect_block(times, 0, 1200).down_seconds() == 0
        loose = ThresholdBinDetector(300.0, consecutive_bins=1)
        assert loose.detect_block(times, 0, 1200).down_seconds() == 300.0

    def test_sparse_block_drowns_in_false_outages(self):
        rng = np.random.default_rng(1)
        times = poisson_times(rng, 0.001, 0, DAY)  # healthy sparse block
        timeline = ThresholdBinDetector(300.0).detect_block(times, 0, DAY)
        assert timeline.availability() < 0.9  # the naive detector fails

    def test_detect_population(self):
        rng = np.random.default_rng(2)
        per_block = {1: poisson_times(rng, 0.1, 0, DAY)}
        result = ThresholdBinDetector().detect(per_block, 0, DAY)
        assert set(result) == {1}


class TestCusum:
    def test_finds_outage(self):
        rng = np.random.default_rng(3)
        train = poisson_times(rng, 0.1, 0, DAY)
        evaluate, outage = dense_block_with_outage(
            rng, outage=(DAY + 40000.0, DAY + 55000.0), span=0)
        evaluate = suppress_intervals(
            poisson_times(rng, 0.1, DAY, 2 * DAY), [outage])
        detector = CusumDetector()
        detector.train({1: train}, 0, DAY)
        timeline = detector.detect_block(1, evaluate, DAY, 2 * DAY)
        overlap = [i for i in timeline.down_intervals
                   if i[0] < outage[1] and i[1] > outage[0]]
        assert overlap

    def test_healthy_block_quiet(self):
        rng = np.random.default_rng(4)
        detector = CusumDetector()
        detector.train({1: poisson_times(rng, 0.1, 0, DAY)}, 0, DAY)
        timeline = detector.detect_block(
            1, poisson_times(rng, 0.1, DAY, 2 * DAY), DAY, 2 * DAY)
        assert timeline.down_seconds() < 0.02 * DAY

    def test_sparse_blocks_not_trainable(self):
        rng = np.random.default_rng(5)
        detector = CusumDetector()
        detector.train({1: poisson_times(rng, 0.0005, 0, DAY)}, 0, DAY)
        assert detector.trained_keys == []
        assert detector.detect_block(1, np.empty(0), 0, DAY) is None

    def test_detect_population_covers_trained_only(self):
        rng = np.random.default_rng(6)
        detector = CusumDetector()
        detector.train({1: poisson_times(rng, 0.1, 0, DAY),
                        2: poisson_times(rng, 0.0001, 0, DAY)}, 0, DAY)
        result = detector.detect({1: np.empty(0)}, DAY, 2 * DAY)
        assert set(result) == {1}
        # absent traffic for a trained block = one long alarm
        assert result[1].availability() < 0.2


class TestChocolatine:
    def build_as_streams(self, rng, n_blocks=30, rate=0.05,
                         outage=None):
        pattern = DiurnalPattern(amplitude=0.4, peak_hour=15.0)
        streams = []
        for _ in range(n_blocks):
            times = modulated_poisson_times(rng, rate, pattern, 0, 2 * DAY)
            if outage is not None:
                times = suppress_intervals(times, [outage])
            streams.append(times)
        merged = np.concatenate(streams)
        merged.sort()
        return merged

    def test_finds_as_wide_outage(self):
        rng = np.random.default_rng(7)
        outage = (DAY + 30000.0, DAY + 40000.0)
        train_stream = self.build_as_streams(rng)
        eval_stream = self.build_as_streams(rng, outage=outage)
        detector = ChocolatineDetector()
        detector.train({7: train_stream[train_stream < DAY]}, 0, DAY)
        assert detector.trained_ases == [7]
        timeline = detector.detect_as(
            7, eval_stream[eval_stream >= DAY], DAY, 2 * DAY)
        overlap = [i for i in timeline.down_intervals
                   if i[0] < outage[1] and i[1] > outage[0]]
        assert overlap

    def test_tolerates_diurnal_swings(self):
        rng = np.random.default_rng(8)
        stream = self.build_as_streams(rng)
        detector = ChocolatineDetector()
        detector.train({7: stream[stream < DAY]}, 0, DAY)
        timeline = detector.detect_as(7, stream[stream >= DAY], DAY, 2 * DAY)
        assert timeline.down_seconds() < 0.05 * DAY

    def test_quiet_as_not_modelled(self):
        rng = np.random.default_rng(9)
        detector = ChocolatineDetector()
        detector.train({7: poisson_times(rng, 0.001, 0, DAY)}, 0, DAY)
        assert detector.trained_ases == []

    def test_training_needs_full_season(self):
        detector = ChocolatineDetector()
        with pytest.raises(ValueError):
            detector.train({}, 0, 3600.0)

    def test_group_by_as(self):
        per_block = {1: np.array([3.0, 1.0]), 2: np.array([2.0]),
                     3: np.array([5.0])}
        merged = group_by_as(per_block, {1: 10, 2: 10, 3: 20})
        assert list(merged[10]) == [1.0, 2.0, 3.0]
        assert list(merged[20]) == [5.0]

    def test_group_by_as_skips_unmapped(self):
        merged = group_by_as({1: np.array([1.0])}, {})
        assert merged == {}

"""Multi-signal corroboration."""

import numpy as np
import pytest

from repro.core.correlation import (
    corroborate_events,
    fuse_beliefs,
    fuse_timelines,
)
from repro.timeline import OutageEvent, Timeline


class TestFuseBeliefs:
    def test_agreement_sharpens(self):
        a = np.array([0.8, 0.2])
        fused = fuse_beliefs([a, a], prior=0.5)
        assert fused[0] > 0.8
        assert fused[1] < 0.2

    def test_single_source_identity(self):
        a = np.array([0.7, 0.3])
        assert np.allclose(fuse_beliefs([a]), a)

    def test_disagreement_moderates(self):
        up = np.array([0.9])
        down = np.array([0.1])
        fused = fuse_beliefs([up, down], prior=0.5)
        assert 0.3 < fused[0] < 0.7

    def test_requires_input(self):
        with pytest.raises(ValueError):
            fuse_beliefs([])

    def test_output_clamped(self):
        extreme = np.array([1.0 - 1e-9])
        fused = fuse_beliefs([extreme, extreme, extreme])
        assert fused[0] < 1.0


class TestFuseTimelines:
    def make(self, *down):
        return Timeline(0, 100, list(down))

    def test_majority_quorum_default(self):
        fused = fuse_timelines([self.make((10, 30)), self.make((20, 40)),
                                self.make((25, 35))])
        # majority (2 of 3) agree on [20, 35)
        assert fused.down_intervals == [(20.0, 35.0)]

    def test_quorum_one_is_union(self):
        fused = fuse_timelines([self.make((10, 20)), self.make((30, 40))],
                               quorum=1)
        assert fused.down_intervals == [(10.0, 20.0), (30.0, 40.0)]

    def test_full_quorum_is_intersection(self):
        fused = fuse_timelines([self.make((10, 30)), self.make((20, 40))],
                               quorum=2)
        assert fused.down_intervals == [(20.0, 30.0)]

    def test_requires_input(self):
        with pytest.raises(ValueError):
            fuse_timelines([])


class TestCorroborateEvents:
    def test_sibling_witnesses_counted(self):
        # keys 0x100 and 0x101 share a /20 supernet (levels=4).
        events = {0x100: [OutageEvent(10, 20)],
                  0x101: [OutageEvent(12, 25)],
                  0x900: [OutageEvent(10, 20)]}
        results = corroborate_events(events, levels=4, slack=0)
        by_key = {(r.key, r.event.start): r for r in results}
        assert by_key[(0x100, 10)].witnesses == 1
        assert by_key[(0x100, 10)].corroborated
        assert by_key[(0x900, 10)].witnesses == 0

    def test_non_overlapping_not_witnessed(self):
        events = {0x100: [OutageEvent(10, 20)],
                  0x101: [OutageEvent(50, 60)]}
        results = corroborate_events(events, levels=4, slack=0)
        assert all(r.witnesses == 0 for r in results)

    def test_slack_extends_matching(self):
        events = {0x100: [OutageEvent(10, 20)],
                  0x101: [OutageEvent(22, 30)]}
        strict = corroborate_events(events, levels=4, slack=0)
        loose = corroborate_events(events, levels=4, slack=5)
        assert all(r.witnesses == 0 for r in strict)
        assert all(r.witnesses == 1 for r in loose)

    def test_same_block_not_its_own_witness(self):
        events = {0x100: [OutageEvent(10, 20), OutageEvent(12, 22)]}
        results = corroborate_events(events, levels=4, slack=0)
        assert all(r.witnesses == 0 for r in results)

"""Multi-signal corroboration."""

import numpy as np
import pytest

from repro.core.correlation import (
    corroborate_events,
    fuse_beliefs,
    fuse_timelines,
)
from repro.core.health import BlockDataError
from repro.timeline import OutageEvent, Timeline


class TestFuseBeliefs:
    def test_agreement_sharpens(self):
        a = np.array([0.8, 0.2])
        fused = fuse_beliefs([a, a], prior=0.5)
        assert fused[0] > 0.8
        assert fused[1] < 0.2

    def test_single_source_identity(self):
        a = np.array([0.7, 0.3])
        assert np.allclose(fuse_beliefs([a]), a)

    def test_disagreement_moderates(self):
        up = np.array([0.9])
        down = np.array([0.1])
        fused = fuse_beliefs([up, down], prior=0.5)
        assert 0.3 < fused[0] < 0.7

    def test_requires_input(self):
        with pytest.raises(ValueError):
            fuse_beliefs([])

    def test_output_clamped(self):
        extreme = np.array([1.0 - 1e-9])
        fused = fuse_beliefs([extreme, extreme, extreme])
        assert fused[0] < 1.0

    def test_nan_trace_rejected_naming_source_and_sample(self):
        good = np.array([0.8, 0.7, 0.9])
        bad = np.array([0.8, np.nan, 0.9])
        with pytest.raises(BlockDataError) as info:
            fuse_beliefs([good, bad], sources=["dns", "darknet"])
        message = str(info.value)
        assert "'darknet'" in message
        assert "sample 1" in message

    def test_inf_trace_rejected_without_names(self):
        with pytest.raises(BlockDataError) as info:
            fuse_beliefs([np.array([0.8, np.inf])])
        assert "source[0]" in str(info.value)

    def test_length_mismatch_rejected_naming_both_sources(self):
        with pytest.raises(BlockDataError) as info:
            fuse_beliefs([np.full(4, 0.9), np.full(3, 0.9)],
                         sources=["dns", "darknet"])
        message = str(info.value)
        assert "'darknet'" in message and "'dns'" in message
        assert "3" in message and "4" in message

    def test_multidimensional_trace_rejected(self):
        with pytest.raises(BlockDataError, match="must be 1-d"):
            fuse_beliefs([np.full((2, 2), 0.9)])

    def test_non_finite_prior_rejected(self):
        with pytest.raises(ValueError, match="prior"):
            fuse_beliefs([np.array([0.9])], prior=float("nan"))
        with pytest.raises(ValueError, match="prior"):
            fuse_beliefs([np.array([0.9])], prior=1.0)


class TestFuseTimelines:
    def make(self, *down):
        return Timeline(0, 100, list(down))

    def test_majority_quorum_default(self):
        fused = fuse_timelines([self.make((10, 30)), self.make((20, 40)),
                                self.make((25, 35))])
        # majority (2 of 3) agree on [20, 35)
        assert fused.down_intervals == [(20.0, 35.0)]

    def test_quorum_one_is_union(self):
        fused = fuse_timelines([self.make((10, 20)), self.make((30, 40))],
                               quorum=1)
        assert fused.down_intervals == [(10.0, 20.0), (30.0, 40.0)]

    def test_full_quorum_is_intersection(self):
        fused = fuse_timelines([self.make((10, 30)), self.make((20, 40))],
                               quorum=2)
        assert fused.down_intervals == [(20.0, 30.0)]

    def test_requires_input(self):
        with pytest.raises(ValueError):
            fuse_timelines([])

    def test_span_mismatch_rejected_naming_source(self):
        with pytest.raises(BlockDataError) as info:
            fuse_timelines([self.make((10, 20)),
                            Timeline(0, 90, [(10, 20)])],
                           sources=["dns", "darknet"])
        message = str(info.value)
        assert "'darknet'" in message
        assert "shared span" in message

    def test_non_finite_interval_edge_rejected(self):
        # Construction sanitises edges, so model the fault the check
        # exists for: a corrupt deserialisation poking the internals.
        broken = Timeline(0, 100, [(10.0, 20.0)])
        broken._down = [(10.0, float("nan"))]
        with pytest.raises(BlockDataError) as info:
            fuse_timelines([self.make((10, 20)), broken])
        assert "source[1]" in str(info.value)


class TestCorroborateEvents:
    def test_sibling_witnesses_counted(self):
        # keys 0x100 and 0x101 share a /20 supernet (levels=4).
        events = {0x100: [OutageEvent(10, 20)],
                  0x101: [OutageEvent(12, 25)],
                  0x900: [OutageEvent(10, 20)]}
        results = corroborate_events(events, levels=4, slack=0)
        by_key = {(r.key, r.event.start): r for r in results}
        assert by_key[(0x100, 10)].witnesses == 1
        assert by_key[(0x100, 10)].corroborated
        assert by_key[(0x900, 10)].witnesses == 0

    def test_non_overlapping_not_witnessed(self):
        events = {0x100: [OutageEvent(10, 20)],
                  0x101: [OutageEvent(50, 60)]}
        results = corroborate_events(events, levels=4, slack=0)
        assert all(r.witnesses == 0 for r in results)

    def test_slack_extends_matching(self):
        events = {0x100: [OutageEvent(10, 20)],
                  0x101: [OutageEvent(22, 30)]}
        strict = corroborate_events(events, levels=4, slack=0)
        loose = corroborate_events(events, levels=4, slack=5)
        assert all(r.witnesses == 0 for r in strict)
        assert all(r.witnesses == 1 for r in loose)

    def test_same_block_not_its_own_witness(self):
        events = {0x100: [OutageEvent(10, 20), OutageEvent(12, 22)]}
        results = corroborate_events(events, levels=4, slack=0)
        assert all(r.witnesses == 0 for r in results)

"""Seven-day rolling validation experiment."""

import pytest

from repro.experiments import run_week_validation


@pytest.fixture(scope="module")
def week():
    return run_week_validation(scale=0.3)


class TestWeekValidation:
    def test_covers_seven_days(self, week):
        assert [day for day, _ in week.daily] == list(range(1, 8))
        assert len(week.retrained_per_day) == 7

    def test_precision_stable_every_day(self, week):
        assert week.worst_precision > 0.995
        for _, confusion in week.daily:
            assert confusion.recall > 0.99

    def test_daily_tnr_reasonable(self, week):
        for _, confusion in week.daily:
            assert 0.4 < confusion.tnr <= 1.0

    def test_retraining_is_rare(self, week):
        # Stationary traffic: the drift loop must not churn.
        assert sum(week.retrained_per_day) < 20

    def test_text_renders(self, week):
        text = str(week)
        assert "Seven-day" in text
        assert "TNR spread" in text

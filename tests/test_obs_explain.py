"""Decision-provenance log: bounded ring, monotone seq, exact rendering.

The bit-for-bit contract is the point: ``format_explain`` renders the
very floats the belief update consumed (via ``repr``), so re-adding the
per-source log-likelihood rows must land exactly on the printed sum —
the end-to-end half of that contract (a fused detector's recorded
evidence reproducing its posterior) lives in ``test_fusion.py``.
"""

import json

import pytest

from repro.obs.explain import (
    EXPLAIN_FORMAT,
    NULL_EXPLAIN,
    ExplainLog,
    format_explain,
    get_explain,
    read_explain_jsonl,
    resolve_explain,
    set_explain,
)


class TestRing:
    def test_seq_is_monotone_from_one(self):
        log = ExplainLog()
        assert log.record({"event": "onset"}) == 1
        assert log.record({"event": "recovery"}) == 2
        assert log.last_seq == 2

    def test_seq_survives_ring_eviction(self):
        log = ExplainLog(capacity=2)
        for index in range(5):
            log.record({"event": "onset", "index": index})
        assert len(log) == 2
        assert [event["seq"] for event in log.events()] == [4, 5]
        assert log.last_seq == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            ExplainLog(capacity=0)

    def test_record_copies_the_event(self):
        log = ExplainLog()
        event = {"event": "onset"}
        log.record(event)
        assert "seq" not in event

    def test_events_filters_by_block(self):
        log = ExplainLog()
        log.record({"event": "onset", "block": 1})
        log.record({"event": "onset", "block": 2})
        assert [e["block"] for e in log.events(block=2)] == [2]

    def test_events_since_is_strictly_greater(self):
        log = ExplainLog()
        for _ in range(3):
            log.record({"event": "onset"})
        assert [e["seq"] for e in log.events_since(1)] == [2, 3]
        assert log.events_since(3) == []

    def test_extend_resequences_foreign_events(self):
        parent, worker = ExplainLog(), ExplainLog()
        worker.record({"event": "onset", "block": 7})
        worker.record({"event": "recovery", "block": 7})
        parent.record({"event": "onset", "block": 1})
        assert parent.extend(worker.events()) == 2
        assert [e["seq"] for e in parent.events()] == [1, 2, 3]
        # The foreign payloads survive, only the seq is local.
        assert parent.events()[1]["block"] == 7


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        log = ExplainLog()
        log.record({"event": "onset", "block": 3, "time": 5.0})
        path = tmp_path / "explain.jsonl"
        path.write_text(log.to_jsonl())
        events = read_explain_jsonl(str(path))
        assert events == log.events()

    def test_header_line_is_validated(self, tmp_path):
        path = tmp_path / "explain.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match=EXPLAIN_FORMAT):
            read_explain_jsonl(str(path))
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_explain_jsonl(str(path))


class TestNullAndDefault:
    def test_null_is_inert(self):
        assert not NULL_EXPLAIN.enabled
        assert NULL_EXPLAIN.record({"event": "onset"}) == 0
        assert NULL_EXPLAIN.extend([{"event": "onset"}]) == 0
        assert len(NULL_EXPLAIN) == 0
        assert NULL_EXPLAIN.events() == []

    def test_set_and_resolve(self):
        log = ExplainLog()
        previous = set_explain(log)
        try:
            assert get_explain() is log
            assert resolve_explain(None) is log
            other = ExplainLog()
            assert resolve_explain(other) is other
        finally:
            set_explain(previous)

    def test_set_none_resets_to_null(self):
        previous = set_explain(ExplainLog())
        try:
            set_explain(None)
            assert get_explain() is NULL_EXPLAIN
        finally:
            set_explain(previous)


def fused_transition(weighted_llr=None):
    """A fused transition event with awkward floats.

    The llr values are chosen so naive decimal round-tripping would
    drift; ``repr`` rendering must keep the re-added sum exact.
    """
    rows = [
        {"source": "dns", "weight": 0.7, "count": 0,
         "p_empty": 0.1, "noise": 0.05, "llr": -1.6094379124341003,
         "gated": False, "quarantined": False},
        {"source": "darknet", "weight": 0.3, "count": 2,
         "p_empty": 0.30000000000000004, "noise": 0.1,
         "llr": 0.09531017980432486, "gated": False, "quarantined": False},
    ]
    total = sum(row["llr"] for row in rows)
    return {
        "event": "transition", "block": 0xBEEF, "time": 600.0,
        "is_up": False, "belief": 0.04,
        "sources": rows,
        "weighted_llr": weighted_llr if weighted_llr is not None else total,
        "trajectory": [(0.0, 0.9), (300.0, 0.4)],
    }


class TestFormatExplain:
    def test_reladded_llr_sum_matches_bit_for_bit(self):
        text = format_explain([fused_transition()])
        # The sum line must NOT carry the divergence marker: re-adding
        # the printed rows lands exactly on the printed total.
        assert "weighted log-likelihood sum" in text
        assert "re-added" not in text

    def test_divergent_sum_is_called_out(self):
        event = fused_transition(weighted_llr=-1.23)
        text = format_explain([event])
        assert "re-added" in text

    def test_gated_rows_excluded_from_the_sum(self):
        event = fused_transition()
        event["sources"].append({
            "source": "blinded", "weight": 0.0, "count": 0,
            "p_empty": 0.5, "noise": 0.1, "llr": 0.0, "gated": True,
            "quarantined": True})
        text = format_explain([event])
        assert "[gated]" in text
        assert "[quarantined]" in text
        assert "re-added" not in text

    def test_onset_recovery_and_retraction_render(self):
        events = [
            {"event": "onset", "block": 7, "time": 100.0,
             "duration": 300.0},
            {"event": "recovery", "block": 7, "time": 400.0},
            {"event": "retraction", "block": 9, "reason": "poisoned"},
        ]
        text = format_explain(events)
        assert "onset at t=100.0s (duration 300s)" in text
        assert "recovery at t=400.0s" in text
        assert "RETRACTED: poisoned" in text

    def test_block_filter(self):
        events = [{"event": "onset", "block": 1, "time": 1.0},
                  {"event": "onset", "block": 2, "time": 2.0}]
        text = format_explain(events, block=2)
        assert "block 0x2" in text and "block 0x1" not in text
        assert "no explain events" in format_explain(events, block=3)

    def test_trajectory_rendered(self):
        text = format_explain([fused_transition()])
        assert "belief trajectory" in text

"""DNS message wire codec."""

import pytest

from repro.dns.message import (
    Header,
    Message,
    QClass,
    QType,
    Question,
    RCode,
    ResourceRecord,
)
from repro.dns.name import DnsError, Name


class TestHeader:
    def test_flag_roundtrip(self):
        header = Header(txid=0x1234, is_response=True, authoritative=True,
                        recursion_desired=True, rcode=RCode.NXDOMAIN)
        recovered = Header.from_flags(0x1234, header.flags())
        assert recovered == header

    def test_opcode_encoding(self):
        header = Header(opcode=4)
        assert Header.from_flags(0, header.flags()).opcode == 4


class TestMessageCodec:
    def test_query_roundtrip(self):
        query = Message.query(Name.parse("example.com"), QType.AAAA,
                              txid=77, recursion_desired=True)
        decoded = Message.decode(query.encode())
        assert decoded.header.txid == 77
        assert decoded.header.recursion_desired
        assert not decoded.header.is_response
        assert decoded.questions == [
            Question(Name.parse("example.com"), QType.AAAA, QClass.IN)]

    def test_response_with_all_sections(self):
        message = Message(header=Header(txid=1, is_response=True))
        message.questions.append(Question(Name.parse("com"), QType.NS))
        message.answers.append(
            ResourceRecord.ns(Name.parse("com"), Name.parse("a.gtld.net")))
        message.authority.append(
            ResourceRecord.a(Name.parse("a.gtld.net"), 0x01020304))
        message.additional.append(
            ResourceRecord.aaaa(Name.parse("a.gtld.net"), 1 << 64))
        decoded = Message.decode(message.encode())
        assert len(decoded.answers) == 1
        assert len(decoded.authority) == 1
        assert len(decoded.additional) == 1
        assert decoded.authority[0].rdata == b"\x01\x02\x03\x04"
        assert decoded.additional[0].rdata == (1 << 64).to_bytes(16, "big")

    def test_compression_shrinks_message(self):
        message = Message(header=Header())
        message.questions.append(Question(Name.parse("www.example.com"),
                                          QType.A))
        for _ in range(3):
            message.answers.append(
                ResourceRecord.a(Name.parse("www.example.com"), 1))
        wire = message.encode()
        # Without compression each repeated name costs 17 bytes; with
        # pointers, repeats cost 2.
        uncompressed_estimate = 12 + 4 * 17 + 4 + 3 * 14
        assert len(wire) < uncompressed_estimate
        decoded = Message.decode(wire)
        assert all(record.name == Name.parse("www.example.com")
                   for record in decoded.answers)

    def test_decode_rejects_short_header(self):
        with pytest.raises(DnsError):
            Message.decode(b"\x00" * 11)

    def test_decode_rejects_truncated_question(self):
        query = Message.query(Name.parse("example.com"), QType.A, txid=1)
        wire = query.encode()
        with pytest.raises(DnsError):
            Message.decode(wire[:-2])

    def test_decode_rejects_truncated_rdata(self):
        message = Message(header=Header(is_response=True))
        message.answers.append(ResourceRecord.a(Name.parse("x"), 5))
        wire = message.encode()
        with pytest.raises(DnsError):
            Message.decode(wire[:-1])

    def test_ns_rdata_is_wire_name(self):
        record = ResourceRecord.ns(Name.parse("com"), Name.parse("a.nic.com"))
        decoded, _ = Name.decode(record.rdata, 0)
        assert decoded == Name.parse("a.nic.com")

"""Per-block parameter tuning."""

import numpy as np
import pytest

from repro.core.history import BlockHistory
from repro.core.parameters import (
    DEFAULT_BIN_LADDER,
    BlockParameters,
    HomogeneousPlanner,
    ParameterPlanner,
    TuningPolicy,
)

DAY = 86400.0


def history_with_rate(rate, count=None, max_gap=None, burstiness=1.0):
    count = int(rate * DAY) if count is None else count
    median = 1.0 / rate if rate > 0 else DAY
    return BlockHistory(
        mean_rate=rate, observed_count=count, training_seconds=DAY,
        median_gap=median, p95_gap=3 * median,
        max_gap=max_gap if max_gap is not None else 10 * median,
        burstiness=burstiness)


class TestPolicy:
    def test_ladder_must_be_sorted(self):
        with pytest.raises(ValueError):
            TuningPolicy(bin_ladder=(600.0, 300.0))

    def test_ladder_must_be_nonempty(self):
        with pytest.raises(ValueError):
            TuningPolicy(bin_ladder=())

    def test_target_range(self):
        with pytest.raises(ValueError):
            TuningPolicy(target_empty_prob=0.0)

    def test_transition_priors_scale_with_bin(self):
        policy = TuningPolicy()
        down_small, up_small = policy.transition_priors(300)
        down_big, up_big = policy.transition_priors(3600)
        assert down_big > down_small
        assert up_big > up_small
        assert 0 < down_small < up_small < 1

    def test_gap_factor_shrinks_with_samples(self):
        policy = TuningPolicy()
        assert policy.gap_factor_for(100) > policy.gap_factor_for(10000) > 1.0


class TestBlockParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockParameters(bin_seconds=-1, p_empty_up=0.1,
                            noise_nonempty=0.1, prior_down=0.1,
                            prior_up_recovery=0.1)
        with pytest.raises(ValueError):
            BlockParameters(bin_seconds=300, p_empty_up=1.5,
                            noise_nonempty=0.1, prior_down=0.1,
                            prior_up_recovery=0.1)
        with pytest.raises(ValueError):
            BlockParameters(bin_seconds=300, p_empty_up=0.1,
                            noise_nonempty=0.1, prior_down=0.1,
                            prior_up_recovery=0.1,
                            down_threshold=0.9, up_threshold=0.1)

    def test_boundary_probabilities_clamped_inside_unit_interval(self):
        """Exact 0/1 likelihoods are admitted but stored strictly inside
        (0, 1): a p_empty_up of 0 or 1 makes a likelihood term vanish
        and the posterior absorbing, so the constructor guards it."""
        eps = BlockParameters.PROB_EPS
        low = BlockParameters(bin_seconds=300, p_empty_up=0.0,
                              noise_nonempty=0.0, prior_down=0.1,
                              prior_up_recovery=0.1)
        assert low.p_empty_up == eps
        assert low.noise_nonempty == eps
        high = BlockParameters(bin_seconds=300, p_empty_up=1.0,
                               noise_nonempty=1.0, prior_down=0.1,
                               prior_up_recovery=0.1)
        assert high.p_empty_up == 1.0 - eps
        assert high.noise_nonempty == 1.0 - eps
        # In-range values are untouched, including ones near the edge.
        near = BlockParameters(bin_seconds=300, p_empty_up=2 * eps,
                               noise_nonempty=0.5, prior_down=0.1,
                               prior_up_recovery=0.1)
        assert near.p_empty_up == 2 * eps
        assert near.noise_nonempty == 0.5

    def test_degenerate_bins_and_nan_rejected(self):
        for bad_bin in (0.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                BlockParameters(bin_seconds=bad_bin, p_empty_up=0.1,
                                noise_nonempty=0.1, prior_down=0.1,
                                prior_up_recovery=0.1)
        with pytest.raises(ValueError):
            BlockParameters(bin_seconds=300, p_empty_up=float("nan"),
                            noise_nonempty=0.1, prior_down=0.1,
                            prior_up_recovery=0.1)
        with pytest.raises(ValueError):
            BlockParameters(bin_seconds=300, p_empty_up=0.1,
                            noise_nonempty=0.1, prior_down=0.1,
                            prior_up_recovery=0.1,
                            gap_threshold_seconds=float("nan"))
        # +inf gap threshold is the documented "gap detector off" value.
        params = BlockParameters(bin_seconds=300, p_empty_up=0.1,
                                 noise_nonempty=0.1, prior_down=0.1,
                                 prior_up_recovery=0.1,
                                 gap_threshold_seconds=float("inf"))
        assert params.gap_threshold_seconds == float("inf")


class TestPlanner:
    def test_dense_block_gets_finest_bin(self):
        params = ParameterPlanner().plan_block(history_with_rate(0.5))
        assert params.bin_seconds == DEFAULT_BIN_LADDER[0]
        assert params.measurable

    def test_sparse_block_climbs_ladder(self):
        params = ParameterPlanner().plan_block(history_with_rate(0.002))
        assert params.bin_seconds > DEFAULT_BIN_LADDER[0]
        assert params.measurable
        # the chosen bin actually meets the target
        assert params.p_empty_up <= TuningPolicy().target_empty_prob

    def test_finest_workable_bin_chosen(self):
        planner = ParameterPlanner()
        history = history_with_rate(0.002)
        params = planner.plan_block(history)
        ladder = planner.policy.bin_ladder
        index = ladder.index(params.bin_seconds)
        if index > 0:
            finer_p = history.empty_bin_probability(ladder[index - 1])
            assert finer_p > planner.policy.target_empty_prob

    def test_silent_block_unmeasurable(self):
        params = ParameterPlanner().plan_block(history_with_rate(1e-6,
                                                                 count=2))
        assert not params.measurable

    def test_min_training_arrivals(self):
        history = history_with_rate(0.5, count=5)
        params = ParameterPlanner().plan_block(history)
        assert not params.measurable

    def test_burstiness_coarsens_bin(self):
        smooth = ParameterPlanner().plan_block(
            history_with_rate(0.01, burstiness=1.0))
        bursty = ParameterPlanner().plan_block(
            history_with_rate(0.01, burstiness=16.0))
        assert bursty.bin_seconds >= smooth.bin_seconds

    def test_gap_threshold_from_max_gap(self):
        history = history_with_rate(0.01, max_gap=500.0)
        params = ParameterPlanner().plan_block(history)
        policy = TuningPolicy()
        expected = policy.gap_factor_for(history.observed_count - 1) * 500.0
        assert params.gap_threshold_seconds == pytest.approx(expected)

    def test_gap_disabled_for_thin_history(self):
        history = history_with_rate(0.001, count=20)
        params = ParameterPlanner().plan_block(history)
        assert params.gap_threshold_seconds == float("inf")

    def test_gap_floor(self):
        history = history_with_rate(2.0, max_gap=2.0)
        params = ParameterPlanner().plan_block(history)
        assert params.gap_threshold_seconds >= \
            TuningPolicy().gap_floor_seconds

    def test_plan_many(self):
        histories = {1: history_with_rate(0.5), 2: history_with_rate(1e-6,
                                                                     count=1)}
        plan = ParameterPlanner().plan(histories)
        assert plan[1].measurable and not plan[2].measurable


class TestHomogeneousPlanner:
    def test_fixed_bin_everywhere(self):
        planner = HomogeneousPlanner(300.0)
        for rate in (0.5, 0.01, 0.001):
            assert planner.plan_block(
                history_with_rate(rate)).bin_seconds == 300.0

    def test_sparse_blocks_lose_coverage(self):
        planner = HomogeneousPlanner(300.0)
        assert planner.plan_block(history_with_rate(0.5)).measurable
        assert not planner.plan_block(history_with_rate(0.001)).measurable

    def test_coarse_bin_recovers_coverage(self):
        planner = HomogeneousPlanner(7200.0)
        assert planner.plan_block(history_with_rate(0.002)).measurable

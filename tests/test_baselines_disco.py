"""Disco baseline: burst detection over probe disconnections."""

import numpy as np
import pytest

from repro.baselines.disco import DiscoConfig, DiscoDetector
from repro.net.addr import Family
from repro.traffic.internet import (
    FamilyConfig,
    InternetConfig,
    SimulatedInternet,
)
from repro.traffic.outages import OutageModel

DAY = 86400.0


def quiet_internet(seed=51, n_blocks=120):
    """No spontaneous outages; tests inject their own."""
    config = InternetConfig(
        end=2 * DAY, training_seconds=DAY, seed=seed,
        ipv4=FamilyConfig(
            n_blocks=n_blocks,
            outage_model=OutageModel(outage_probability=0.0)))
    return SimulatedInternet.build(config)


def regional_target(internet, detector):
    """The region with the most instrumented probes."""
    from collections import Counter
    regions = Counter(
        p.key >> detector.config.region_levels
        for p in detector.instrumented_profiles(Family.IPV4))
    return regions.most_common(1)[0]


class TestDisco:
    def test_regional_outage_detected_with_fast_reaction(self):
        internet = quiet_internet()
        detector = DiscoDetector(
            internet, DiscoConfig(instrumented_fraction=0.8, min_burst=3))
        region, probes = regional_target(internet, detector)
        if probes < 3:
            pytest.skip("unlucky world: no region with 3 probes")
        outage = (DAY + 30000.0, DAY + 33600.0)
        internet.inject_regional_outage(Family.IPV4, region,
                                        detector.config.region_levels,
                                        *outage)
        timelines = detector.survey(Family.IPV4, DAY, 2 * DAY)
        events = timelines[region].events()
        assert events, "regional outage missed"
        # reaction: the burst is at the exact disconnection instants
        assert events[0].start == pytest.approx(outage[0], abs=1.0)
        assert events[0].end == pytest.approx(outage[1], abs=120.0)

    def test_single_block_outage_invisible(self):
        """The paper's contrast: one block down = one disconnection,
        below any burst threshold."""
        internet = quiet_internet()
        detector = DiscoDetector(
            internet, DiscoConfig(instrumented_fraction=1.0, min_burst=3))
        profile = detector.instrumented_profiles(Family.IPV4)[0]
        internet.inject_regional_outage(
            Family.IPV4, profile.key, 0, DAY + 30000.0, DAY + 40000.0)
        timelines = detector.survey(Family.IPV4, DAY, 2 * DAY)
        region = profile.key >> detector.config.region_levels
        assert timelines[region].events() == []

    def test_churn_alone_does_not_alarm(self):
        internet = quiet_internet()
        detector = DiscoDetector(
            internet, DiscoConfig(instrumented_fraction=1.0, min_burst=3,
                                  churn_rate=1.0 / 7200.0))
        timelines = detector.survey(Family.IPV4, DAY, 2 * DAY)
        false_seconds = sum(t.down_seconds() for t in timelines.values())
        total_seconds = sum(t.span for t in timelines.values())
        assert false_seconds / total_seconds < 0.01

    def test_custom_region_mapping(self):
        internet = quiet_internet()
        as_of_block = {p.key: p.as_id
                       for p in internet.family_profiles(Family.IPV4)}
        detector = DiscoDetector(
            internet, DiscoConfig(instrumented_fraction=1.0))
        timelines = detector.survey(Family.IPV4, DAY, 2 * DAY,
                                    region_of_block=as_of_block)
        assert set(timelines) <= set(as_of_block.values())

    def test_instrumentation_deterministic(self):
        internet = quiet_internet()
        a = DiscoDetector(internet)
        b = DiscoDetector(internet)
        assert [p.key for p in a.instrumented_profiles(Family.IPV4)] == \
            [p.key for p in b.instrumented_profiles(Family.IPV4)]

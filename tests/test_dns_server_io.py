"""Live UDP server: real sockets on loopback."""

import asyncio

import pytest

from repro.dns.message import Message, QType, RCode
from repro.dns.name import Name
from repro.dns.rootserver import RootServer, RootZone
from repro.dns.server_io import UdpRootServer, udp_query
from repro.net.addr import Family


def run(coroutine):
    return asyncio.run(coroutine)


async def with_server(body, tap=None, clock=None):
    """Start a loopback server, run ``body(server, host, port)``, stop."""
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    server = UdpRootServer(RootServer(RootZone.synthetic(["com", "org"])),
                           tap=tap, **kwargs)
    await server.start()
    try:
        host, port = server.bound_address
        return await body(server, host, port)
    finally:
        await server.stop()


class TestUdpServer:
    def test_answers_referral_over_the_wire(self):
        async def body(server, host, port):
            request = Message.query(Name.parse("www.example.com"),
                                    QType.A, txid=77)
            response = await udp_query(host, port, request)
            assert response.header.txid == 77
            assert response.header.is_response
            assert response.authority  # the referral
            return server.datagrams_received

        assert run(with_server(body)) == 1

    def test_nxdomain_over_the_wire(self):
        async def body(server, host, port):
            request = Message.query(Name.parse("x.nosuch"), QType.A, txid=5)
            response = await udp_query(host, port, request)
            assert response.header.rcode == RCode.NXDOMAIN

        run(with_server(body))

    def test_many_concurrent_queries(self):
        async def body(server, host, port):
            requests = [Message.query(Name.parse(f"h{i}.org"), QType.AAAA,
                                      txid=i) for i in range(50)]
            responses = await asyncio.gather(
                *(udp_query(host, port, request) for request in requests))
            assert sorted(r.header.txid for r in responses) == \
                list(range(50))
            assert server.datagrams_received == 50

        run(with_server(body))

    def test_garbage_datagram_dropped(self):
        async def body(server, host, port):
            loop = asyncio.get_running_loop()
            transport, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol, remote_addr=(host, port))
            transport.sendto(b"\x00\x01garbage")
            await asyncio.sleep(0.05)
            transport.close()
            assert server.datagrams_dropped == 1

        run(with_server(body))

    def test_tap_records_observations(self):
        observations = []
        fake_clock = iter(range(100)).__next__

        async def body(server, host, port):
            request = Message.query(Name.parse("a.com"), QType.A, txid=1)
            await udp_query(host, port, request)
            await udp_query(host, port, request)

        run(with_server(body, tap=observations.append,
                        clock=lambda: float(fake_clock())))
        assert len(observations) == 2
        assert observations[0].family is Family.IPV4
        assert observations[0].qtype == QType.A
        assert observations[0].time < observations[1].time
        # loopback source: block key of 127.0.0.1
        assert observations[0].block_key == 0x7F0000

    def test_double_start_rejected(self):
        async def body(server, host, port):
            with pytest.raises(RuntimeError):
                await server.start()

        run(with_server(body))

    def test_bound_address_requires_start(self):
        server = UdpRootServer(RootServer(RootZone.synthetic(["com"])))
        with pytest.raises(RuntimeError):
            server.bound_address


class TestResilience:
    def test_malformed_datagrams_counted_distinctly(self):
        async def body(server, host, port):
            loop = asyncio.get_running_loop()
            transport, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol, remote_addr=(host, port))
            transport.sendto(b"\x00\x01garbage")
            transport.sendto(b"\xff")
            await asyncio.sleep(0.05)
            transport.close()
            stats = server.stats()
            assert stats["malformed_datagrams"] == 2
            assert stats["datagrams_dropped"] == 2
            assert stats["datagrams_received"] == 2
            assert stats["last_malformed_error"]

        run(with_server(body))

    def test_query_timeout_raises_after_bounded_retries(self):
        async def body():
            # A bound socket nobody answers from: every attempt times out.
            loop = asyncio.get_running_loop()
            transport, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol, local_addr=("127.0.0.1", 0))
            host, port = transport.get_extra_info("sockname")[:2]
            try:
                request = Message.query(Name.parse("a.com"), QType.A, txid=9)
                with pytest.raises(asyncio.TimeoutError) as info:
                    await udp_query(host, port, request,
                                    timeout=0.05, retries=2, backoff=1.0)
                assert "3 attempts" in str(info.value)
            finally:
                transport.close()

        run(body())

    def test_retry_recovers_from_single_lost_datagram(self):
        async def body(server, host, port):
            # Drop the first datagram server-side; the retransmit wins.
            original = server.handle_datagram
            dropped = []

            def flaky(data, peer):
                if not dropped:
                    dropped.append(True)
                    return None
                return original(data, peer)

            server.handle_datagram = flaky
            request = Message.query(Name.parse("a.com"), QType.A, txid=8)
            response = await udp_query(host, port, request,
                                       timeout=0.1, retries=2)
            assert response.header.txid == 8
            assert len(dropped) == 1

        run(with_server(body))

    def test_retry_parameters_validated(self):
        async def body(server, host, port):
            request = Message.query(Name.parse("a.com"), QType.A, txid=2)
            with pytest.raises(ValueError):
                await udp_query(host, port, request, retries=-1)
            with pytest.raises(ValueError):
                await udp_query(host, port, request, backoff=0.5)

        run(with_server(body))

"""Block arithmetic and address-to-block mapping."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import Address, AddressError, Family
from repro.net.blocks import (
    Block,
    block_of,
    block_of_value,
    supernet_key,
    vector_block_keys,
)


class TestBlockParse:
    def test_ipv4(self):
        block = Block.parse("192.0.2.0/24")
        assert block.family is Family.IPV4
        assert block.prefix == 0xC00002
        assert block.prefix_len == 24
        assert str(block) == "192.0.2.0/24"

    def test_ipv6(self):
        block = Block.parse("2001:db8::/48")
        assert block.prefix == 0x20010DB80000
        assert block.prefix_len == 48

    def test_rejects_host_bits(self):
        with pytest.raises(AddressError):
            Block.parse("192.0.2.1/24")

    def test_rejects_missing_length(self):
        with pytest.raises(AddressError):
            Block.parse("192.0.2.0")

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            Block.parse("192.0.2.0/33")

    def test_prefix_wider_than_length(self):
        with pytest.raises(AddressError):
            Block(Family.IPV4, 0x100, 8)


class TestBlockOps:
    def test_num_addresses(self):
        assert Block.parse("10.0.0.0/24").num_addresses == 256
        assert Block.parse("10.0.0.0/30").num_addresses == 4

    def test_contains(self):
        block = Block.parse("192.0.2.0/24")
        assert block.contains(Address.parse("192.0.2.200"))
        assert not block.contains(Address.parse("192.0.3.0"))
        assert not block.contains(Address.parse("::1"))

    def test_supernet(self):
        block = Block.parse("192.0.2.0/24")
        assert str(block.supernet(20)) == "192.0.0.0/20"
        with pytest.raises(AddressError):
            block.supernet(25)

    def test_subnets(self):
        children = list(Block.parse("192.0.2.0/24").subnets(26))
        assert [str(c) for c in children] == [
            "192.0.2.0/26", "192.0.2.64/26",
            "192.0.2.128/26", "192.0.2.192/26"]

    def test_subnets_refuses_huge(self):
        with pytest.raises(AddressError):
            list(Block.parse("::/0").subnets(48))

    def test_address_at(self):
        block = Block.parse("192.0.2.0/24")
        assert str(block.address_at(7)) == "192.0.2.7"
        with pytest.raises(AddressError):
            block.address_at(256)

    def test_sample_addresses_distinct(self, rng):
        block = Block.parse("192.0.2.0/24")
        sampled = block.sample_addresses(50, rng)
        assert len({a.value for a in sampled}) == 50
        assert all(block.contains(a) for a in sampled)

    def test_sample_addresses_ipv6_huge_span(self, rng):
        block = Block.parse("2001:db8::/48")
        sampled = block.sample_addresses(10, rng)
        assert len({a.value for a in sampled}) == 10
        assert all(block.contains(a) for a in sampled)

    def test_sample_too_many(self, rng):
        with pytest.raises(AddressError):
            Block.parse("10.0.0.0/30").sample_addresses(5, rng)


class TestBlockOf:
    def test_default_granularity(self):
        assert block_of(Address.parse("192.0.2.77")).prefix_len == 24
        assert block_of(Address.parse("2001:db8::1")).prefix_len == 48

    def test_explicit_granularity(self):
        assert block_of(Address.parse("192.0.2.77"), 16).prefix_len == 16

    def test_value_fast_path_matches(self):
        address = Address.parse("203.0.113.9")
        assert block_of_value(Family.IPV4, address.value) == \
            block_of(address).prefix

    def test_vector_keys_ipv4(self):
        values = np.array([0xC0000201, 0xC0000301], dtype=np.uint64)
        keys = vector_block_keys(Family.IPV4, values)
        assert list(keys) == [0xC00002, 0xC00003]

    def test_vector_keys_ipv6(self):
        values = np.array([0x20010DB8000000000000000000000001], dtype=object)
        keys = vector_block_keys(Family.IPV6, values)
        assert keys[0] == 0x20010DB80000

    def test_supernet_key(self):
        assert supernet_key(0xC00002, 4) == 0xC0000
        assert supernet_key(0xC00002, 8) == 0xC000


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_block_always_contains_its_address(value):
    address = Address(Family.IPV4, value)
    assert block_of(address).contains(address)


@given(st.integers(min_value=0, max_value=(1 << 24) - 1),
       st.integers(min_value=1, max_value=20))
def test_supernet_contains_subnet(prefix, levels):
    block = Block(Family.IPV4, prefix, 24)
    parent = block.supernet(24 - levels)
    assert parent.contains(block.network_address)
    assert parent.prefix == supernet_key(prefix, levels)

"""Unit tests for the span tracer."""

import threading

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    SpanTracer,
    get_tracer,
    resolve_tracer,
    set_tracer,
)


class TestSpanRecording:
    def test_nested_spans_record_depth_and_order(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = {span.name: span for span in tracer.spans}
        assert names["outer"].depth == 0
        assert names["inner"].depth == 1
        assert names["outer"].start <= names["inner"].start
        assert names["inner"].end <= names["outer"].end

    def test_span_survives_exceptions(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert [span.name for span in tracer.spans] == ["failing"]

    def test_span_args_recorded(self):
        tracer = SpanTracer()
        with tracer.span("tune", family="ipv4", blocks=12):
            pass
        assert tracer.spans[0].args == {"family": "ipv4", "blocks": 12}

    def test_threads_get_independent_stacks(self):
        tracer = SpanTracer()

        def work():
            with tracer.span("worker"):
                pass

        thread = threading.Thread(target=work)
        with tracer.span("main"):
            thread.start()
            thread.join()
        depths = {span.name: span.depth for span in tracer.spans}
        # The worker's span is top-level in its own thread, not nested
        # under the main thread's open span.
        assert depths == {"worker": 0, "main": 0}


class TestChromeTrace:
    def test_complete_events_in_microseconds(self):
        tracer = SpanTracer()
        with tracer.span("detect", family="ipv4"):
            pass
        document = tracer.chrome_trace()
        assert document["displayTimeUnit"] == "ms"
        (event,) = document["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "detect"
        assert event["dur"] >= 0
        # Span args plus the distributed-trace stamps that make a
        # merged multi-process file self-describing.
        assert event["args"] == {"family": "ipv4",
                                 "trace_id": tracer.trace_id,
                                 "span_id": 1}

    def test_events_sorted_parents_first(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [event["name"]
                 for event in tracer.chrome_trace()["traceEvents"]]
        assert names == ["outer", "inner"]

    def test_non_json_args_stringified(self):
        tracer = SpanTracer()
        with tracer.span("s", thing=object()):
            pass
        (event,) = tracer.chrome_trace()["traceEvents"]
        assert isinstance(event["args"]["thing"], str)

    def test_to_chrome_json_parses(self):
        import json

        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        assert json.loads(tracer.to_chrome_json())["traceEvents"]


class TestStageTable:
    def test_aggregates_by_name_sorted_by_total(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("fast"):
                pass
        with tracer.span("slow"):
            for _ in range(50000):
                pass
        rows = tracer.stage_table()
        assert {row["name"] for row in rows} == {"fast", "slow"}
        by_name = {row["name"]: row for row in rows}
        assert by_name["fast"]["count"] == 3
        assert by_name["slow"]["count"] == 1
        assert rows == sorted(rows, key=lambda r: -r["total_seconds"])
        for row in rows:
            assert row["mean_seconds"] == pytest.approx(
                row["total_seconds"] / row["count"])

    def test_format_stage_table(self):
        tracer = SpanTracer()
        with tracer.span("train"):
            pass
        text = tracer.format_stage_table()
        assert "train" in text and "count" in text
        assert SpanTracer().format_stage_table() == "(no spans recorded)"


class TestNullTracer:
    def test_records_nothing(self):
        with NULL_TRACER.span("ignored", key=1):
            pass
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.chrome_trace()["traceEvents"] == []
        assert NULL_TRACER.stage_table() == []
        assert NULL_TRACER.enabled is False


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_resolve(self):
        tracer = SpanTracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
            assert resolve_tracer(None) is tracer
            other = SpanTracer()
            assert resolve_tracer(other) is other
        finally:
            set_tracer(previous)


class TestDistributedTrace:
    """Cross-process propagation: context, export/import, one trace id."""

    def test_root_tracer_mints_a_trace_id(self):
        assert SpanTracer().trace_id
        assert SpanTracer().trace_id != SpanTracer().trace_id

    def test_context_names_the_open_dispatching_span(self):
        tracer = SpanTracer()
        with tracer.span("dispatch"):
            context = tracer.context()
        assert context["trace_id"] == tracer.trace_id
        # Ids are allocated at span *start*, so the still-open dispatch
        # span is addressable as the cross-process parent.
        assert context["parent_span_id"] == tracer.spans[0].span_id

    def test_context_falls_back_to_the_last_finished_span(self):
        tracer = SpanTracer()
        with tracer.span("setup"):
            pass
        assert (tracer.context()["parent_span_id"]
                == tracer.spans[0].span_id)

    def test_from_context_joins_the_parent_trace(self):
        parent = SpanTracer()
        with parent.span("dispatch"):
            child = SpanTracer.from_context(parent.context())
        assert child.trace_id == parent.trace_id
        assert child.parent_span_id == parent.spans[0].span_id

    def test_from_empty_context_is_a_fresh_root(self):
        tracer = SpanTracer.from_context(None)
        assert tracer.trace_id and tracer.parent_span_id == 0

    def test_export_import_merges_under_one_trace_id(self):
        parent = SpanTracer()
        with parent.span("dispatch"):
            worker = SpanTracer.from_context(parent.context())
        with worker.span("shard"):
            pass
        rows = worker.export_spans()
        assert rows[0]["trace_id"] == parent.trace_id
        assert parent.import_spans(rows) == 1
        document = parent.chrome_trace()
        assert document["metadata"]["trace_id"] == parent.trace_id
        events = {event["name"]: event for event in
                  document["traceEvents"]}
        # Same trace: the imported span carries no foreign-trace marker,
        # and its args name the dispatching span as its parent.
        assert "trace_id" not in events["shard"]["args"] or \
            events["shard"]["args"]["trace_id"] == parent.trace_id
        assert (events["shard"]["args"]["parent_span_id"]
                == events["dispatch"]["args"]["span_id"])

    def test_imported_spans_keep_their_process_lane(self):
        parent = SpanTracer()
        with parent.span("local"):
            pass
        rows = [{"name": "remote", "wall_start": parent._wall_epoch,
                 "wall_end": parent._wall_epoch + 0.5, "thread_id": 1,
                 "depth": 0, "args": {}, "span_id": 7, "pid": 4242,
                 "trace_id": parent.trace_id, "parent_span_id": 0}]
        parent.import_spans(rows)
        lanes = {event["name"]: event["pid"]
                 for event in parent.chrome_trace()["traceEvents"]}
        assert lanes["remote"] == 4242
        assert lanes["local"] != 4242

    def test_wall_clock_rebase_keeps_ordering(self):
        parent = SpanTracer()
        with parent.span("first"):
            pass
        worker = SpanTracer.from_context(parent.context())
        with worker.span("second"):
            pass
        parent.import_spans(worker.export_spans())
        spans = {span.name: span for span in parent.spans}
        assert spans["first"].start <= spans["second"].start

    def test_foreign_trace_id_kept_visible(self):
        parent = SpanTracer()
        stranger = SpanTracer()
        with stranger.span("odd"):
            pass
        parent.import_spans(stranger.export_spans())
        imported = parent.spans[-1]
        assert imported.args["trace_id"] == stranger.trace_id

    def test_import_none_or_empty_is_a_noop(self):
        tracer = SpanTracer()
        assert tracer.import_spans(None) == 0
        assert tracer.import_spans([]) == 0
        assert tracer.spans == []

    def test_null_tracer_context_is_empty(self):
        assert NULL_TRACER.context() == {}
        assert NULL_TRACER.import_spans([{"name": "x"}]) == 0

"""Unit tests for the span tracer."""

import threading

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    SpanTracer,
    get_tracer,
    resolve_tracer,
    set_tracer,
)


class TestSpanRecording:
    def test_nested_spans_record_depth_and_order(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = {span.name: span for span in tracer.spans}
        assert names["outer"].depth == 0
        assert names["inner"].depth == 1
        assert names["outer"].start <= names["inner"].start
        assert names["inner"].end <= names["outer"].end

    def test_span_survives_exceptions(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert [span.name for span in tracer.spans] == ["failing"]

    def test_span_args_recorded(self):
        tracer = SpanTracer()
        with tracer.span("tune", family="ipv4", blocks=12):
            pass
        assert tracer.spans[0].args == {"family": "ipv4", "blocks": 12}

    def test_threads_get_independent_stacks(self):
        tracer = SpanTracer()

        def work():
            with tracer.span("worker"):
                pass

        thread = threading.Thread(target=work)
        with tracer.span("main"):
            thread.start()
            thread.join()
        depths = {span.name: span.depth for span in tracer.spans}
        # The worker's span is top-level in its own thread, not nested
        # under the main thread's open span.
        assert depths == {"worker": 0, "main": 0}


class TestChromeTrace:
    def test_complete_events_in_microseconds(self):
        tracer = SpanTracer()
        with tracer.span("detect", family="ipv4"):
            pass
        document = tracer.chrome_trace()
        assert document["displayTimeUnit"] == "ms"
        (event,) = document["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "detect"
        assert event["dur"] >= 0
        assert event["args"] == {"family": "ipv4"}

    def test_events_sorted_parents_first(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [event["name"]
                 for event in tracer.chrome_trace()["traceEvents"]]
        assert names == ["outer", "inner"]

    def test_non_json_args_stringified(self):
        tracer = SpanTracer()
        with tracer.span("s", thing=object()):
            pass
        (event,) = tracer.chrome_trace()["traceEvents"]
        assert isinstance(event["args"]["thing"], str)

    def test_to_chrome_json_parses(self):
        import json

        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        assert json.loads(tracer.to_chrome_json())["traceEvents"]


class TestStageTable:
    def test_aggregates_by_name_sorted_by_total(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("fast"):
                pass
        with tracer.span("slow"):
            for _ in range(50000):
                pass
        rows = tracer.stage_table()
        assert {row["name"] for row in rows} == {"fast", "slow"}
        by_name = {row["name"]: row for row in rows}
        assert by_name["fast"]["count"] == 3
        assert by_name["slow"]["count"] == 1
        assert rows == sorted(rows, key=lambda r: -r["total_seconds"])
        for row in rows:
            assert row["mean_seconds"] == pytest.approx(
                row["total_seconds"] / row["count"])

    def test_format_stage_table(self):
        tracer = SpanTracer()
        with tracer.span("train"):
            pass
        text = tracer.format_stage_table()
        assert "train" in text and "count" in text
        assert SpanTracer().format_stage_table() == "(no spans recorded)"


class TestNullTracer:
    def test_records_nothing(self):
        with NULL_TRACER.span("ignored", key=1):
            pass
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.chrome_trace()["traceEvents"] == []
        assert NULL_TRACER.stage_table() == []
        assert NULL_TRACER.enabled is False


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_resolve(self):
        tracer = SpanTracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
            assert resolve_tracer(None) is tracer
            other = SpanTracer()
            assert resolve_tracer(other) is other
        finally:
            set_tracer(previous)

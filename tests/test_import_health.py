"""Dependency hygiene: the package must compile, import, and stay acyclic.

The resilient-ingest layers (telescope, dns, testing) sit *below* the
detection core: core consumes observation streams, never the other way
around.  An accidental upward import would create a cycle that only
explodes at import time in some orders — exactly the class of failure
a live monitor must not discover in production.  This module is the
smoke check: ``compileall`` over ``src``, a module-level import graph
extracted from the AST, cycle detection, and the layering contract for
the ingest modules.
"""

from __future__ import annotations

import ast
import compileall
import sys
from pathlib import Path
from typing import Dict, List, Set

SRC = Path(__file__).resolve().parent.parent / "src"
PACKAGE = "repro"

#: ingest-side packages that must never import from analysis-side ones
INGEST_PREFIXES = ("repro.net", "repro.telescope", "repro.dns",
                   "repro.testing")
ANALYSIS_PREFIXES = ("repro.core", "repro.eval", "repro.experiments",
                     "repro.baselines", "repro.traffic")


def iter_modules() -> Dict[str, Path]:
    modules: Dict[str, Path] = {}
    for path in sorted((SRC / PACKAGE).rglob("*.py")):
        relative = path.relative_to(SRC).with_suffix("")
        parts = list(relative.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules[".".join(parts)] = path
    return modules


def module_level_imports(tree: ast.Module, module: str,
                         known: Set[str]) -> Set[str]:
    """Intra-package imports at module level (function bodies excluded)."""
    found: Set[str] = set()

    def resolve(name: str) -> None:
        # Credit the import to the longest known module prefix.
        parts = name.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in known:
                found.add(candidate)
                return

    def visit(nodes) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # lazy imports are allowed to cross layers
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith(PACKAGE):
                        resolve(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = module.split(".")
                    base = base[:len(base) - node.level + 1]
                    prefix = ".".join(base[:-1] if node.module is None
                                      else base[:-1] + [node.module])
                    # Relative import of a package: "from . import x".
                    if node.module is None:
                        prefix = ".".join(base[:-1]) or PACKAGE
                else:
                    prefix = node.module or ""
                if not prefix.startswith(PACKAGE):
                    continue
                for alias in node.names:
                    resolve(f"{prefix}.{alias.name}")
                resolve(prefix)
            elif isinstance(node, (ast.If, ast.Try)):
                for field in ("body", "orelse", "finalbody", "handlers"):
                    children = getattr(node, field, [])
                    for child in children:
                        if isinstance(child, ast.ExceptHandler):
                            visit(child.body)
                        else:
                            visit([child])
    visit(tree.body)
    found.discard(module)
    return found


def build_graph() -> Dict[str, Set[str]]:
    modules = iter_modules()
    known = set(modules)
    graph: Dict[str, Set[str]] = {}
    for module, path in modules.items():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        graph[module] = module_level_imports(tree, module, known)
    return graph


class TestImportHealth:
    def test_package_compiles_cleanly(self):
        assert compileall.compile_dir(str(SRC), quiet=2, force=False), \
            "compileall found syntax errors under src/"

    def test_every_module_imports(self):
        import importlib

        for module in iter_modules():
            assert importlib.import_module(module) is sys.modules[module]

    def test_no_module_level_import_cycles(self):
        graph = build_graph()
        WHITE, GRAY, BLACK = 0, 1, 2
        state = {module: WHITE for module in graph}
        stack: List[str] = []

        def dfs(module: str) -> None:
            state[module] = GRAY
            stack.append(module)
            for dep in sorted(graph.get(module, ())):
                if state.get(dep, BLACK) == GRAY:
                    cycle = stack[stack.index(dep):] + [dep]
                    raise AssertionError(
                        "import cycle: " + " -> ".join(cycle))
                if state.get(dep) == WHITE:
                    dfs(dep)
            stack.pop()
            state[module] = BLACK

        for module in sorted(graph):
            if state[module] == WHITE:
                dfs(module)

    def test_ingest_modules_do_not_import_analysis_layers(self):
        graph = build_graph()
        violations = []
        for module, deps in graph.items():
            if not module.startswith(INGEST_PREFIXES):
                continue
            for dep in deps:
                if dep.startswith(ANALYSIS_PREFIXES):
                    violations.append(f"{module} -> {dep}")
        assert violations == [], (
            "ingest modules must stay below the analysis layers: "
            + ", ".join(sorted(violations)))

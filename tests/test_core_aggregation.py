"""Spatial aggregation of sparse sibling blocks."""

import numpy as np
import pytest

from repro.core.aggregation import (
    merge_streams_for_plan,
    plan_aggregation,
)
from repro.net.addr import Family


class TestPlan:
    def test_groups_by_supernet(self):
        # /24 keys sharing the top 20 bits differ only in low 4 bits.
        keys = [0xC00020, 0xC00021, 0xC00022, 0xA00010]
        plan = plan_aggregation(Family.IPV4, keys, levels=4)
        assert plan.super_prefix_len == 20
        assert plan.groups == {0xC0002: [0xC00020, 0xC00021, 0xC00022]}

    def test_min_members_filters_singletons(self):
        keys = [0xC00020, 0xA00010]
        plan = plan_aggregation(Family.IPV4, keys, levels=4, min_members=2)
        assert plan.groups == {}
        plan_loose = plan_aggregation(Family.IPV4, keys, levels=4,
                                      min_members=1)
        assert len(plan_loose.groups) == 2

    def test_ipv6_default_prefix(self):
        keys = [0x20010DB80000, 0x20010DB80001]
        plan = plan_aggregation(Family.IPV6, keys, levels=4)
        assert plan.child_prefix_len == 48
        assert plan.super_prefix_len == 44
        assert plan.groups == {0x20010DB8000: sorted(keys)}

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            plan_aggregation(Family.IPV4, [1], levels=0)
        with pytest.raises(ValueError):
            plan_aggregation(Family.IPV4, [1], levels=24)

    def test_covered_children(self):
        keys = [0xC00020, 0xC00021]
        plan = plan_aggregation(Family.IPV4, keys, levels=4)
        assert plan.covered_children() == 2
        assert plan.children_of(0xC0002) == keys
        assert plan.children_of(0xBEEF) == []


class TestMerge:
    def test_streams_merged_sorted(self):
        keys = [0xC00020, 0xC00021]
        plan = plan_aggregation(Family.IPV4, keys, levels=4)
        per_block = {0xC00020: np.array([5.0, 20.0]),
                     0xC00021: np.array([1.0, 10.0, 30.0])}
        merged = merge_streams_for_plan(plan, per_block)
        assert list(merged[0xC0002]) == [1.0, 5.0, 10.0, 20.0, 30.0]

    def test_missing_children_tolerated(self):
        keys = [0xC00020, 0xC00021]
        plan = plan_aggregation(Family.IPV4, keys, levels=4)
        merged = merge_streams_for_plan(plan, {0xC00020: np.array([2.0])})
        assert list(merged[0xC0002]) == [2.0]

"""End-to-end pipeline: train -> tune -> detect -> aggregate."""

import numpy as np
import pytest

from repro.core.pipeline import PassiveOutagePipeline
from repro.net.addr import Family
from repro.telescope.records import ObservationBatch
from repro.traffic.sources import poisson_times, suppress_intervals

DAY = 86400.0


def build_world(seed=0):
    """A small hand-built world: dense blocks, sparse siblings, an outage."""
    rng = np.random.default_rng(seed)
    per_block = {}
    # dense block with a known outage on day 2
    outage = (DAY + 40000.0, DAY + 46000.0)
    dense = poisson_times(rng, 0.1, 0, 2 * DAY)
    per_block[0xAA0001] = suppress_intervals(dense, [outage])
    # healthy dense block
    per_block[0xAA0002] = poisson_times(rng, 0.1, 0, 2 * DAY)
    # four very sparse siblings under one /20, all dying together on day 2
    sibling_outage = (DAY + 20000.0, DAY + 80000.0)
    for low in range(4):
        key = 0xBB0010 + low
        times = poisson_times(rng, 0.0004, 0, 2 * DAY)
        per_block[key] = suppress_intervals(times, [sibling_outage])
    return per_block, outage, sibling_outage


class TestPipeline:
    def test_detects_known_outage(self):
        per_block, outage, _ = build_world()
        pipeline = PassiveOutagePipeline()
        train = {k: t[t < DAY] for k, t in per_block.items()}
        evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0, DAY)
        result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        events = result.blocks[0xAA0001].timeline.events(300.0)
        assert len(events) == 1
        assert events[0].start == pytest.approx(outage[0], abs=120.0)
        assert events[0].end == pytest.approx(outage[1], abs=120.0)

    def test_healthy_block_stays_clean(self):
        per_block, _, _ = build_world()
        pipeline = PassiveOutagePipeline()
        train = {k: t[t < DAY] for k, t in per_block.items()}
        evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0, DAY)
        result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        assert result.blocks[0xAA0002].timeline.events(300.0) == []

    def test_sparse_siblings_aggregate(self):
        per_block, _, sibling_outage = build_world()
        pipeline = PassiveOutagePipeline(aggregation_levels=4)
        train = {k: t[t < DAY] for k, t in per_block.items()}
        evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0, DAY)
        # siblings individually unmeasurable
        assert set(model.unmeasurable_keys) >= {0xBB0010, 0xBB0011}
        result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        assert result.aggregation_plan is not None
        super_key = 0xBB001
        assert super_key in result.aggregated
        events = result.aggregated[super_key].timeline.events(600.0)
        matching = [e for e in events
                    if e.start < sibling_outage[1]
                    and e.end > sibling_outage[0]]
        assert matching, "aggregated supernet missed the joint outage"

    def test_aggregation_disabled(self):
        per_block, _, _ = build_world()
        pipeline = PassiveOutagePipeline(aggregation_levels=0)
        train = {k: t[t < DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0, DAY)
        result = pipeline.detect(model, per_block, DAY, 2 * DAY)
        assert result.aggregated == {}

    def test_coverage_accounting(self):
        per_block, _, _ = build_world()
        pipeline = PassiveOutagePipeline()
        model = pipeline.train(
            Family.IPV4, {k: t[t < DAY] for k, t in per_block.items()},
            0, DAY)
        assert 0 < model.coverage() < 1
        assert len(model.measurable_keys) + len(model.unmeasurable_keys) == \
            len(per_block)

    def test_homogeneous_mode(self):
        per_block, _, _ = build_world()
        pipeline = PassiveOutagePipeline(homogeneous_bin=300.0,
                                         aggregation_levels=0)
        model = pipeline.train(
            Family.IPV4, {k: t[t < DAY] for k, t in per_block.items()},
            0, DAY)
        assert all(p.bin_seconds == 300.0 for p in model.parameters.values())
        # sparse blocks lose coverage under the fixed fine bin
        assert model.coverage() < 1.0

    def test_batch_interface(self):
        per_block, outage, _ = build_world()
        times = np.concatenate(list(per_block.values()))
        keys = np.concatenate([
            np.full(t.size, k, dtype=np.uint64)
            for k, t in per_block.items()])
        order = np.argsort(times)
        batch = ObservationBatch(Family.IPV4, times[order], keys[order])
        pipeline = PassiveOutagePipeline()
        model = pipeline.train_from_batch(batch.time_slice(0, DAY), 0, DAY)
        result = pipeline.detect_from_batch(
            model, batch.time_slice(DAY, 2 * DAY), DAY, 2 * DAY)
        assert result.blocks[0xAA0001].timeline.events(300.0)

    def test_result_summaries(self):
        per_block, _, _ = build_world()
        pipeline = PassiveOutagePipeline()
        train = {k: t[t < DAY] for k, t in per_block.items()}
        evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0, DAY)
        result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
        assert 0xAA0001 in result.blocks_with_outages(300.0)
        assert result.total_outage_seconds() > 0
        assert result.total_outage_seconds(min_duration=1e9) == 0
        assert result.measurable_count == len(result.blocks)

#!/usr/bin/env python3
"""Regenerate every table and figure from the paper in one run.

Equivalent to ``repro-outage report``.  At the default scale (0.5) this
takes under a minute; pass ``--scale 1.0`` for the calibrated full-size
populations recorded in EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py [--scale 0.5]
"""

import argparse
import time

from repro.experiments import (
    run_baseline_comparison,
    run_darknet_fusion,
    run_figure1,
    run_figure2a,
    run_figure2b,
    run_sensitivity,
    run_short_uplift,
    run_table1,
    run_table2,
    run_table3,
    run_tuning_ablation,
)

ARTEFACTS = (
    ("Table 1 — long outages vs Trinocular", run_table1),
    ("Table 2 — long outages, dense blocks", run_table2),
    ("Table 3 — short outages vs RIPE (events)", run_table3),
    ("Figure 1 — precision/coverage trade-off", run_figure1),
    ("Figure 2a — IPv4 vs IPv6 outage rate", run_figure2a),
    ("Figure 2b — coverage vs prior systems", run_figure2b),
    ("Extra — short-outage uplift", run_short_uplift),
    ("Extra — per-block tuning ablation", run_tuning_ablation),
    ("Extra — baseline comparison", run_baseline_comparison),
    ("Extra — darknet fusion (future work)", run_darknet_fusion),
    ("Extra — tuning-target sensitivity", run_sensitivity),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="population scale (1.0 = recorded runs)")
    args = parser.parse_args()

    for title, runner in ARTEFACTS:
        started = time.perf_counter()
        result = runner(scale=args.scale)
        elapsed = time.perf_counter() - started
        print("=" * 72)
        print(f"{title}   [{elapsed:.1f}s @ scale {args.scale}]")
        print("-" * 72)
        print(result)
        print()


if __name__ == "__main__":
    main()

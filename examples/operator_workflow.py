#!/usr/bin/env python3
"""A day in the life of a deployed detector: the operator workflow.

Beyond the paper's evaluation, a production deployment needs the glue
this example walks through:

1. **anonymize** the raw capture (prefix-preserving, so blocks survive)
   before it ever leaves the collection host;
2. **detect** with a previously saved model;
3. roll per-block events up into **incidents** (regional vs isolated);
4. **audit drift** and retrain only the blocks whose traffic moved,
   saving the refreshed model for tomorrow.

Run:  python examples/operator_workflow.py
"""

import io
from collections import Counter

from repro.core import (
    PassiveOutagePipeline,
    audit_drift,
    load_model,
    refresh_model,
    save_model,
)
from repro.eval import format_incident_report, group_incidents
from repro.net import Family
from repro.telescope import PrefixPreservingAnonymizer
from repro.telescope.aggregate import per_block_times
from repro.telescope.records import Observation, ObservationBatch
from repro.traffic import (
    FamilyConfig,
    InternetConfig,
    OutageModel,
    SimulatedInternet,
)

DAY = 86400.0


def main() -> None:
    # The world: day one for the saved model, day two is "today".
    # A regional event takes out part of one /12 this afternoon.
    internet = SimulatedInternet.build(InternetConfig(
        end=2 * DAY, training_seconds=DAY, seed=35,
        ipv4=FamilyConfig(n_blocks=300,
                          outage_model=OutageModel(outage_probability=0.15))))
    region = Counter(p.key >> 12 for p in internet.family_profiles(
        Family.IPV4) if p.mean_rate > 0.005).most_common(1)[0][0]
    hit = internet.inject_regional_outage(Family.IPV4, region, 12,
                                          DAY + 50000.0, DAY + 53600.0)
    per_block = {p.key: t for p, t in internet.passive_observations()}

    # --- 1. anonymize at the edge --------------------------------------
    anonymizer = PrefixPreservingAnonymizer(b"operator-demo-key-32-bytes!!")
    raw = [Observation(float(t), Family.IPV4, int(k) << 8)
           for k, times in per_block.items() for t in times]
    raw.sort()
    anonymized = ObservationBatch.from_observations(
        Family.IPV4, anonymizer.anonymize_stream(raw))
    print(f"anonymized {len(anonymized):,} observations "
          f"(prefix-preserving: /24s still map to /24s)")

    # --- 2. train once, save, reload, detect today ----------------------
    pipeline = PassiveOutagePipeline()
    streams = per_block_times(anonymized)
    model = pipeline.train(
        Family.IPV4, {k: t[t < DAY] for k, t in streams.items()}, 0.0, DAY)
    stored = io.StringIO()
    save_model(model, stored)
    stored.seek(0)
    model = load_model(stored)
    print(f"model loaded: {len(model.measurable_keys)} measurable blocks")

    today = {k: t[t >= DAY] for k, t in streams.items()}
    result = pipeline.detect(model, today, DAY, 2 * DAY)

    # --- 3. incident roll-up --------------------------------------------
    events = {key: block.timeline.events(300.0)
              for key, block in result.blocks.items()}
    incidents = group_incidents(events, levels=12, slack=600.0)
    print()
    print(format_incident_report(
        incidents, title=f"Today's incidents ({hit} blocks were truly in "
                         f"the injected regional event)"))

    # --- 4. drift audit + rolling retrain -------------------------------
    audits = audit_drift(model, result.blocks, today)
    drifted = [a for a in audits.values() if a.needs_retraining]
    refreshed, retrained = refresh_model(model, audits, today, DAY, 2 * DAY)
    print()
    print(f"drift audit: {len(audits)} blocks checked, "
          f"{len(drifted)} drifted, {len(retrained)} retrained")
    tomorrow_model = io.StringIO()
    save_model(refreshed, tomorrow_model)
    print(f"refreshed model saved for tomorrow "
          f"({len(tomorrow_model.getvalue()):,} bytes of JSON)")


if __name__ == "__main__":
    main()

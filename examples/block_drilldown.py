#!/usr/bin/env python3
"""The poster's illustrative figure, regenerated: dense vs sparse belief.

The poster shows two strip charts — a dense block whose belief B(a)
stays pinned at UP and drops like a cliff at an outage, and a sparse
block whose belief wanders because every long inter-arrival gap is
weak evidence.  This example builds exactly those two blocks, runs the
detector with belief traces on, and renders the per-block drill-down an
operator would pull up.

Run:  python examples/block_drilldown.py
"""

import numpy as np

from repro.core import PassiveDetector, ParameterPlanner
from repro.core.history import train_histories
from repro.eval import drilldown
from repro.net import Family
from repro.traffic import poisson_times, suppress_intervals

DAY = 86400.0
DENSE_KEY = 0xC00002   # 192.0.2.0/24
SPARSE_KEY = 0xCB0071  # 203.0.113.0/24


def main() -> None:
    rng = np.random.default_rng(4)
    # Both blocks suffer the same 25-minute outage mid-day-two.
    outage = (DAY + 40000.0, DAY + 41500.0)

    train = {
        DENSE_KEY: poisson_times(rng, 0.2, 0, DAY),       # ~1 query / 5 s
        SPARSE_KEY: poisson_times(rng, 0.003, 0, DAY),    # ~1 query / 5.5 min
    }
    evaluate = {
        key: suppress_intervals(
            poisson_times(rng, rate, DAY, 2 * DAY), [outage])
        for key, rate in ((DENSE_KEY, 0.2), (SPARSE_KEY, 0.003))
    }

    histories = train_histories(train, 0.0, DAY)
    parameters = ParameterPlanner().plan(histories)
    detector = PassiveDetector(keep_belief_traces=True)
    results = detector.detect(Family.IPV4, evaluate, histories, parameters,
                              DAY, 2 * DAY)

    print("Same 25-minute outage, two very different blocks "
          f"(truth: {outage[0]:,.0f}s -> {outage[1]:,.0f}s):")
    print()
    for label, key in (("DENSE", DENSE_KEY), ("SPARSE", SPARSE_KEY)):
        print(f"--- {label} " + "-" * 60)
        print(drilldown(results[key], DAY, 2 * DAY, evaluate[key]))
        print()

    dense_events = results[DENSE_KEY].timeline.events()
    sparse_events = results[SPARSE_KEY].timeline.events()
    print("reading the strips:")
    if dense_events:
        error = abs(dense_events[0].start - outage[0])
        print(f"  dense block: outage found, start within {error:.0f}s of "
              f"truth — exact timestamps at work")
    if not sparse_events:
        print("  sparse block: the same outage is invisible at this rate — "
              "its tuned bin is coarser than the whole event, precisely "
              "the coverage/precision trade-off of Figure 1")
    else:
        print(f"  sparse block: found, but with "
              f"{abs(sparse_events[0].start - outage[0]):.0f}s timing error")


if __name__ == "__main__":
    main()

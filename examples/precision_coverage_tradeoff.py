#!/usr/bin/env python3
"""Figure 1 interactively: dial temporal precision against coverage.

The paper's core argument is that precision and coverage are a dial,
not a fixed property: dense blocks support 5-minute bins, sparse blocks
need coarser ones, and the per-block tuner gives every block the finest
bin it can afford.  This example sweeps the ladder, prints the coverage
curve, and then shows what the homogeneous (prior-art) alternatives
give up.

Run:  python examples/precision_coverage_tradeoff.py
"""

from repro.core import (
    DEFAULT_BIN_LADDER,
    HomogeneousPlanner,
    ParameterPlanner,
    PassiveOutagePipeline,
)
from repro.core.history import train_histories
from repro.eval import coverage_vs_bin, format_coverage_curve
from repro.net import Family
from repro.traffic import (
    FamilyConfig,
    InternetConfig,
    IPV4_OUTAGE_MODEL,
    SimulatedInternet,
)

DAY = 86400.0


def main() -> None:
    config = InternetConfig(
        end=2 * DAY, training_seconds=DAY, seed=11,
        ipv4=FamilyConfig(n_blocks=1000, outage_model=IPV4_OUTAGE_MODEL))
    internet = SimulatedInternet.build(config)
    per_block = {p.key: t for p, t in internet.passive_observations()}
    train = {k: t[t < DAY] for k, t in per_block.items()}

    histories = train_histories(train, 0.0, DAY)
    points = coverage_vs_bin(histories, DEFAULT_BIN_LADDER)
    print(format_coverage_curve(points))

    print()
    print("What each planner actually assigns:")
    tuned = ParameterPlanner().plan(histories)
    bins_chosen = {}
    for params in tuned.values():
        if params.measurable:
            bins_chosen[params.bin_seconds] = \
                bins_chosen.get(params.bin_seconds, 0) + 1
    for bin_seconds in sorted(bins_chosen):
        share = bins_chosen[bin_seconds] / len(tuned)
        bar = "#" * int(round(40 * share))
        print(f"  {bin_seconds / 60:>5.0f} min bin: "
              f"{bins_chosen[bin_seconds]:>4d} blocks {bar}")
    unmeasurable = sum(1 for p in tuned.values() if not p.measurable)
    print(f"  unmeasurable: {unmeasurable} blocks "
          f"(candidates for /20 spatial aggregation)")

    print()
    print("Homogeneous alternatives (the prior-art failure mode):")
    for fixed_bin in (300.0, 3600.0):
        planner = HomogeneousPlanner(fixed_bin)
        plan = planner.plan(histories)
        covered = sum(1 for p in plan.values() if p.measurable)
        print(f"  fixed {fixed_bin / 60:>3.0f}-min bins: "
              f"{covered}/{len(plan)} blocks measurable "
              f"({covered / len(plan):.0%}), temporal precision "
              f"{fixed_bin / 60:.0f} min everywhere")
    tuned_covered = len(tuned) - unmeasurable
    finest = min(bins_chosen)
    print(f"  per-block tuned:    {tuned_covered}/{len(tuned)} measurable "
          f"({tuned_covered / len(tuned):.0%}), down to "
          f"{finest / 60:.0f}-min precision where the block affords it")

    # And the end-to-end consequence: run detection with aggregation on.
    pipeline = PassiveOutagePipeline(aggregation_levels=4)
    model = pipeline.train(Family.IPV4, train, 0.0, DAY)
    evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
    result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
    if result.aggregation_plan:
        print()
        print(f"spatial fallback recovered "
              f"{result.aggregation_plan.covered_children()} sparse /24s "
              f"inside {len(result.aggregated)} supernets")


if __name__ == "__main__":
    main()

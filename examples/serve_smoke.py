"""End-to-end smoke for the live serving plane (CI gate).

Drives the real deployment shape: simulate a capture, train a model on
the first half, run ``repro-outage serve`` as a subprocess, and — while
it replays and then lingers — exercise every consumer surface: poll
``/ready`` until the plane admits traffic, query block state by
address with the ``{watermark, staleness_s, degraded}`` stamp, pull
``/metrics`` and ``/health``, subscribe over the WebSocket and receive
the snapshot-then-deltas resync, then SIGTERM the server and verify
the graceful-drain contract (subscriber sees a clean close, process
exits 0).

Exit code 0 on success; any failed check raises and exits nonzero.

    python examples/serve_smoke.py
"""

import json
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from urllib.error import HTTPError

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.client import SyncServeClient, http_get  # noqa: E402

DAY = 86400.0
READY_DEADLINE = 120.0  # seconds for replay to publish a fresh snapshot


def fetch(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, response.read().decode()


def main():
    root = Path(tempfile.mkdtemp(prefix="serve_smoke_"))
    capture, model = str(root / "capture.pobs"), str(root / "model.json")
    run = [sys.executable, "-c",
           "import sys; from repro.cli import main; "
           "sys.exit(main(sys.argv[1:]))"]
    subprocess.run(run + ["simulate", "--blocks", "24", "--days", "2",
                          "--seed", "7", "--out", capture], check=True)
    subprocess.run(run + ["train", capture, "--train-end", str(DAY),
                          "--out", model], check=True)

    server = subprocess.Popen(
        run + ["serve", capture, "--model", model, "--port", "0",
               "--max-clients", "64", "--max-lag-s", "300",
               "--shed-qps", "0", "--linger-s", "-1"],
        stderr=subprocess.PIPE, text=True)
    stderr_lines = []

    def drain():
        for line in server.stderr:
            stderr_lines.append(line)

    reader = threading.Thread(target=drain, daemon=True)
    reader.start()
    try:
        # The CLI announces the ephemeral endpoint on stderr.
        base = None
        deadline = time.monotonic() + 30.0
        while base is None and time.monotonic() < deadline:
            for line in stderr_lines:
                match = re.search(r"serving plane: (\S+)", line)
                if match:
                    base = match.group(1)
                    break
            else:
                if server.poll() is not None:
                    raise SystemExit("server exited before serving: "
                                     + "".join(stderr_lines))
                time.sleep(0.05)
        if base is None:
            raise SystemExit("no serving-plane URL announced")
        host, port = base.rsplit("/", 1)[1].split(":")
        port = int(port)
        print("serving plane at", base)

        # /ready flips once the first snapshot is published and fresh.
        deadline = time.monotonic() + READY_DEADLINE
        ready = False
        while time.monotonic() < deadline and not ready:
            try:
                status, _ = fetch(base, "/ready")
                ready = status == 200
            except HTTPError as error:
                assert error.code == 503, error.code
            except OSError:
                pass
            if not ready:
                time.sleep(0.2)
        assert ready, "/ready never flipped: " + "".join(stderr_lines[-10:])
        print("/ready OK")

        # Subscribe: hello + snapshot arrive synchronously on connect.
        with SyncServeClient(host, port) as client:
            assert client.accepted, client.status
            hello = client.recv_message()
            assert hello["type"] == "hello", hello
            assert hello["resync"] == "snapshot", hello
            snapshot = client.recv_message()
            assert snapshot["type"] == "snapshot", snapshot
            blocks = snapshot["blocks"]
            assert blocks, "snapshot carried no blocks"
            print(f"snapshot seq={snapshot['seq']} with "
                  f"{len(blocks)} blocks")

            # Query one known block's network address; the response must
            # carry the bounded-lag stamp.
            block_str = blocks[0][0]
            address = block_str.split("/", 1)[0]
            status, _, body = http_get(host, port,
                                       f"/v1/state?address={address}")
            assert status == 200, (status, body)
            state = json.loads(body)
            assert state["found"] and state["block"] == block_str, state
            stamp = state["stamp"]
            for field in ("watermark", "staleness_s", "degraded"):
                assert field in stamp, (field, stamp)
            print(f"{address} -> {'up' if state['up'] else 'down'} "
                  f"(staleness {stamp['staleness_s']}s)")

            status, body = fetch(base, "/metrics")
            assert status == 200 and "serve_requests_total" in body
            status, body = fetch(base, "/health")
            health = json.loads(body)
            assert health["plane"]["snapshot_seq"] >= 1, health
            print("metrics + health OK")

            # Graceful drain: SIGTERM must close the subscription
            # cleanly (close frame -> recv returns None), then exit 0.
            server.send_signal(signal.SIGTERM)
            client.settimeout(30.0)
            while True:
                message = client.recv_message()
                if message is None:
                    break
            print("subscriber drained cleanly on SIGTERM")
    except Exception:
        server.kill()
        raise
    finally:
        code = server.wait(timeout=60)
        reader.join(timeout=10)
    assert code == 0, f"server exited {code}: " + "".join(stderr_lines[-20:])
    print("serve smoke OK")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Deployment shape: a live monitor over a capture stream.

The batch pipeline answers "what happened yesterday"; a deployed
detector watches the query stream as it arrives.  This example writes a
day of observations to the on-disk capture format, then replays it
through the :class:`StreamingDetector` in 5-minute windows, printing
up/down transitions as they would have been reported live.

Run:  python examples/live_streaming_monitor.py
"""

import tempfile
from pathlib import Path

from repro.core import PassiveOutagePipeline, StreamingDetector
from repro.net import Block, Family
from repro.telescope import (
    CaptureReader,
    CaptureWriter,
    ObservationBatch,
    window_stream,
)
from repro.traffic import (
    FamilyConfig,
    InternetConfig,
    OutageModel,
    SimulatedInternet,
)

DAY = 86400.0


def record_capture(internet, path: Path) -> int:
    """Persist the vantage point's observations as a .pobs capture."""
    written = 0
    with CaptureWriter(path) as writer:
        for profile, times in internet.passive_observations():
            batch = ObservationBatch(profile.family, times,
                                     [profile.key] * times.size)
            writer.write_batch(batch)
            written += times.size
    return written


def main() -> None:
    config = InternetConfig(
        end=2 * DAY, training_seconds=DAY, seed=21,
        ipv4=FamilyConfig(
            n_blocks=150,
            outage_model=OutageModel(outage_probability=0.4)),
    )
    internet = SimulatedInternet.build(config)

    with tempfile.TemporaryDirectory() as tmp:
        capture_path = Path(tmp) / "day.pobs"
        written = record_capture(internet, capture_path)
        print(f"recorded {written:,} observations to {capture_path.name}")

        # Bulk-load day one to train; then replay day two as a stream.
        with CaptureReader(capture_path) as reader:
            ipv4, _ = reader.read_all()
        ipv4 = ipv4.sorted_by_time()

        pipeline = PassiveOutagePipeline()
        model = pipeline.train_from_batch(ipv4.time_slice(0, DAY), 0.0, DAY)
        print(f"trained: {len(model.measurable_keys)} measurable blocks")

        detector = StreamingDetector(Family.IPV4, model.histories,
                                     model.parameters, DAY)
        live_rows = ipv4.time_slice(DAY, 2 * DAY).to_observations()

        print()
        print("replaying day two in 5-minute windows "
              "(transitions print as they are decided):")
        known_down = set()
        for _, window_end, observations in window_stream(live_rows, DAY,
                                                         300.0):
            for observation in observations:
                detector.observe(observation)
            detector.advance(window_end)
            # Poll current verdicts the way a dashboard would.  Query
            # just inside the window edge: the edge itself belongs to
            # the next (still-open) interval.
            snapshot = detector.finalize(window_end)
            now_down = {key for key, block in snapshot.items()
                        if not block.timeline.is_up_at(window_end - 1.0)}
            for key in sorted(now_down - known_down):
                hour = (window_end - DAY) / 3600.0
                print(f"  [{hour:5.2f}h] {Block(Family.IPV4, key, 24)} DOWN")
            for key in sorted(known_down - now_down):
                hour = (window_end - DAY) / 3600.0
                print(f"  [{hour:5.2f}h] {Block(Family.IPV4, key, 24)} up "
                      f"again")
            known_down = now_down

        final = detector.finalize(2 * DAY)
        events = sum(len(b.timeline.events(300.0)) for b in final.values())
        print()
        print(f"day-two total: {events} outage events >= 5 minutes")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: detect outages in a simulated day of passive DNS traffic.

Builds a small simulated Internet (the substrate that stands in for
B-root's view of real recursive resolvers), trains the per-block
Bayesian model on a clean day, detects on a day with injected outages,
and prints what it found next to the ground truth.

Run:  python examples/quickstart.py
"""

from repro.core import PassiveOutagePipeline
from repro.net import Family
from repro.traffic import (
    FamilyConfig,
    InternetConfig,
    OutageModel,
    SimulatedInternet,
)

DAY = 86400.0


def main() -> None:
    # 1. A simulated Internet: 300 /24 blocks, 30 % suffer an outage on
    #    day two.  Day one is clean training history.
    config = InternetConfig(
        end=2 * DAY,
        training_seconds=DAY,
        seed=7,
        ipv4=FamilyConfig(
            n_blocks=300,
            outage_model=OutageModel(outage_probability=0.3)),
    )
    internet = SimulatedInternet.build(config)
    print(internet.describe())
    print()

    # 2. Collect the passive observations a root server would see.
    per_block = {profile.key: times
                 for profile, times in internet.passive_observations()}
    total = sum(times.size for times in per_block.values())
    print(f"vantage point saw {total:,} queries from "
          f"{len(per_block)} blocks over 2 days")

    # 3. Train per-block models on day one, detect on day two.
    pipeline = PassiveOutagePipeline()
    train = {key: t[t < DAY] for key, t in per_block.items()}
    evaluate = {key: t[t >= DAY] for key, t in per_block.items()}
    model = pipeline.train(Family.IPV4, train, 0.0, DAY)
    print(f"tuning: {len(model.measurable_keys)} of {len(model.parameters)} "
          f"blocks measurable ({model.coverage():.0%} coverage)")
    result = pipeline.detect(model, evaluate, DAY, 2 * DAY)

    # 4. Report detections next to the simulator's ground truth.
    print()
    print(f"{'block':>10s} {'bin':>6s} {'detected outage':>28s} "
          f"{'truth':>28s}")
    shown = 0
    for key in result.blocks_with_outages(min_duration=300.0):
        block_result = result.blocks[key]
        truth = internet.truth_for(Family.IPV4, key).clip(DAY, 2 * DAY)
        for event in block_result.timeline.events(300.0):
            truth_events = [t for t in truth.events()
                            if t.overlaps(event, slack=600.0)]
            truth_text = (f"{truth_events[0].start:>10.0f} - "
                          f"{truth_events[0].end:<10.0f}"
                          if truth_events else "(false alarm)")
            print(f"{key:>#10x} "
                  f"{block_result.params.bin_seconds / 60:>5.0f}m "
                  f"{event.start:>12.0f} - {event.end:<12.0f} "
                  f"{truth_text:>28s}")
            shown += 1
        if shown > 15:
            print("  ...")
            break

    detected = len(result.blocks_with_outages(300.0))
    truly_out = sum(
        1 for profile in internet.family_profiles(Family.IPV4)
        if profile.truth.clip(DAY, 2 * DAY).events(300.0))
    print()
    print(f"blocks with detected outages: {detected} "
          f"(ground truth: {truly_out})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Corroborating outages across vantage points and sibling blocks.

The poster: "when possible, we correlate multiple signals from the same
region to corroborate results".  Two mechanisms are demonstrated:

1. two passive services (think B-root plus a large website) each see a
   random share of every block's queries; their verdicts are fused;
2. detected events are cross-checked against sibling blocks in the same
   /20 — a regional outage has witnesses, a lone flapping resolver does
   not.

Run:  python examples/multi_vantage_correlation.py
"""

from collections import Counter

import numpy as np

from repro.core import PassiveOutagePipeline, corroborate_events, fuse_timelines
from repro.eval import confusion_for_population
from repro.net import Family
from repro.traffic import (
    FamilyConfig,
    InternetConfig,
    OutageModel,
    SimulatedInternet,
)

DAY = 86400.0
#: corroboration region: /12 supernets (drop 12 of 24 prefix bits)
REGION_LEVELS = 12


def detect(view, family=Family.IPV4):
    pipeline = PassiveOutagePipeline()
    train = {k: t[t < DAY] for k, t in view.items()}
    evaluate = {k: t[t >= DAY] for k, t in view.items()}
    model = pipeline.train(family, train, 0.0, DAY)
    result = pipeline.detect(model, evaluate, DAY, 2 * DAY)
    return {k: b.timeline for k, b in result.blocks.items()}


def main() -> None:
    config = InternetConfig(
        end=2 * DAY, training_seconds=DAY, seed=29,
        ipv4=FamilyConfig(
            n_blocks=400,
            outage_model=OutageModel(outage_probability=0.35)))
    internet = SimulatedInternet.build(config)

    # Inject a regional event: the /12 with the most well-heard blocks
    # loses power for an hour mid-day-two.  Every member dies together.
    # (Choosing among dense blocks keeps the demo legible — sparse
    # members would be detected too late to corroborate sharply.)
    regions = Counter(p.key >> REGION_LEVELS
                      for p in internet.family_profiles(Family.IPV4)
                      if p.mean_rate > 0.03)
    region, members = regions.most_common(1)[0]
    affected = internet.inject_regional_outage(
        Family.IPV4, region, REGION_LEVELS,
        DAY + 40000.0, DAY + 43600.0)
    print(f"injected a 1-hour regional outage across {affected} blocks "
          f"sharing the /{24 - REGION_LEVELS} region {region:#x}")
    print()

    per_block = {p.key: t for p, t in internet.passive_observations()}
    truths = {p.key: p.truth.clip(DAY, 2 * DAY)
              for p in internet.family_profiles(Family.IPV4)}

    # --- 1. split traffic across two services, detect independently ----
    rng = np.random.default_rng(0)
    vantage_a, vantage_b = {}, {}
    for key, times in per_block.items():
        to_a = rng.random(times.size) < 0.5
        vantage_a[key] = times[to_a]
        vantage_b[key] = times[~to_a]

    timelines_a = detect(vantage_a)
    timelines_b = detect(vantage_b)
    full_view = detect(per_block)

    common = sorted(set(timelines_a) & set(timelines_b))
    fused = {key: fuse_timelines([timelines_a[key], timelines_b[key]],
                                 quorum=1)
             for key in common}

    print("Each vantage alone vs fused, scored against truth:")
    for label, timelines in (("vantage A (half the traffic)", timelines_a),
                             ("vantage B (half the traffic)", timelines_b),
                             ("fused A+B", fused),
                             ("single full-view service", full_view)):
        confusion = confusion_for_population(timelines, truths)
        print(f"  {label:<28s} precision {confusion.precision:.4f}  "
              f"TNR {confusion.tnr:.4f}  blocks {len(timelines)}")

    # --- 2. regional corroboration over the full view -------------------
    events_by_block = {key: timeline.events(300.0)
                       for key, timeline in full_view.items()}
    corroborated = corroborate_events(events_by_block, levels=REGION_LEVELS,
                                      slack=300.0)
    with_witnesses = [c for c in corroborated if c.corroborated]
    print()
    print(f"{sum(len(v) for v in events_by_block.values())} detected "
          f"events; {len(with_witnesses)} have a witness in their "
          f"/{24 - REGION_LEVELS} region (more likely regional than "
          f"block-local)")
    recovered = [c for c in with_witnesses
                 if c.key >> REGION_LEVELS == region
                 and c.event.overlaps(
                     type(c.event)(DAY + 40000.0, DAY + 43600.0),
                     slack=600.0)]
    print(f"the injected regional event was corroborated on "
          f"{len(recovered)} of its {affected} member blocks:")
    for item in recovered[:6]:
        print(f"  block {item.key:#x}: outage at {item.event.start:,.0f}s "
              f"backed by {item.witnesses} regional witness(es)")


if __name__ == "__main__":
    main()

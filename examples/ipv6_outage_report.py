#!/usr/bin/env python3
"""The paper's headline IPv6 result: first outage reports for /48s.

Active systems cannot scan IPv6 (2^128 addresses), so prior outage
detectors simply skip it.  Passive analysis flips the problem: active
/48s *come to us*.  This example detects IPv6 outages alongside IPv4
over the same simulated day and reproduces the Figure 2a comparison —
the IPv6 outage *rate* exceeds IPv4's.

Run:  python examples/ipv6_outage_report.py
"""

from repro.core import PassiveOutagePipeline
from repro.eval import format_outage_rates, outage_rate_report
from repro.net import Block, Family
from repro.traffic import (
    FamilyConfig,
    InternetConfig,
    IPV4_OUTAGE_MODEL,
    IPV6_OUTAGE_MODEL,
    SimulatedInternet,
)

DAY = 86400.0


def detect_family(internet, per_block, family):
    pipeline = PassiveOutagePipeline()
    train = {k: t[t < DAY] for k, t in per_block.items()}
    evaluate = {k: t[t >= DAY] for k, t in per_block.items()}
    model = pipeline.train(family, train, 0.0, DAY)
    return model, pipeline.detect(model, evaluate, DAY, 2 * DAY)


def main() -> None:
    config = InternetConfig(
        end=2 * DAY, training_seconds=DAY, seed=13,
        ipv4=FamilyConfig(n_blocks=1200, outage_model=IPV4_OUTAGE_MODEL),
        ipv6=FamilyConfig(n_blocks=250, outage_model=IPV6_OUTAGE_MODEL),
    )
    internet = SimulatedInternet.build(config)
    streams = {Family.IPV4: {}, Family.IPV6: {}}
    for profile, times in internet.passive_observations():
        streams[profile.family][profile.key] = times

    reports = []
    v6_result = None
    for family, label in ((Family.IPV4, "IPv4 /24"),
                          (Family.IPV6, "IPv6 /48")):
        model, result = detect_family(internet, streams[family], family)
        timelines = {k: b.timeline for k, b in result.blocks.items()}
        reports.append(outage_rate_report(label, timelines,
                                          min_outage_seconds=600.0))
        if family is Family.IPV6:
            v6_result = result
        print(f"{label}: {len(model.parameters)} observed, "
              f"{len(model.measurable_keys)} measurable "
              f"({model.coverage():.0%})")

    print()
    print(format_outage_rates(reports))

    # The "first report of IPv6 outages": the individual /48 events.
    print()
    print("IPv6 /48 outage events (the paper's novel observable):")
    count = 0
    for key in v6_result.blocks_with_outages(600.0):
        block = Block(Family.IPV6, key, 48)
        for event in v6_result.blocks[key].timeline.events(600.0):
            print(f"  {str(block):<28s} down {event.start - DAY:>8.0f}s "
                  f"-> {event.end - DAY:>8.0f}s into the day "
                  f"({event.duration / 60:.0f} min)")
            count += 1
        if count > 12:
            print("  ...")
            break


if __name__ == "__main__":
    main()

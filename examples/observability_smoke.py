"""End-to-end smoke for the live observability endpoint (CI gate).

Drives the real deployment shape: simulate a capture, train a model on
the first half, run the partitioned live monitor with ``--obs-port 0``,
and scrape ``/metrics``, ``/health``, ``/metrics.json``, and
``/events`` *while the run is in flight*.  The checks are golden-shape
assertions — exposition format, document ``format`` tags, health keys —
plus the one liveness contract worth gating on: worker counters must
become visible through the parent's endpoint mid-run, proving the
heartbeat piggyback and the scrape plane work against a real fleet.

Exit code 0 on success; any failed check raises and exits nonzero.

    python examples/observability_smoke.py
"""

import json
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

DAY = 86400.0
SCRAPE_DEADLINE = 120.0  # seconds to see live worker counters


def fetch(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.headers, response.read().decode()


def exposition_value(body, name):
    """Sum of a metric's sample values in a Prometheus text body."""
    total, seen = 0.0, False
    for line in body.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
            seen = True
    return total if seen else None


def main():
    root = Path(tempfile.mkdtemp(prefix="obs_smoke_"))
    capture, model = str(root / "capture.pobs"), str(root / "model.json")
    run = [sys.executable, "-c",
           "import sys; from repro.cli import main; "
           "sys.exit(main(sys.argv[1:]))"]
    subprocess.run(run + ["simulate", "--blocks", "24", "--days", "2",
                          "--seed", "7", "--out", capture], check=True)
    # --train-end at the midpoint: training defaults to the capture's
    # end, which would leave the live monitor zero rows to replay.
    subprocess.run(run + ["train", capture, "--train-end", str(DAY),
                          "--out", model], check=True)

    monitor = subprocess.Popen(
        run + ["live", capture, "--model", model, "--partitions", "2",
               "--checkpoint", str(root / "ckpt"), "--obs-port", "0"],
        stderr=subprocess.PIPE, text=True)
    stderr_lines = []

    def drain():
        for line in monitor.stderr:
            stderr_lines.append(line)

    reader = threading.Thread(target=drain, daemon=True)
    reader.start()
    try:
        # The CLI announces the ephemeral endpoint on stderr.
        base = None
        deadline = time.monotonic() + 30.0
        while base is None and time.monotonic() < deadline:
            for line in stderr_lines:
                match = re.search(r"observability endpoint: (\S+)", line)
                if match:
                    base = match.group(1)
                    break
            else:
                if monitor.poll() is not None:
                    raise SystemExit("monitor exited before serving: "
                                     + "".join(stderr_lines))
                time.sleep(0.05)
        if base is None:
            raise SystemExit("no observability endpoint announced")
        print("scraping", base)

        # Worker counters must surface through the parent mid-run.
        deadline = time.monotonic() + SCRAPE_DEADLINE
        observed = None
        while time.monotonic() < deadline:
            if monitor.poll() is not None:
                break  # run finished; final fold below must still show
            headers, body = fetch(base, "/metrics")
            assert headers["Content-Type"].startswith("text/plain"), \
                headers["Content-Type"]
            observed = exposition_value(body, "stream_observations_total")
            if observed:
                break
            time.sleep(0.2)
        assert observed, "worker counters never reached /metrics"
        print(f"stream_observations_total {observed:.0f} mid-run")

        _, body = fetch(base, "/metrics.json")
        snapshot = json.loads(body)
        assert snapshot["format"] == "repro-metrics-v1", snapshot["format"]
        assert any(entry["name"] == "stream_observations_total"
                   for entry in snapshot["metrics"])

        _, body = fetch(base, "/health")
        health = json.loads(body)
        assert health["status"] in ("running", "merging", "done"), health
        assert health["run"] == "streaming", health
        assert len(health["partitions"]) == 2, health
        for row in health["partitions"]:
            for key in ("index", "unit", "status", "watermark",
                        "watermark_lag", "restarts"):
                assert key in row, (key, row)
        print("health:", health["status"],
              [row["status"] for row in health["partitions"]])

        _, body = fetch(base, "/events")
        events = json.loads(body)
        assert events["format"] == "repro-explain-v1", events["format"]
        assert isinstance(events["events"], list)
        print(f"{len(events['events'])} explain events")
    except Exception:
        monitor.kill()
        raise
    finally:
        code = monitor.wait(timeout=300)
        reader.join(timeout=10)
    assert code == 0, ("monitor exited "
                       f"{code}: " + "".join(stderr_lines[-20:]))
    print("observability smoke OK")


if __name__ == "__main__":
    main()

"""Test instrumentation shipped with the package.

:mod:`repro.testing.faults` holds the composable stream/capture
mutators behind the fault-injection suite; they live in the package
(not in ``tests/``) so operators and downstream integrations can run
the same chaos drills against their own deployments.
"""

from .faults import (
    clock_skew,
    compose,
    corrupt_capture,
    degenerate_parameters,
    drop_observations,
    duplicate_observations,
    feed_gap,
    poison_block_times,
    poison_timestamps,
    reorder_observations,
)

__all__ = [
    "clock_skew",
    "compose",
    "corrupt_capture",
    "degenerate_parameters",
    "drop_observations",
    "duplicate_observations",
    "feed_gap",
    "poison_block_times",
    "poison_timestamps",
    "reorder_observations",
]

"""Composable fault injectors for the passive ingest path.

Each mutator takes an observation iterable and returns a mutated
iterable, so faults chain by nesting (or with :func:`compose`)::

    noisy = reorder_observations(
        drop_observations(stream, 0.1, rng), 0.1, 30.0, rng)

All randomised mutators are deterministic given their
``numpy.random.Generator``, which is what lets the fault suite pin
exact outputs ("10% reorder within the horizon produces bit-identical
events").  Mutators model *delivery*, not reality: timestamps are never
altered except by :func:`clock_skew`, which models the one fault that
does alter them (a drifting capture clock).

:func:`corrupt_capture` operates one layer down, on the raw bytes of a
``.pobs`` capture file, to exercise the reader's corruption handling.
"""

from __future__ import annotations

import copy
import heapq
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Tuple)

import numpy as np

from ..telescope.capture import _HEADER, _RECORD
from ..telescope.records import Observation

__all__ = ["drop_observations", "duplicate_observations",
           "reorder_observations", "clock_skew", "feed_gap",
           "corrupt_capture", "poison_timestamps", "poison_block_times",
           "degenerate_parameters", "compose"]

Stream = Iterable[Observation]
Mutator = Callable[[Stream], Iterator[Observation]]


def drop_observations(stream: Stream, fraction: float,
                      rng: np.random.Generator) -> Iterator[Observation]:
    """Lose each observation independently with probability ``fraction``.

    Models random packet loss between the tap and the detector.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    for observation in stream:
        if rng.random() >= fraction:
            yield observation


def duplicate_observations(stream: Stream, fraction: float,
                           rng: np.random.Generator,
                           ) -> Iterator[Observation]:
    """Deliver each observation twice with probability ``fraction``.

    Models retransmission/mirroring artefacts; the duplicate carries an
    identical timestamp, as a duplicated frame would.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    for observation in stream:
        yield observation
        if rng.random() < fraction:
            yield observation


def reorder_observations(stream: Stream, fraction: float,
                         max_shift_seconds: float,
                         rng: np.random.Generator,
                         ) -> Iterator[Observation]:
    """Delay delivery of a random subset by up to ``max_shift_seconds``.

    Timestamps are untouched — only the *delivery order* changes, which
    is exactly the disorder a multi-queue capture path introduces.  A
    selected observation is held back until the stream front passes its
    timestamp plus the drawn delay, so the output is a bounded
    permutation recoverable by a reorder buffer with
    ``horizon >= max_shift_seconds``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if max_shift_seconds < 0:
        raise ValueError("max_shift_seconds must be >= 0")
    held: List[Tuple[float, int, Observation]] = []
    sequence = 0
    for observation in stream:
        if rng.random() < fraction:
            release = observation.time + rng.uniform(0.0, max_shift_seconds)
            heapq.heappush(held, (release, sequence, observation))
            sequence += 1
            continue
        while held and held[0][0] <= observation.time:
            yield heapq.heappop(held)[2]
        yield observation
    while held:
        yield heapq.heappop(held)[2]


def clock_skew(stream: Stream, offset: float = 0.0, drift: float = 0.0,
               anchor: Optional[float] = None) -> Iterator[Observation]:
    """Shift timestamps: constant ``offset`` plus linear ``drift``.

    ``time' = time + offset + drift * (time - anchor)``; ``anchor``
    defaults to the first observation's timestamp.  Models a capture
    clock that stepped (offset) or runs fast/slow (drift, in seconds of
    error per second of stream).
    """
    for observation in stream:
        if anchor is None:
            anchor = observation.time
        skewed = (observation.time + offset
                  + drift * (observation.time - anchor))
        yield Observation(skewed, observation.family, observation.source,
                          observation.qtype)


def feed_gap(stream: Stream, start: float, end: float,
             ) -> Iterator[Observation]:
    """Silence the whole feed over ``[start, end)``.

    Models the observer-side failure (capture stall, service restart)
    the vantage sentinel exists to disambiguate: every block goes quiet
    at once, but nothing was wrong with the observed networks.
    """
    if end < start:
        raise ValueError("feed gap must not end before it starts")
    for observation in stream:
        if not start <= observation.time < end:
            yield observation


def corrupt_capture(payload: bytes, rng: np.random.Generator,
                    mode: str = "truncate") -> bytes:
    """Damage the raw bytes of a ``.pobs`` capture.

    ``truncate`` cuts the file mid-record (the signature of a writer
    killed part-way through an append); ``flip`` corrupts one record's
    family byte to an undecodable value.  Both leave the header and at
    least one leading record intact so readers must locate the damage,
    not merely reject the file.
    """
    header, records = payload[:_HEADER.size], payload[_HEADER.size:]
    count = len(records) // _RECORD.size
    if count < 2:
        raise ValueError("need at least two records to corrupt meaningfully")
    if mode == "truncate":
        keep = int(rng.integers(1, count))
        cut = keep * _RECORD.size + int(rng.integers(1, _RECORD.size))
        return header + records[:cut]
    if mode == "flip":
        victim = int(rng.integers(1, count))
        family_offset = victim * _RECORD.size + 8  # after float64 time
        mutated = bytearray(records)
        mutated[family_offset] = 0xFF  # neither 4 nor 6
        return header + bytes(mutated)
    raise ValueError(f"unknown corruption mode {mode!r}")


def poison_timestamps(stream: Stream, fraction: float,
                      rng: np.random.Generator,
                      poison: float = float("nan"),
                      ) -> Iterator[Observation]:
    """Replace a random subset of timestamps with a non-finite value.

    Models a decoder bug or garbage capture hardware emitting NaN/inf
    times.  The ingest layer is expected to *reject* these loudly
    (``merge_streams``/``ReorderBuffer``) and the streaming detector to
    refuse them at :meth:`observe` — a NaN that slips past either would
    silently corrupt bin ordering, so the chaos suite feeds this mutator
    to pin the refusal.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    for observation in stream:
        if rng.random() < fraction:
            yield Observation(poison, observation.family,
                              observation.source, observation.qtype)
        else:
            yield observation


def poison_block_times(per_block: Mapping[int, np.ndarray],
                       keys: Iterable[int],
                       mode: str = "nan",
                       ) -> Dict[int, np.ndarray]:
    """Copy a per-block times mapping with the chosen blocks poisoned.

    Data-level counterpart of :func:`poison_timestamps` for the batch
    pipeline, which consumes ``{block_key: sorted times}`` mappings
    rather than streams.  Untouched blocks share the original arrays
    (no copy), which is what lets the chaos suite assert their results
    are *bit-identical* with and without the poison.

    ``nan``
        overwrite the middle timestamp with NaN.
    ``inf``
        overwrite the last timestamp with +inf (appended when empty).
    ``unsorted``
        swap the first and last timestamps, breaking sort order.
    """
    keys = list(keys)
    missing = [key for key in keys if key not in per_block]
    if missing:
        raise KeyError(f"cannot poison absent blocks {missing!r}")
    poisoned = dict(per_block)
    for key in keys:
        times = np.array(per_block[key], dtype=float, copy=True)
        if mode == "nan":
            if times.size == 0:
                times = np.array([np.nan])
            else:
                times[times.size // 2] = np.nan
        elif mode == "inf":
            if times.size == 0:
                times = np.array([np.inf])
            else:
                times[-1] = np.inf
        elif mode == "unsorted":
            if times.size < 2:
                raise ValueError(
                    f"block {key:#x} has {times.size} arrivals; need >= 2 "
                    f"to break sort order")
            times[0], times[-1] = times[-1], times[0]
        else:
            raise ValueError(f"unknown poison mode {mode!r}")
        poisoned[key] = times
    return poisoned


def degenerate_parameters(parameters: Mapping[int, Any],
                          keys: Iterable[int],
                          field: str = "p_empty_up",
                          value: float = float("nan"),
                          ) -> Dict[int, Any]:
    """Copy a parameters mapping with chosen blocks' models corrupted.

    Simulates a poisoned *model* (a bad deserialisation, a bit-flipped
    checkpoint) rather than poisoned data.  The parameter class
    validates and clamps on construction, so the corruption is applied
    through ``object.__setattr__`` on a shallow copy — exactly the
    backdoor a corrupt pickle or buggy migration would use.  Untouched
    blocks share the original objects.
    """
    keys = list(keys)
    missing = [key for key in keys if key not in parameters]
    if missing:
        raise KeyError(f"cannot corrupt absent blocks {missing!r}")
    corrupted = dict(parameters)
    for key in keys:
        params = copy.copy(parameters[key])
        if not hasattr(params, field):
            raise AttributeError(
                f"parameters for block {key:#x} have no field {field!r}")
        object.__setattr__(params, field, value)
        corrupted[key] = params
    return corrupted


def compose(stream: Stream, *mutators: Mutator) -> Iterator[Observation]:
    """Apply mutators left-to-right: first listed touches the feed first."""
    result: Iterable[Observation] = stream
    for mutator in mutators:
        result = mutator(result)
    return iter(result)

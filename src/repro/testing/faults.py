"""Composable fault injectors for the passive ingest path.

Each mutator takes an observation iterable and returns a mutated
iterable, so faults chain by nesting (or with :func:`compose`)::

    noisy = reorder_observations(
        drop_observations(stream, 0.1, rng), 0.1, 30.0, rng)

All randomised mutators are deterministic given their
``numpy.random.Generator``, which is what lets the fault suite pin
exact outputs ("10% reorder within the horizon produces bit-identical
events").  Mutators model *delivery*, not reality: timestamps are never
altered except by :func:`clock_skew`, which models the one fault that
does alter them (a drifting capture clock).

:func:`corrupt_capture` operates one layer down, on the raw bytes of a
``.pobs`` capture file, to exercise the reader's corruption handling.

The *vantage-level* mutators (:func:`blind_vantage`,
:func:`vantage_brownout`, :func:`vantage_lag`) operate on fused
``(source, observation)`` streams and fail exactly one vantage of a
multi-source feed — the fault class the per-source sentinels and
reliability weights exist to contain.

The *process-level* hooks (:func:`crash_on_block`, :func:`hang_on_block`,
:func:`balloon_rss_on_block`) operate another layer down still: they
kill, stall, or bloat the whole worker *process* rather than poisoning
data, exercising the shard supervisor's crash/hang/OOM containment.
They reach workers through a test-only environment channel
(:data:`PROCESS_FAULT_ENV`): the chaos suite serialises the fault spec
into the environment, spawned workers call
:func:`activate_process_faults` at shard entry, and the fault fires
when the worker's keyspace contains the targeted block.  Stateful
faults (``times=N`` — fail the first N attempts, then succeed) keep
their attempt count in a shared counter directory because each worker
attempt is a fresh process.
"""

from __future__ import annotations

import copy
import heapq
import json
import os
import time
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Tuple)

import numpy as np

from ..telescope.capture import _HEADER, _RECORD
from ..telescope.records import Observation

__all__ = ["drop_observations", "duplicate_observations",
           "reorder_observations", "clock_skew", "feed_gap",
           "corrupt_capture", "poison_timestamps", "poison_block_times",
           "degenerate_parameters", "compose",
           "blind_vantage", "vantage_brownout", "vantage_lag",
           "PROCESS_FAULT_ENV", "crash_on_block", "hang_on_block",
           "balloon_rss_on_block", "slow_on_block", "after_windows",
           "process_fault_env", "activate_process_faults",
           "StreamingFaultPlan", "load_streaming_faults"]

Stream = Iterable[Observation]
Mutator = Callable[[Stream], Iterator[Observation]]
#: A fused multi-vantage feed: ``(source name, observation)`` pairs in
#: timestamp order, as consumed by ``FusedStreamingDetector.observe_from``.
TaggedStream = Iterable[Tuple[str, Observation]]


def drop_observations(stream: Stream, fraction: float,
                      rng: np.random.Generator) -> Iterator[Observation]:
    """Lose each observation independently with probability ``fraction``.

    Models random packet loss between the tap and the detector.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    for observation in stream:
        if rng.random() >= fraction:
            yield observation


def duplicate_observations(stream: Stream, fraction: float,
                           rng: np.random.Generator,
                           ) -> Iterator[Observation]:
    """Deliver each observation twice with probability ``fraction``.

    Models retransmission/mirroring artefacts; the duplicate carries an
    identical timestamp, as a duplicated frame would.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    for observation in stream:
        yield observation
        if rng.random() < fraction:
            yield observation


def reorder_observations(stream: Stream, fraction: float,
                         max_shift_seconds: float,
                         rng: np.random.Generator,
                         ) -> Iterator[Observation]:
    """Delay delivery of a random subset by up to ``max_shift_seconds``.

    Timestamps are untouched — only the *delivery order* changes, which
    is exactly the disorder a multi-queue capture path introduces.  A
    selected observation is held back until the stream front passes its
    timestamp plus the drawn delay, so the output is a bounded
    permutation recoverable by a reorder buffer with
    ``horizon >= max_shift_seconds``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if max_shift_seconds < 0:
        raise ValueError("max_shift_seconds must be >= 0")
    held: List[Tuple[float, int, Observation]] = []
    sequence = 0
    for observation in stream:
        if rng.random() < fraction:
            release = observation.time + rng.uniform(0.0, max_shift_seconds)
            heapq.heappush(held, (release, sequence, observation))
            sequence += 1
            continue
        while held and held[0][0] <= observation.time:
            yield heapq.heappop(held)[2]
        yield observation
    while held:
        yield heapq.heappop(held)[2]


def clock_skew(stream: Stream, offset: float = 0.0, drift: float = 0.0,
               anchor: Optional[float] = None) -> Iterator[Observation]:
    """Shift timestamps: constant ``offset`` plus linear ``drift``.

    ``time' = time + offset + drift * (time - anchor)``; ``anchor``
    defaults to the first observation's timestamp.  Models a capture
    clock that stepped (offset) or runs fast/slow (drift, in seconds of
    error per second of stream).
    """
    for observation in stream:
        if anchor is None:
            anchor = observation.time
        skewed = (observation.time + offset
                  + drift * (observation.time - anchor))
        yield Observation(skewed, observation.family, observation.source,
                          observation.qtype)


def feed_gap(stream: Stream, start: float, end: float,
             ) -> Iterator[Observation]:
    """Silence the whole feed over ``[start, end)``.

    Models the observer-side failure (capture stall, service restart)
    the vantage sentinel exists to disambiguate: every block goes quiet
    at once, but nothing was wrong with the observed networks.
    """
    if end < start:
        raise ValueError("feed gap must not end before it starts")
    for observation in stream:
        if not start <= observation.time < end:
            yield observation


def corrupt_capture(payload: bytes, rng: np.random.Generator,
                    mode: str = "truncate") -> bytes:
    """Damage the raw bytes of a ``.pobs`` capture.

    ``truncate`` cuts the file mid-record (the signature of a writer
    killed part-way through an append); ``flip`` corrupts one record's
    family byte to an undecodable value.  Both leave the header and at
    least one leading record intact so readers must locate the damage,
    not merely reject the file.
    """
    header, records = payload[:_HEADER.size], payload[_HEADER.size:]
    count = len(records) // _RECORD.size
    if count < 2:
        raise ValueError("need at least two records to corrupt meaningfully")
    if mode == "truncate":
        keep = int(rng.integers(1, count))
        cut = keep * _RECORD.size + int(rng.integers(1, _RECORD.size))
        return header + records[:cut]
    if mode == "flip":
        victim = int(rng.integers(1, count))
        family_offset = victim * _RECORD.size + 8  # after float64 time
        mutated = bytearray(records)
        mutated[family_offset] = 0xFF  # neither 4 nor 6
        return header + bytes(mutated)
    raise ValueError(f"unknown corruption mode {mode!r}")


def poison_timestamps(stream: Stream, fraction: float,
                      rng: np.random.Generator,
                      poison: float = float("nan"),
                      ) -> Iterator[Observation]:
    """Replace a random subset of timestamps with a non-finite value.

    Models a decoder bug or garbage capture hardware emitting NaN/inf
    times.  The ingest layer is expected to *reject* these loudly
    (``merge_streams``/``ReorderBuffer``) and the streaming detector to
    refuse them at :meth:`observe` — a NaN that slips past either would
    silently corrupt bin ordering, so the chaos suite feeds this mutator
    to pin the refusal.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    for observation in stream:
        if rng.random() < fraction:
            yield Observation(poison, observation.family,
                              observation.source, observation.qtype)
        else:
            yield observation


def poison_block_times(per_block: Mapping[int, np.ndarray],
                       keys: Iterable[int],
                       mode: str = "nan",
                       ) -> Dict[int, np.ndarray]:
    """Copy a per-block times mapping with the chosen blocks poisoned.

    Data-level counterpart of :func:`poison_timestamps` for the batch
    pipeline, which consumes ``{block_key: sorted times}`` mappings
    rather than streams.  Untouched blocks share the original arrays
    (no copy), which is what lets the chaos suite assert their results
    are *bit-identical* with and without the poison.

    ``nan``
        overwrite the middle timestamp with NaN.
    ``inf``
        overwrite the last timestamp with +inf (appended when empty).
    ``unsorted``
        swap the first and last timestamps, breaking sort order.
    """
    keys = list(keys)
    missing = [key for key in keys if key not in per_block]
    if missing:
        raise KeyError(f"cannot poison absent blocks {missing!r}")
    poisoned = dict(per_block)
    for key in keys:
        times = np.array(per_block[key], dtype=float, copy=True)
        if mode == "nan":
            if times.size == 0:
                times = np.array([np.nan])
            else:
                times[times.size // 2] = np.nan
        elif mode == "inf":
            if times.size == 0:
                times = np.array([np.inf])
            else:
                times[-1] = np.inf
        elif mode == "unsorted":
            if times.size < 2:
                raise ValueError(
                    f"block {key:#x} has {times.size} arrivals; need >= 2 "
                    f"to break sort order")
            times[0], times[-1] = times[-1], times[0]
        else:
            raise ValueError(f"unknown poison mode {mode!r}")
        poisoned[key] = times
    return poisoned


def degenerate_parameters(parameters: Mapping[int, Any],
                          keys: Iterable[int],
                          field: str = "p_empty_up",
                          value: float = float("nan"),
                          ) -> Dict[int, Any]:
    """Copy a parameters mapping with chosen blocks' models corrupted.

    Simulates a poisoned *model* (a bad deserialisation, a bit-flipped
    checkpoint) rather than poisoned data.  The parameter class
    validates and clamps on construction, so the corruption is applied
    through ``object.__setattr__`` on a shallow copy — exactly the
    backdoor a corrupt pickle or buggy migration would use.  Untouched
    blocks share the original objects.
    """
    keys = list(keys)
    missing = [key for key in keys if key not in parameters]
    if missing:
        raise KeyError(f"cannot corrupt absent blocks {missing!r}")
    corrupted = dict(parameters)
    for key in keys:
        params = copy.copy(parameters[key])
        if not hasattr(params, field):
            raise AttributeError(
                f"parameters for block {key:#x} have no field {field!r}")
        object.__setattr__(params, field, value)
        corrupted[key] = params
    return corrupted


def compose(stream: Stream, *mutators: Mutator) -> Iterator[Observation]:
    """Apply mutators left-to-right: first listed touches the feed first."""
    result: Iterable[Observation] = stream
    for mutator in mutators:
        result = mutator(result)
    return iter(result)


# -- vantage-level faults (multi-source fusion chaos) -------------------------


def blind_vantage(stream: TaggedStream, source: str, at: float,
                  until: float = float("inf"),
                  ) -> Iterator[Tuple[str, Observation]]:
    """Silence one vantage of a fused feed over ``[at, until)``.

    The vantage-level analogue of :func:`feed_gap`: every record tagged
    ``source`` inside the window disappears while the other vantages
    flow untouched — a telescope losing its uplink, a tap host dying.
    The default open end models a vantage that never comes back; the
    fused detector's acceptance bar is that the survivors keep calling
    outages with *no* false onsets attributable to the blinded source.
    """
    if until < at:
        raise ValueError("blind window must not end before it starts")
    for name, observation in stream:
        if name == source and at <= observation.time < until:
            continue
        yield name, observation


def vantage_brownout(stream: TaggedStream, source: str, start: float,
                     end: float, keep_fraction: float,
                     rng: np.random.Generator,
                     ) -> Iterator[Tuple[str, Observation]]:
    """Degrade one vantage to ``keep_fraction`` of its traffic.

    Partial failure, not death: over ``[start, end)`` each of the
    vantage's records survives independently with probability
    ``keep_fraction`` (an overloaded collector shedding load, a lossy
    relay).  Unlike :func:`blind_vantage` the sentinel may never open a
    quarantine — the reliability weight is what should sag — so this is
    the injector that exercises the *soft* half of the degradation
    story.
    """
    if end < start:
        raise ValueError("brownout window must not end before it starts")
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in [0, 1]")
    for name, observation in stream:
        if (name == source and start <= observation.time < end
                and rng.random() >= keep_fraction):
            continue
        yield name, observation


def vantage_lag(stream: TaggedStream, source: str, lag_seconds: float,
                start: float = float("-inf"), end: float = float("inf"),
                ) -> Iterator[Tuple[str, Observation]]:
    """Deliver one vantage ``lag_seconds`` late, stamped at delivery.

    Models a buffering relay that holds the vantage's records and the
    collector stamping them on *arrival*: inside ``[start, end)`` each
    of the vantage's records is released once the merged front passes
    ``time + lag_seconds`` and carries that shifted timestamp, so the
    output stays timestamp-ordered (feedable straight into
    ``observe_from``) while the vantage's evidence is displaced in
    time.  A lagging vantage must neither veto the punctual sources'
    onset calls nor trip its own sentinel — lag is displacement, not
    silence.
    """
    if lag_seconds < 0:
        raise ValueError("lag_seconds must be >= 0")
    if end < start:
        raise ValueError("lag window must not end before it starts")
    held: List[Observation] = []

    def release(observation: Observation) -> Tuple[str, Observation]:
        return source, Observation(observation.time + lag_seconds,
                                   observation.family, observation.source,
                                   observation.qtype)

    for name, observation in stream:
        while held and held[0].time + lag_seconds <= observation.time:
            yield release(held.pop(0))
        if name == source and start <= observation.time < end:
            held.append(observation)
        else:
            yield name, observation
    for observation in held:
        yield release(observation)


# -- process-level faults (shard supervision chaos) --------------------------

#: Test-only environment channel carrying a JSON process-fault spec
#: into spawned shard workers.  Production code never sets it; the
#: supervised worker entry checks it and activates matching faults.
PROCESS_FAULT_ENV = "REPRO_PROCESS_FAULTS"


def crash_on_block(block_key: int, times: Optional[int] = None,
                   exit_code: int = 134) -> Dict[str, Any]:
    """Hook spec: kill the worker process handling ``block_key``.

    The worker dies via ``os._exit`` — no exception, no cleanup, no
    result document — exactly like a segfault or a C-extension abort.
    ``times=N`` makes the fault *flaky*: the first N attempts die, then
    the block computes normally (models a transient infrastructure
    fault the supervisor's retries should absorb).
    """
    return {"kind": "crash", "block": int(block_key), "times": times,
            "exit_code": int(exit_code)}


def hang_on_block(block_key: int, seconds: float = 3600.0,
                  times: Optional[int] = None) -> Dict[str, Any]:
    """Hook spec: stall the worker handling ``block_key`` for ``seconds``.

    Models a wedged worker (deadlocked lock, hung filesystem call); the
    supervisor's wall-clock timeout is the only thing that can reclaim
    it.  The sleep eventually returns, so a run *without* a timeout
    still terminates — just pathologically late.
    """
    return {"kind": "hang", "block": int(block_key),
            "seconds": float(seconds), "times": times}


def balloon_rss_on_block(block_key: int, mb: float = 512.0,
                         hold_seconds: float = 3600.0,
                         times: Optional[int] = None) -> Dict[str, Any]:
    """Hook spec: balloon the worker's resident set to ``mb`` megabytes.

    Allocates (and touches) ballast until the target RSS is reached,
    then holds it for ``hold_seconds`` so the supervisor's RSS ceiling
    poll can catch the breach — models a leak or a pathological input
    blowing up memory before the OS OOM killer fires.
    """
    return {"kind": "rss", "block": int(block_key), "mb": float(mb),
            "hold_seconds": float(hold_seconds), "times": times}


def slow_on_block(block_key: int, seconds: float = 0.05,
                  times: Optional[int] = None) -> Dict[str, Any]:
    """Hook spec: stretch every window of the worker owning ``block_key``.

    Streaming-only (always combined with :func:`after_windows`): once
    the threshold is reached the worker sleeps ``seconds`` at every
    subsequent window close, slowing it without wedging it — the knob
    the graceful-shutdown test uses to guarantee a SIGTERM lands while
    the run is demonstrably mid-stream.
    """
    return {"kind": "slow", "block": int(block_key),
            "seconds": float(seconds), "times": times}


def after_windows(hook: Dict[str, Any], windows: int) -> Dict[str, Any]:
    """Defer a process-fault spec until the worker has closed K windows.

    Batch workers fire faults at shard *entry*; a streaming worker has
    no entry worth faulting (it starts idle and accumulates state), so
    its chaos faults key off progress instead: the fault arms only once
    the owning worker's detector has closed ``windows`` bins.  Because
    ``windows_closed`` is checkpointed, a restarted worker resumes
    *past* the threshold rather than re-approaching it — a ``times=1``
    crash therefore fires exactly once across the restart chain, while
    a ``times=None`` crash models a persistent killer that exhausts the
    partition's restart budget.  Batch entry
    (:func:`activate_process_faults`) skips deferred specs entirely.
    """
    if windows < 0:
        raise ValueError("after_windows threshold must be >= 0")
    deferred = dict(hook)
    deferred["after_windows"] = int(windows)
    return deferred


def process_fault_env(*hooks: Dict[str, Any],
                      counter_dir: Optional[str] = None) -> Dict[str, str]:
    """Environment mapping that activates ``hooks`` in shard workers.

    Merge the result into ``os.environ`` (tests use monkeypatch) before
    running a supervised pipeline; every spawned worker inherits it.
    ``counter_dir`` is required when any hook is stateful (``times=N``):
    attempts are counted in files there because each attempt is a fresh
    process with no shared memory.
    """
    if any(hook.get("times") is not None for hook in hooks):
        if counter_dir is None:
            raise ValueError("stateful faults (times=N) need a counter_dir")
    spec: Dict[str, Any] = {"faults": list(hooks)}
    if counter_dir is not None:
        spec["counter_dir"] = os.fspath(counter_dir)
    return {PROCESS_FAULT_ENV: json.dumps(spec)}


def _consume_fault_attempt(fault: Dict[str, Any],
                           counter_dir: Optional[str]) -> bool:
    """Whether this attempt should fire; burns one flaky-fault charge."""
    times = fault.get("times")
    if times is None:
        return True
    if counter_dir is None:
        raise ValueError("stateful fault reached a worker without a "
                         "counter_dir in its spec")
    path = os.path.join(counter_dir,
                        f"fault-{fault['kind']}-{int(fault['block'])}.count")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            used = int(handle.read().strip() or 0)
    except (OSError, ValueError):
        used = 0
    if used >= int(times):
        return False
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(str(used + 1))
    return True


def _fire_process_fault(fault: Dict[str, Any]) -> None:
    kind = fault.get("kind")
    if kind == "crash":
        # No exception path, no atexit, no conn.send: the parent sees a
        # dead child with a nonzero exit code and nothing else.
        os._exit(int(fault.get("exit_code", 134)))
    elif kind == "hang":
        time.sleep(float(fault.get("seconds", 3600.0)))
    elif kind == "rss":
        target_bytes = int(float(fault.get("mb", 512.0)) * 1e6)
        step = 16 * 1024 * 1024
        ballast: List[bytearray] = []
        held = 0
        while held < target_bytes:
            # bytearray(b"\xab" * step) touches every page, so the
            # allocation is resident, not merely reserved.
            ballast.append(bytearray(b"\xab" * min(step,
                                                   target_bytes - held)))
            held += step
        time.sleep(float(fault.get("hold_seconds", 3600.0)))
        del ballast
    else:
        raise ValueError(f"unknown process fault kind {kind!r}")


def activate_process_faults(keys: Iterable[int],
                            environ: Optional[Mapping[str, str]] = None,
                            ) -> None:
    """Fire any environment-specified fault targeting one of ``keys``.

    Called by supervised shard workers at entry with the unit's block
    keyspace.  A no-op unless :data:`PROCESS_FAULT_ENV` is set, so the
    production path never pays more than one dict lookup.
    """
    raw = (environ if environ is not None else os.environ).get(
        PROCESS_FAULT_ENV)
    if not raw:
        return
    spec = json.loads(raw)
    counter_dir = spec.get("counter_dir")
    keyset = {int(key) for key in keys}
    for fault in spec.get("faults", []):
        if fault.get("after_windows") is not None:
            continue  # streaming-deferred: fires via StreamingFaultPlan
        if int(fault.get("block", -1)) not in keyset:
            continue
        if not _consume_fault_attempt(fault, counter_dir):
            continue
        _fire_process_fault(fault)


class StreamingFaultPlan:
    """Armed window-deferred faults for one live partition worker.

    Built by :func:`load_streaming_faults` at worker entry; the worker
    calls :meth:`on_windows` with its detector's cumulative
    ``windows_closed`` after feeding each observation.  One-shot kinds
    (crash/hang/rss) fire at most once per process and burn their
    cross-process ``times`` charge through the same counter files as
    batch faults; the ``slow`` kind re-fires at every new window past
    its threshold, since its whole purpose is sustained drag.
    """

    def __init__(self, faults: List[Dict[str, Any]],
                 counter_dir: Optional[str]) -> None:
        self._faults = [dict(fault) for fault in faults]
        self._counter_dir = counter_dir
        self._slow_fired_at: Dict[int, int] = {}

    def __bool__(self) -> bool:
        return bool(self._faults)

    def on_windows(self, windows_closed: int) -> None:
        """Fire every armed fault whose window threshold is reached."""
        for index, fault in enumerate(self._faults):
            if windows_closed < int(fault["after_windows"]):
                continue
            if fault.get("kind") == "slow":
                if self._slow_fired_at.get(index) == windows_closed:
                    continue
                self._slow_fired_at[index] = windows_closed
                time.sleep(float(fault.get("seconds", 0.05)))
                continue
            if fault.get("_spent"):
                continue
            fault["_spent"] = True
            if not _consume_fault_attempt(fault, self._counter_dir):
                continue
            _fire_process_fault(fault)


def load_streaming_faults(keys: Iterable[int],
                          environ: Optional[Mapping[str, str]] = None,
                          ) -> Optional[StreamingFaultPlan]:
    """The window-deferred faults targeting a partition's keyspace.

    Streaming counterpart of :func:`activate_process_faults`: returns
    None (one dict lookup, no JSON parse on the common path) unless
    :data:`PROCESS_FAULT_ENV` names a deferred fault whose block the
    partition owns.
    """
    raw = (environ if environ is not None else os.environ).get(
        PROCESS_FAULT_ENV)
    if not raw:
        return None
    spec = json.loads(raw)
    keyset = {int(key) for key in keys}
    faults = [fault for fault in spec.get("faults", [])
              if fault.get("after_windows") is not None
              and int(fault.get("block", -1)) in keyset]
    if not faults:
        return None
    return StreamingFaultPlan(faults, spec.get("counter_dir"))

"""Supervised partitioned live detection.

The deployment-shaped counterpart of :mod:`repro.parallel`: where the
batch path shards a *bounded* window and can re-run any shard from its
input, the live path consumes an *unbounded* stream, so containment has
to restart a failed partition from its last checkpoint and replay only
the gap — bisection would mean replaying the whole stream per probe.

Three layers:

:class:`LiveBlockEngine`
    One :class:`~repro.core.detector.StreamingDetector` plus its
    reorder buffer and rolling drift auditor.  The single-process CLI
    path and every partition worker run the *same* engine, which is
    what makes the partitioned≡single equivalence contract testable
    rather than aspirational.

``_live_worker_entry``
    Child-process entry point for one partition: restores the engine
    from its rotated checkpoint (detector state, reorder buffer,
    drift auditor, replay cursor), consumes sequence-numbered
    observation batches from the parent, checkpoints on a stream-time
    cadence, and reports heartbeats with its watermark and replay
    cursor.

:class:`LivePartitionSupervisor`
    The parent: plans partitions over the model's block population with
    the same deterministic plan algebra as the batch path
    (:func:`~repro.parallel.plan_shards` — the plan is a function of
    the population, never of worker count), routes capture records to
    their owning partition with per-partition sequence numbers and the
    *global* stream front attached, classifies failures as
    crash/hang/oom exactly like :class:`~repro.parallel.ShardSupervisor`,
    restarts a failed partition from its checkpoint without touching
    siblings, and merges per-partition results/health/telemetry into
    one population-wide report whose ``accounts_for`` holds over the
    full live population.  A partition that exhausts its restart
    budget is dead-lettered as lost coverage — the run completes
    *degraded* rather than dying.

Equivalence contract.  A partitioned run emits bit-identical events,
health verdicts, and stream-semantic counters to a single-process run
of the same capture:

- Partition streams preserve capture order per key, and every
  per-block decision (bins, beliefs, transitions, drift audits, hot
  swaps) depends only on that key's arrival prefix.
- Each worker's reorder buffer is driven by the *global* stream front
  (shipped with every routed record via
  :meth:`~repro.telescope.reorder.ReorderBuffer.advance_front`), so a
  sparse partition's buffer releases records and judges lateness
  exactly like the single global buffer restricted to its keys.
- One sentinel runs parent-side over the whole tap (feed health is a
  property of the vantage, not of any partition's slice) and its
  verdict is passed into every worker's ``finalize``.

Wall-clock-dependent telemetry (stage seconds, watermark-lag and
occupancy gauges, checkpoint counts) legitimately differs between
runs; the chaos suite compares the deterministic counters only.
"""

from __future__ import annotations

import contextlib
import heapq
import json
import math
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .core.checkpoint import (
    CheckpointFormatError,
    load_checkpoint_rotated,
    save_checkpoint_rotated,
)
from .core.detector import (
    BlockResult,
    StreamingDetector,
    dead_letter_metric,
    guardrail_metric,
)
from .core.drift import RollingRateAuditor, retune_block
from .core.health import (
    ErrorBudget,
    ErrorBudgetExceeded,
    RunHealthReport,
    ShardAttemptRecord,
    SourceHealth,
    fold_lost_coverage,
)
from .core.parameters import ParameterPlanner
from .core.pipeline import TrainedModel
from .core.sentinel import SentinelConfig, VantageSentinel
from .core.serialize import (
    atomic_write_text,
    block_result_from_dict,
    block_result_to_dict,
    model_blocks_from_dict,
    model_blocks_to_dict,
)
from .net.addr import Family
from .obs.explain import NULL_EXPLAIN, ExplainLog, resolve_explain
from .obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    diff_snapshots,
    negate_snapshot,
    resolve_registry,
)
from .obs.tracing import NULL_TRACER, SpanTracer, resolve_tracer
from .parallel import (
    ShardFatalError,
    ShardWorkerError,
    SupervisionPolicy,
    _OUTCOME_ERRORS,
    _backoff_delay,
    _ensure_child_import_path,
    _plan_digest,
    _process_rss_mb,
    plan_shards,
)
from .telescope.capture import CaptureReader
from .telescope.records import Observation, TaggedObservation
from .telescope.reorder import LatePolicy, ReorderBuffer

__all__ = [
    "DriftConfig",
    "LiveBlockEngine",
    "LiveRunResult",
    "LivePartitionStatus",
    "LivePartitionSupervisor",
    "LiveStatus",
    "merge_tagged_captures",
    "run_partitioned_live",
    "LIVE_MANIFEST_FORMAT",
]

#: format stamp of the live-run manifest (``live-manifest.json`` in the
#: checkpoint directory) — ``repro-outage inspect`` dispatches on it.
LIVE_MANIFEST_FORMAT = "repro-live-manifest-v1"

_PROCESS_FAULT_ENV = "REPRO_PROCESS_FAULTS"

#: routed rows per ``("obs", rows)`` message.
_BATCH_ROWS = 256
#: sent-but-unacknowledged batches per partition before the parent
#: stops sending and services the fleet instead.  Deliberately small:
#: two pickled batches fit well inside an OS pipe buffer, so the
#: parent's ``send`` never blocks on a hung worker — it must stay free
#: to *detect* the hang instead of joining it.
_MAX_INFLIGHT_BATCHES = 2


@dataclass(frozen=True)
class DriftConfig:
    """Rolling drift audit settings for the live path.

    Every ``audit_every`` stream-seconds the engine compares each
    quiet, currently-up block's observed arrival rate over the
    trailing ``window_seconds`` against its trained rate; a block
    outside ``[rate/drift_factor, rate*drift_factor]`` is re-estimated
    from exactly that trailing window and the replacement model is
    hot-swapped in at the block's next bin boundary.
    """

    audit_every: float
    window_seconds: Optional[float] = None
    drift_factor: float = 2.0
    min_arrivals: int = 20
    learn_diurnal: bool = True

    def __post_init__(self) -> None:
        if self.audit_every <= 0:
            raise ValueError("audit_every must be positive")


class LiveBlockEngine:
    """One streaming detector with its reorder buffer and drift auditor.

    The shared per-process live engine: the single-process CLI path
    runs one over the whole population; each partition worker runs one
    over its slice.  All stream-order-sensitive logic lives here —
    audit boundaries are checked *before* each released record is
    observed, and arrivals are noted *after*, so both deployment
    shapes make identical per-block decisions on identical per-block
    input.
    """

    def __init__(
        self,
        detector: StreamingDetector,
        buffer: Optional[ReorderBuffer] = None,
        drift: Optional[DriftConfig] = None,
        planner: Optional[ParameterPlanner] = None,
        fault_plan: Optional[Any] = None,
        monitor_feed: str = "raw",
        advance_every: Optional[float] = None,
    ) -> None:
        self.detector = detector
        self.buffer = buffer
        self.drift = drift
        self.planner = planner or ParameterPlanner()
        self.fault_plan = fault_plan
        # A fused detector's vantage monitors judge the *raw* tap (feed
        # health includes the disorder and lag the reorder buffer
        # hides), so the engine takes the monitor feed away from
        # observe_from and drives it in feed() — or, in a partition
        # worker ("external"), leaves it to the parent's shipped
        # sentinel-bin counts.
        if monitor_feed not in ("raw", "external"):
            raise ValueError(f"unknown monitor_feed {monitor_feed!r}")
        self._fused = hasattr(detector, "observe_from")
        self._raw_monitors = self._fused and monitor_feed == "raw"
        if self._fused:
            detector.inline_monitors = False
        self.auditor: Optional[RollingRateAuditor] = None
        if drift is not None:
            self.auditor = RollingRateAuditor(
                detector.start, drift.audit_every,
                window_seconds=drift.window_seconds,
                drift_factor=drift.drift_factor,
                min_arrivals=drift.min_arrivals)
        # Advance cadence: a stream-time grid on which the engine calls
        # ``detector.advance`` so simultaneous bin closes take the
        # columnar batched path instead of trickling out one block at a
        # time through per-packet catch-up.  ``None`` auto-derives the
        # finest tuned bin (every block boundary lands on a multiple of
        # it under the planner's ladder); pass ``<= 0`` to disable.
        # Partition workers receive the cadence explicitly from the
        # supervisor — computed over the FULL model — because a slice's
        # own minimum may differ and the advance grid must be identical
        # in both deployment shapes.
        if advance_every is None:
            bins = [state.params.bin_seconds
                    for state in detector._states.values()]
            cadence = float(min(bins)) if bins else None
        else:
            cadence = (float(advance_every) if advance_every > 0 else None)
        self.advance_every = cadence
        self._next_advance: Optional[float] = None
        if cadence is not None:
            # First grid point strictly after the detector clock, so a
            # restored engine resumes on the same grid it was killed on.
            steps = math.floor(
                (detector.last_time - detector.start) / cadence) + 1
            self._next_advance = detector.start + steps * cadence
        #: released records actually observed (the CLI's "replayed" count).
        self.observed = 0
        metrics = detector.metrics
        self._m_flagged = metrics.counter(
            "drift_blocks_flagged_total",
            "Blocks flagged as drifted by the rolling rate audit")
        self._m_failed = metrics.counter(
            "drift_retunes_failed_total",
            "Drift retunes abandoned (poisoned window or unmeasurable "
            "replacement)")

    def feed(self, observation: Observation) -> None:
        """Push one raw record; process whatever the buffer releases."""
        if self._raw_monitors and observation.time >= self.detector.start:
            vantage = getattr(observation, "vantage", "")
            if vantage:
                self.detector.note_arrival(vantage, observation.time)
        if self.buffer is not None:
            for ready in self.buffer.push(observation):
                self._process(ready)
        else:
            self._process(observation)

    def advance_front(self, front: float) -> None:
        """Advance the buffer watermark from the global stream front.

        Non-finite fronts are ignored: the first routed record carries
        the global front *before* anything was seen, which is -inf.
        """
        if self.buffer is not None and math.isfinite(front):
            for ready in self.buffer.advance_front(front):
                self._process(ready)

    def flush(self) -> None:
        """Drain the buffer at end of stream."""
        if self.buffer is not None:
            for ready in self.buffer.flush():
                self._process(ready)

    def checkpoint_extra(self, seq: Optional[int] = None,
                         ) -> Optional[Dict[str, Any]]:
        """Engine state that rides in the checkpoint's ``extra`` slot."""
        extra: Dict[str, Any] = {}
        if seq is not None:
            extra["seq"] = int(seq)
        if self.buffer is not None:
            extra["reorder"] = self.buffer.state_dict()
        if self.auditor is not None:
            extra["drift"] = self.auditor.to_dict()
        return extra or None

    def restore(self, extra: Optional[Mapping[str, Any]],
                buffer_state: bool = True) -> None:
        """Rehydrate buffer/auditor state from a checkpoint's ``extra``.

        ``buffer_state=False`` skips the reorder buffer: the
        single-process resume path replays the capture by *time* (its
        skipped records include everything that was buffered), so
        restoring the buffer there would process those records twice.
        The seq-replaying partition worker restores it.
        """
        if not extra:
            return
        if (buffer_state and self.buffer is not None
                and extra.get("reorder") is not None):
            self.buffer.restore_state(extra["reorder"])
        if self.auditor is not None and extra.get("drift") is not None:
            self.auditor = RollingRateAuditor.from_dict(extra["drift"])

    # -- stream-order core --------------------------------------------------

    def _process(self, observation: Observation) -> None:
        auditor = self.auditor
        # Fire every advance-grid point and audit boundary the stream
        # just crossed, in ascending stream-time order, *before*
        # observing the record that crossed them: all arrivals < B are
        # in, none >= B — the same cut both deployment shapes see
        # regardless of how the population is partitioned.  Advances
        # win ties so an audit at B reads block state with every bin
        # boundary <= B already closed (identical in both shapes, since
        # the supervisor ships the single cadence grid to all workers).
        while True:
            next_advance = self._next_advance
            due_advance = (next_advance is not None
                           and observation.time >= next_advance)
            due_audit = (auditor is not None
                         and observation.time >= auditor.next_boundary)
            if due_advance and (not due_audit
                                or next_advance <= auditor.next_boundary):
                self.detector.advance(next_advance)
                self._next_advance = next_advance + self.advance_every
            elif due_audit:
                boundary = auditor.next_boundary
                self._audit(boundary)
                auditor.next_boundary = boundary + auditor.audit_every
            else:
                break
        vantage = getattr(observation, "vantage", "")
        if vantage and self._fused:
            self.detector.observe_from(vantage, observation)
        else:
            self.detector.observe(observation)
        self.observed += 1
        if (auditor is not None
                and observation.family is self.detector.family):
            key = observation.block_key
            if key in self.detector._states:
                auditor.note(key, observation.time)
        if self.fault_plan is not None:
            self.fault_plan.on_windows(self.detector.windows_closed)

    def _audit(self, boundary: float) -> None:
        detector = self.detector
        auditor = self.auditor
        assert auditor is not None
        window_start = boundary - auditor.window_seconds

        def eligible(key: int) -> bool:
            state = detector._states.get(key)
            if state is None or not state.belief.is_up:
                return False  # quarantined/untracked, or mid-outage
            # A transition inside the window means the rate change has
            # an explanation the detector already acted on.
            return all(t < window_start for t, _ in state.transitions)

        def trained_rate(key: int) -> Optional[float]:
            state = detector._states.get(key)
            return None if state is None else state.history.mean_rate

        drifted = auditor.audit(boundary, eligible, trained_rate)
        for key in sorted(drifted):
            self._m_flagged.inc()
            times = [t for t in auditor.arrivals(key)
                     if window_start <= t < boundary]
            learn_diurnal = (self.drift.learn_diurnal
                             if self.drift is not None else True)
            try:
                history, params = retune_block(
                    times, window_start, boundary, planner=self.planner,
                    learn_diurnal=learn_diurnal)
            except Exception:
                self._m_failed.inc()
                continue
            if not detector.hot_swap(key, history, params):
                self._m_failed.inc()


# ---------------------------------------------------------------------------
# partition worker
# ---------------------------------------------------------------------------


def _live_worker_entry(payload: Dict[str, Any], conn: Any) -> None:
    """Child-process entry point for one live partition.

    Protocol (parent -> worker): ``("obs", rows)`` where each row is
    ``(seq, time, family, source, qtype, front)``; ``("finalize", end,
    windows)``; ``("shutdown",)``.  Worker -> parent: ``("hello",
    {...})`` once ready (carrying the checkpointed replay cursor),
    ``("hb", {...})`` after every obs batch, ``("final", document)``,
    ``("bye", {...})`` after a shutdown checkpoint, ``("fatal",
    message)`` for an escaping exception (a harness bug, not a block
    fault — per-block faults are dead-lettered inside the detector).

    Module-level so spawn can pickle it.
    """
    try:
        registry = MetricsRegistry()
        tracer = (SpanTracer.from_context(payload.get("trace_ctx"))
                  if payload.get("traced") else NULL_TRACER)
        explain = (ExplainLog() if payload.get("explain") else NULL_EXPLAIN)
        # Heartbeat piggyback state: each heartbeat ships the registry
        # *delta* since the previous one under a monotone sequence
        # number, so the parent's fold is incremental and re-delivery
        # is detectable.  A None baseline makes the first delta the
        # full snapshot — exactly what the parent needs after it rolls
        # back a dead incarnation's contributions.
        ship_telemetry = bool(payload.get("ship_telemetry"))
        metrics_seq = 0
        metrics_baseline: Optional[Dict[str, Any]] = None
        explain_sent = 0
        # Serving-plane piggyback: per-block transition rows shipped in
        # heartbeats under the same at-least-once contract as metrics.
        # ``shipped`` counts per-incarnation; after a restart the full
        # checkpointed history re-ships and the parent-side consumer
        # applies it idempotently (strictly increasing time per block).
        ship_transitions = bool(payload.get("ship_transitions"))
        shipped_transitions: Dict[int, int] = {}
        family = Family(payload["family"])
        start = float(payload["start"])
        checkpoint_path = payload.get("checkpoint")
        keep = int(payload.get("keep", 3))
        checkpoint_every = float(payload.get("checkpoint_every", 3600.0))
        horizon = float(payload.get("horizon", 0.0))
        drift: Optional[DriftConfig] = payload.get("drift")
        fusion = payload.get("fusion")

        detector: Optional[StreamingDetector] = None
        resumed = False
        fused_names: List[str] = []
        if fusion:
            # Fused partition: one per-source sliced model each, the
            # monitors driven externally by parent-shipped sentinel-bin
            # counts (vantage health is a whole-tap property no
            # partition can judge from its slice alone).
            from .fusion import (
                FusedModel,
                FusedStreamingDetector,
                fused_detector_from_json,
            )
            fused_names = list(fusion["sources"])
            sources: Dict[str, TrainedModel] = {}
            for name in fused_names:
                s_histories, s_parameters = model_blocks_from_dict(
                    fusion["blocks"][name])
                t_start, t_end = fusion["train"][name]
                sources[name] = TrainedModel(
                    family=family, histories=s_histories,
                    parameters=s_parameters, train_start=float(t_start),
                    train_end=float(t_end))
            fused_model = FusedModel(family=family, sources=sources,
                                     primary=fusion["primary"])
            if checkpoint_path and payload.get("resume", True):
                try:
                    with tracer.span("partition_restore",
                                     unit=payload["unit"]):
                        detector = load_checkpoint_rotated(
                            checkpoint_path, fused_model, keep=keep,
                            loader=lambda text: fused_detector_from_json(
                                text, fused_model, metrics=registry))
                    resumed = True
                except (FileNotFoundError, CheckpointFormatError):
                    detector = None
            if detector is None:
                detector = FusedStreamingDetector(
                    fused_model, start, max_quarantine_frac=1.0,
                    metrics=registry)
        else:
            histories, parameters = model_blocks_from_dict(
                payload["blocks"])
            if checkpoint_path and payload.get("resume", True):
                model = TrainedModel(family=family, histories=histories,
                                     parameters=parameters,
                                     train_start=start, train_end=start)
                try:
                    with tracer.span("partition_restore",
                                     unit=payload["unit"]):
                        detector = load_checkpoint_rotated(
                            checkpoint_path, model, metrics=registry,
                            keep=keep)
                    resumed = True
                except (FileNotFoundError, CheckpointFormatError):
                    detector = None
            if detector is None:
                detector = StreamingDetector(
                    family, histories, parameters, start, sentinel=None,
                    max_quarantine_frac=1.0, metrics=registry)
        # The error budget is the parent's verdict over the merged
        # population; a partition never vetoes its own slice.
        detector.budget = ErrorBudget(1.0)
        # Provenance is per-incarnation state (checkpoints do not carry
        # it): install after restore, same object either way.
        detector.explain = explain

        buffer = (ReorderBuffer(horizon, LatePolicy(payload["late_policy"]),
                                metrics=registry)
                  if horizon > 0 else None)
        fault_plan = None
        if os.environ.get(_PROCESS_FAULT_ENV):
            # Chaos-suite channel, lazy so production never imports it.
            from .testing.faults import load_streaming_faults
            fault_plan = load_streaming_faults(payload.get("keys", ()))
        engine = LiveBlockEngine(detector, buffer=buffer, drift=drift,
                                 fault_plan=fault_plan,
                                 monitor_feed="external",
                                 advance_every=payload.get("advance_every",
                                                           0.0))
        last_seq = -1
        if resumed and detector.restored_extra:
            last_seq = int(detector.restored_extra.get("seq", -1))
            engine.restore(detector.restored_extra, buffer_state=True)
        checkpoint_seq = last_seq
        next_checkpoint = (detector.last_time + checkpoint_every
                           if checkpoint_path else float("inf"))

        conn.send(("hello", {"seq": last_seq, "resumed": resumed}))
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return  # parent died; nothing sane left to do
            kind = message[0]
            if kind == "obs":
                for row in message[1]:
                    seq = row[0]
                    if seq <= last_seq:
                        continue  # replayed duplicate, already accounted
                    if row[1] is None:
                        # Vantage sentinel-bin count from the parent:
                        # (seq, None, vidx, bin_start, count, front,
                        # closed).  Feed the whole-tap bin into this
                        # partition's monitor copy, then close it (the
                        # end-of-stream partial bin stays open) —
                        # exactly what a single-process engine's raw
                        # tap would do at this stream position.
                        _, _, vidx, bin_start, count, front, closed = row
                        monitor = detector.monitors[fused_names[vidx]]
                        if count:
                            monitor.observe_bulk(bin_start, count)
                        if closed:
                            monitor.advance(
                                bin_start
                                + monitor.sentinel.config.bin_seconds)
                        engine.advance_front(front)
                    elif fusion:
                        seq, when, fam, source, qtype, front, vidx = row
                        engine.advance_front(front)
                        engine.feed(TaggedObservation(
                            when, Family(fam), source, qtype,
                            fused_names[vidx]))
                    else:
                        seq, when, fam, source, qtype, front = row
                        engine.advance_front(front)
                        engine.feed(Observation(when, Family(fam), source,
                                                qtype))
                    last_seq = seq
                    if detector.last_time >= next_checkpoint:
                        with tracer.span("partition_checkpoint",
                                         unit=payload["unit"]):
                            save_checkpoint_rotated(
                                detector, checkpoint_path, keep=keep,
                                extra=engine.checkpoint_extra(seq=last_seq))
                        checkpoint_seq = last_seq
                        next_checkpoint = (detector.last_time
                                           + checkpoint_every)
                heartbeat: Dict[str, Any] = {
                    "seq": last_seq,
                    "ckpt_seq": checkpoint_seq,
                    "watermark": detector.last_time,
                    "windows": detector.windows_closed,
                    "swaps": len(detector.retuned),
                }
                if ship_telemetry:
                    metrics_seq += 1
                    current = registry.snapshot()
                    heartbeat["metrics_seq"] = metrics_seq
                    heartbeat["metrics_delta"] = diff_snapshots(
                        current, metrics_baseline)
                    metrics_baseline = current
                if ship_transitions:
                    from .serve.bridge import fresh_transitions
                    rows = fresh_transitions(detector, shipped_transitions)
                    if rows:
                        heartbeat["transitions"] = rows
                if explain.enabled:
                    fresh = explain.events_since(explain_sent)
                    if fresh:
                        heartbeat["explain"] = fresh
                        explain_sent = fresh[-1]["seq"]
                conn.send(("hb", heartbeat))
            elif kind == "finalize":
                end, windows = float(message[1]), message[2]
                with tracer.span("partition_finalize",
                                 unit=payload["unit"], end=end):
                    engine.flush()
                    if fusion:
                        # quarantined=None: the fused detector derives
                        # the all-dark intersection from its own
                        # monitors, which hold identical whole-tap
                        # state in every partition.
                        results = detector.finalize(end)
                    else:
                        results = detector.finalize(
                            end, quarantined=[(float(s), float(e))
                                              for s, e in windows])
                    if checkpoint_path:
                        save_checkpoint_rotated(
                            detector, checkpoint_path, keep=keep,
                            extra=engine.checkpoint_extra(seq=last_seq))
                document: Dict[str, Any] = {
                    "index": payload["index"],
                    "results": [block_result_to_dict(results[key])
                                for key in sorted(results)],
                    "health": detector.last_health.as_dict(),
                    "swaps": sorted(detector.retuned),
                    "windows": detector.windows_closed,
                    "metrics": registry.snapshot(),
                }
                if ship_telemetry:
                    metrics_seq += 1
                    document["metrics_seq"] = metrics_seq
                    document["metrics_delta"] = diff_snapshots(
                        document["metrics"], metrics_baseline)
                if ship_transitions:
                    from .serve.bridge import fresh_transitions
                    rows = fresh_transitions(detector, shipped_transitions)
                    if rows:
                        document["transitions"] = rows
                if tracer.enabled:
                    document["spans"] = tracer.export_spans()
                if explain.enabled:
                    tail = explain.events_since(explain_sent)
                    if tail:
                        document["explain"] = tail
                if buffer is not None:
                    stats = buffer.stats
                    document["reorder"] = {
                        "out_of_order": stats.out_of_order,
                        "late_dropped": stats.late_dropped,
                    }
                conn.send(("final", document))
                return
            elif kind == "shutdown":
                if checkpoint_path:
                    save_checkpoint_rotated(
                        detector, checkpoint_path, keep=keep,
                        extra=engine.checkpoint_extra(seq=last_seq))
                conn.send(("bye", {"seq": last_seq}))
                return
    except BaseException as error:  # noqa: BLE001 — verdict must cross
        try:
            conn.send(("fatal", f"{type(error).__name__}: {error}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# parent supervisor
# ---------------------------------------------------------------------------


@dataclass
class _LivePartition:
    """Parent-side bookkeeping for one partition."""

    index: int
    unit: str
    keys: List[int]
    measurable: List[int]
    process: Any = None
    conn: Any = None
    status: str = "pending"          # pending|running|done|lost|interrupted
    hello: bool = False
    attempts: List[str] = field(default_factory=list)
    next_seq: int = 0                # next seq to assign at route time
    sent_seq: int = -1               # last seq sent to this incarnation
    acked_seq: int = -1              # last seq the worker heartbeat ack'd
    ckpt_seq: int = -1               # last seq safely in a checkpoint
    watermark: float = 0.0
    windows: int = 0
    swaps: int = 0
    #: rows not yet covered by a checkpoint: ``(seq, t, fam, src, qt,
    #: front)``, pruned as ``ckpt_seq`` advances, replayed after a
    #: restart.
    replay: Deque[Tuple[int, float, int, int, int, float]] = field(
        default_factory=deque)
    #: rows routed but not yet sent to the current worker incarnation
    #: (rebuilt from ``replay`` after a restart).
    outbox: Deque[Tuple[int, float, int, int, int, float]] = field(
        default_factory=deque)
    #: last seqs of sent-but-unacked batches (backpressure window).
    unacked: Deque[int] = field(default_factory=deque)
    restart_at: Optional[float] = None
    last_message_at: float = 0.0
    finalize_sent: bool = False
    document: Optional[Dict[str, Any]] = None
    last_failure: str = "crash"
    #: last heartbeat metrics-delta sequence folded into the parent
    #: registry (0 = none yet; the worker numbers deltas from 1), the
    #: re-delivery guard for the incremental telemetry fold.
    folded_metrics_seq: int = 0
    #: last worker-side explain-event seq folded (same guard shape).
    explain_folded_seq: int = 0
    #: shadow registry holding exactly what this incarnation's deltas
    #: contributed to the parent registry — negated on restart so the
    #: respawned worker (whose first delta re-ships its checkpointed
    #: state) cannot double-count.
    shadow: Optional[Any] = None

    @property
    def failures(self) -> int:
        return sum(1 for outcome in self.attempts if outcome != "ok")

    def checkpoint_file(self, directory: str) -> str:
        return os.path.join(directory, f"partition-{self.unit}.ckpt.json")


@dataclass(frozen=True)
class LivePartitionStatus:
    """Point-in-time public view of one partition (see ``LiveStatus``)."""

    index: int
    unit: str
    status: str                      # pending|running|done|lost|interrupted
    watermark: float
    restarts: int
    windows: int
    drift_swaps: int
    outcomes: Tuple[str, ...]
    keys: Tuple[int, ...]
    measurable_keys: Tuple[int, ...]

    @property
    def blocks(self) -> int:
        return len(self.keys)

    @property
    def measurable(self) -> int:
        return len(self.measurable_keys)


@dataclass(frozen=True)
class LiveStatus:
    """Programmatic run status — the manifest's single source of truth.

    :meth:`LivePartitionSupervisor.live_status` returns one; both the
    on-disk manifest and the ``/health`` document are derived from it,
    so an in-process consumer (the serving plane's bridge, a test)
    reads exactly what an external observer reads — agreement by
    construction, not by parallel bookkeeping.
    """

    status: str
    plan_digest: str
    family: int
    start: float
    #: newest record time routed so far; ``None`` before the first.
    stream_front: Optional[float]
    #: slowest non-lost partition watermark (the serving watermark).
    global_watermark: float
    observed: int
    restarts: int
    partitions: Tuple[LivePartitionStatus, ...]

    @property
    def lost_partitions(self) -> Tuple[LivePartitionStatus, ...]:
        return tuple(p for p in self.partitions if p.status == "lost")

    @property
    def lost_measurable_keys(self) -> Tuple[int, ...]:
        """Measurable keys whose coverage is dead-lettered, sorted."""
        return tuple(sorted(
            key for p in self.lost_partitions for key in p.measurable_keys))


@dataclass
class LiveRunResult:
    """Outcome of one partitioned live run."""

    results: Dict[int, BlockResult]
    health: RunHealthReport
    end: float
    interrupted: bool = False
    degraded: bool = False
    observed: int = 0                #: records routed to partitions
    unrouted: int = 0                #: records with no owning partition
    restarts: int = 0
    replayed_rows: int = 0           #: rows resent across all restarts
    records_read: int = 0
    stopped_early: bool = False
    sentinel_windows: List[Tuple[float, float]] = field(default_factory=list)
    sentinel_seconds: float = 0.0
    manifest_path: Optional[str] = None


class LivePartitionSupervisor:
    """Coordinate a fleet of partition workers over one live stream.

    One instance is one run: construct, :meth:`run`, inspect the
    returned :class:`LiveRunResult`.  Failure containment follows the
    batch :class:`~repro.parallel.ShardSupervisor` — crash (silent
    death), hang (no heartbeat past the deadline while work is
    outstanding), oom (RSS ceiling) — but recovery is
    restart-from-checkpoint with gap replay instead of bisection: the
    stream is unbounded, so "re-run the shard" is not an operation
    that exists.
    """

    def __init__(
        self,
        model: TrainedModel,
        *,
        partitions: Optional[int] = None,
        partition_chunk: Optional[int] = None,
        policy: Optional[SupervisionPolicy] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: float = 3600.0,
        checkpoint_keep: int = 3,
        reorder_horizon: float = 0.0,
        late_policy: LatePolicy = LatePolicy.COUNT,
        sentinel: bool = False,
        drift: Optional[DriftConfig] = None,
        advance_every: Optional[float] = None,
        max_quarantine_frac: float = 0.5,
        start: Optional[float] = None,
        metrics: Optional[Any] = None,
        tracer: Optional[Any] = None,
        explain: Optional[Any] = None,
        stop_requested: Optional[Callable[[], bool]] = None,
        status: Optional[Callable[[str], None]] = None,
        batch_rows: int = _BATCH_ROWS,
        on_transitions: Optional[
            Callable[[List[Tuple[int, float, bool]]], None]] = None,
        on_service: Optional[Callable[[], None]] = None,
    ) -> None:
        if partitions is not None and partitions <= 0:
            raise ValueError("partitions must be positive")
        if partition_chunk is not None and partition_chunk <= 0:
            raise ValueError("partition_chunk must be positive")
        if reorder_horizon < 0:
            raise ValueError("reorder_horizon must be >= 0")
        self.model = model
        self.policy = policy or SupervisionPolicy()
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = float(checkpoint_every)
        self.checkpoint_keep = int(checkpoint_keep)
        self.reorder_horizon = float(reorder_horizon)
        self.late_policy = late_policy
        self.drift = drift
        self.max_quarantine_frac = float(max_quarantine_frac)
        self.fused = hasattr(model, "sources")
        if self.fused:
            if sentinel:
                raise ValueError(
                    "fused live runs monitor every vantage through the "
                    "fusion layer's own sentinels; the single parent-side "
                    "sentinel does not apply")
            default_start = model.sources[model.primary].train_end
        else:
            default_start = model.train_end
        self.start = float(start if start is not None else default_start)
        self.metrics = resolve_registry(metrics)
        self.tracer = resolve_tracer(tracer)
        self.explain = resolve_explain(explain)
        self._stop = stop_requested or (lambda: False)
        self._status = status or (lambda line: None)
        self._batch_rows = int(batch_rows)
        #: serving-plane hooks (see ``repro.serve.bridge``): when
        #: ``on_transitions`` is set, workers ship per-block transition
        #: rows piggybacked on heartbeats; ``on_service`` fires once per
        #: supervision pass (publish cadence + lost-coverage polling).
        self.on_transitions = on_transitions
        self.on_service = on_service

        if self.fused:
            from .fusion import build_block_specs
            specs = build_block_specs(model)
            keys = sorted(specs)
            cadence_bins = [spec.params.bin_seconds
                            for spec in specs.values()]
        else:
            keys = sorted(model.parameters)
            cadence_bins = [params.bin_seconds
                            for params in model.parameters.values()
                            if params.measurable]
        # Advance cadence for every worker engine, derived over the
        # FULL model (a slice's own minimum bin may be coarser, and the
        # advance grid must match the single-process shape exactly).
        # 0.0 disables — shipped verbatim so workers never re-derive.
        if advance_every is None:
            self.advance_every = (float(min(cadence_bins))
                                  if cadence_bins else 0.0)
        else:
            self.advance_every = (float(advance_every)
                                  if advance_every > 0 else 0.0)
        if partition_chunk is not None:
            chunk = partition_chunk
        elif partitions is not None:
            chunk = max(1, -(-len(keys) // partitions))
        else:
            chunk = None
        shards = plan_shards(keys, chunk)
        # The plan hashes the population, not the worker count: the
        # same model partitions identically on every box, and the
        # backoff jitter below is seeded per (digest, unit).
        self.digest = _plan_digest("live", model.family, self.start,
                                   self.start, shards)
        measurable = set(keys) if self.fused else set(model.measurable_keys)
        self.partitions = [
            _LivePartition(
                index=index, unit=f"{index:05d}", keys=list(shard),
                measurable=[key for key in shard if key in measurable],
                watermark=self.start,
                shadow=(MetricsRegistry() if self.metrics.enabled
                        else None))
            for index, shard in enumerate(shards)
        ]
        self._owner = {key: partition.index
                       for partition in self.partitions
                       for key in partition.keys}
        self._ctx = multiprocessing.get_context("spawn")
        self._sentinel = (VantageSentinel(self.start, SentinelConfig())
                          .bind_metrics(self.metrics)
                          if sentinel else None)
        # The sentinel judges the same (released, time-sorted) stream
        # the single-process detector's sentinel sees; metrics are
        # NULL so this shadow buffer doesn't double the workers'
        # reorder counters.
        self._sentinel_buffer = (
            ReorderBuffer(self.reorder_horizon, self.late_policy,
                          metrics=NULL_REGISTRY)
            if sentinel and self.reorder_horizon > 0 else None)
        self._m_observations = self.metrics.counter(
            "stream_observations_total",
            "Observations fed to the streaming detector")
        # Fused runs: the parent tallies per-vantage arrivals over the
        # whole tap and ships one count row per closed sentinel bin to
        # every partition — vantage health is a global property, so
        # every worker holds the same monitor state.
        self._fused_names: List[str] = (list(model.source_names)
                                        if self.fused else [])
        self._planned_measurable = len(measurable)
        self._vbin_seconds = float(SentinelConfig().bin_seconds)
        self._vbin_start = self.start
        self._vbin_counts = [0] * len(self._fused_names)
        self._front = float("-inf")
        self._end = self.start
        self._observed = 0
        self._unrouted = 0
        self._replayed_rows = 0
        self._finalize_end: Optional[float] = None
        self._finalize_windows: List[Tuple[float, float]] = []
        self._run_status = "running"
        self._manifest_written_at = 0.0
        self.manifest_path = (
            os.path.join(checkpoint_dir, "live-manifest.json")
            if checkpoint_dir else None)

    # -- status / manifest --------------------------------------------------

    def live_status(self) -> LiveStatus:
        """Point-in-time :class:`LiveStatus` snapshot of the run.

        The single derivation both the on-disk manifest and the
        ``/health`` document are rendered from, and the programmatic
        accessor the serving plane's bridge polls.  Safe to call from
        another thread while the run mutates state: every field read is
        a single attribute load, so the view is consistent-enough
        without taking the supervisor's time.
        """
        front = self._front
        watermarks = [p.watermark for p in self.partitions
                      if p.status != "lost"]
        return LiveStatus(
            status=self._run_status,
            plan_digest=self.digest,
            family=int(self.model.family),
            start=self.start,
            stream_front=None if front == float("-inf") else front,
            global_watermark=(min(watermarks) if watermarks
                              else self.start),
            observed=self._observed,
            restarts=sum(p.failures for p in self.partitions),
            partitions=tuple(
                LivePartitionStatus(
                    index=p.index,
                    unit=p.unit,
                    status=p.status,
                    watermark=p.watermark,
                    restarts=p.failures,
                    windows=p.windows,
                    drift_swaps=p.swaps,
                    outcomes=tuple(p.attempts),
                    keys=tuple(p.keys),
                    measurable_keys=tuple(p.measurable),
                )
                for p in self.partitions
            ),
        )

    def _write_manifest(self, force: bool = False) -> None:
        if self.manifest_path is None:
            return
        now = time.monotonic()
        if not force and now - self._manifest_written_at < 1.0:
            return
        self._manifest_written_at = now
        status = self.live_status()
        document = {
            "format": LIVE_MANIFEST_FORMAT,
            "plan_digest": status.plan_digest,
            "family": status.family,
            "start": status.start,
            "status": status.status,
            "global_watermark": status.global_watermark,
            "partitions": [
                {
                    "index": p.index,
                    "unit": p.unit,
                    "blocks": p.blocks,
                    "measurable": p.measurable,
                    "status": p.status,
                    "watermark": p.watermark,
                    "restarts": p.restarts,
                    "outcomes": list(p.outcomes),
                    "windows": p.windows,
                    "drift_swaps": p.drift_swaps,
                    "checkpoint": f"partition-{p.unit}.ckpt.json",
                }
                for p in status.partitions
            ],
        }
        atomic_write_text(self.manifest_path,
                          json.dumps(document, indent=2, sort_keys=True))

    def health_document(self) -> Dict[str, Any]:
        """Liveness document for the ``/health`` endpoint.

        RunHealthReport-shaped top level (status / run / watermarks)
        plus one row per partition with its watermark lag behind the
        global stream front.  Rendered from :meth:`live_status`, so it
        cannot drift from the manifest or the programmatic accessor.
        """
        status = self.live_status()
        front = status.stream_front
        return {
            "status": status.status,
            "run": "fusion-stream" if self.fused else "streaming",
            "plan_digest": status.plan_digest,
            "start": status.start,
            "stream_front": front,
            "global_watermark": status.global_watermark,
            "observed": status.observed,
            "restarts": status.restarts,
            "partitions": [
                {
                    "index": p.index,
                    "unit": p.unit,
                    "status": p.status,
                    "watermark": p.watermark,
                    "watermark_lag": (max(0.0, front - p.watermark)
                                      if front is not None else None),
                    "restarts": p.restarts,
                    "windows": p.windows,
                    "drift_swaps": p.drift_swaps,
                }
                for p in status.partitions
            ],
        }

    # -- fleet lifecycle ----------------------------------------------------

    def _spawn(self, partition: _LivePartition) -> None:
        _ensure_child_import_path()
        payload = {
            "index": partition.index,
            "unit": partition.unit,
            "keys": list(partition.keys),
            "family": int(self.model.family),
            "start": self.start,
            "horizon": self.reorder_horizon,
            "late_policy": self.late_policy.value,
            "drift": self.drift,
            "advance_every": self.advance_every,
            "checkpoint": (partition.checkpoint_file(self.checkpoint_dir)
                           if self.checkpoint_dir else None),
            "checkpoint_every": self.checkpoint_every,
            "keep": self.checkpoint_keep,
            "resume": True,
            "ship_telemetry": self.metrics.enabled,
            "ship_transitions": self.on_transitions is not None,
            "traced": self.tracer.enabled,
            "trace_ctx": self.tracer.context(),
            "explain": self.explain.enabled,
        }
        if self.fused:
            # Per-source model slices restricted to this partition's
            # keys; the worker reassembles a FusedModel and re-derives
            # its block specs (specs are deterministic derived state).
            keys = set(partition.keys)
            payload["fusion"] = {
                "sources": list(self._fused_names),
                "primary": self.model.primary,
                "train": {
                    name: [source.train_start, source.train_end]
                    for name, source in self.model.sources.items()
                },
                "blocks": {
                    name: model_blocks_to_dict(
                        {key: source.histories[key]
                         for key in source.histories if key in keys},
                        {key: source.parameters[key]
                         for key in source.parameters if key in keys})
                    for name, source in self.model.sources.items()
                },
            }
        else:
            histories = {key: self.model.histories[key]
                         for key in partition.keys
                         if key in self.model.histories}
            parameters = {key: self.model.parameters[key]
                          for key in partition.keys}
            payload["blocks"] = model_blocks_to_dict(histories, parameters)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_live_worker_entry, args=(payload, child_conn),
            daemon=True)
        process.start()
        child_conn.close()
        partition.process = process
        partition.conn = parent_conn
        partition.status = "running"
        partition.hello = False
        partition.restart_at = None
        partition.unacked.clear()
        partition.last_message_at = time.monotonic()
        self._write_manifest()

    def _kill(self, partition: _LivePartition) -> None:
        process = partition.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(1.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        if partition.conn is not None:
            try:
                partition.conn.close()
            except Exception:
                pass
        partition.process = None
        partition.conn = None

    def _fail(self, partition: _LivePartition, outcome: str) -> None:
        self._kill(partition)
        partition.attempts.append(outcome)
        partition.hello = False
        partition.finalize_sent = False
        partition.unacked.clear()
        partition.outbox.clear()  # rebuilt from replay at the next hello
        partition.last_failure = outcome
        if partition.shadow is not None and partition.folded_metrics_seq:
            # Retract the dead incarnation's folded heartbeat deltas:
            # its replacement restores from a checkpoint *older* than
            # the last heartbeat, so its first delta re-ships state the
            # registry already counted.  The shadow holds exactly what
            # was folded, so subtracting it leaves the registry as if
            # this incarnation had never reported.
            self.metrics.merge_snapshot(
                negate_snapshot(partition.shadow.snapshot()))
            partition.shadow = MetricsRegistry()
        partition.folded_metrics_seq = 0
        # Explain events are an audit trail, not a counter: replayed
        # decisions after the restart are recorded again (both
        # sightings visible) rather than risking silent drops.
        partition.explain_folded_seq = 0
        if partition.failures <= self.policy.retries:
            delay = _backoff_delay(self.policy, self.digest, partition.unit,
                                   partition.failures)
            partition.restart_at = time.monotonic() + delay
            partition.status = "pending"
            # Marker span: restarts belong on the run's merged timeline.
            with self.tracer.span("partition_restart", unit=partition.unit,
                                  outcome=outcome,
                                  failures=partition.failures):
                pass
            self._status(f"partition {partition.unit} {outcome}; restarting "
                         f"from checkpoint in {delay:.2f}s "
                         f"(attempt {len(partition.attempts) + 1}/"
                         f"{self.policy.max_attempts})")
        else:
            partition.status = "lost"
            partition.replay.clear()
            partition.outbox.clear()
            self._status(f"partition {partition.unit} lost after "
                         f"{len(partition.attempts)} attempts "
                         f"[{','.join(partition.attempts)}]; its blocks "
                         f"are dead-lettered as lost coverage")
        self._write_manifest(force=True)

    # -- message plumbing ---------------------------------------------------

    def _handle(self, partition: _LivePartition,
                message: Tuple[Any, ...]) -> None:
        kind = message[0]
        partition.last_message_at = time.monotonic()
        if kind == "hello":
            info = message[1]
            resumed_seq = int(info.get("seq", -1))
            partition.hello = True
            partition.sent_seq = resumed_seq
            partition.acked_seq = resumed_seq
            partition.ckpt_seq = max(partition.ckpt_seq, resumed_seq)
            while (partition.replay
                   and partition.replay[0][0] <= partition.ckpt_seq):
                partition.replay.popleft()
            # Everything past the worker's checkpointed cursor is the
            # gap it missed: resend exactly that, nothing else.
            partition.outbox = deque(row for row in partition.replay
                                     if row[0] > resumed_seq)
            if partition.attempts:
                self._replayed_rows += len(partition.outbox)
        elif kind == "hb":
            info = message[1]
            partition.acked_seq = int(info["seq"])
            partition.ckpt_seq = max(partition.ckpt_seq,
                                     int(info["ckpt_seq"]))
            partition.watermark = float(info["watermark"])
            partition.windows = int(info["windows"])
            partition.swaps = int(info["swaps"])
            while (partition.unacked
                   and partition.unacked[0] <= partition.acked_seq):
                partition.unacked.popleft()
            while (partition.replay
                   and partition.replay[0][0] <= partition.ckpt_seq):
                partition.replay.popleft()
            self._fold_piggyback(partition, info)
            self._write_manifest()
        elif kind == "final":
            partition.document = message[1]
            self._fold_piggyback(partition, message[1])
            partition.attempts.append("ok")
            partition.status = "done"
            partition.watermark = (self._finalize_end
                                   if self._finalize_end is not None
                                   else partition.watermark)
            partition.windows = int(message[1].get("windows",
                                                   partition.windows))
            partition.swaps = len(message[1].get("swaps", []))
            if partition.process is not None:
                partition.process.join(1.0)
            self._kill(partition)
            self._write_manifest(force=True)
        elif kind == "bye":
            partition.status = "interrupted"
            if partition.process is not None:
                partition.process.join(1.0)
            self._kill(partition)
        elif kind == "fatal":
            # An escaping worker exception is a harness bug: retrying
            # deterministic code on the same replay would fail the same
            # way, so propagate instead of burning the restart budget.
            raise ShardWorkerError(
                f"live partition {partition.unit} worker raised: "
                f"{message[1]}")

    def _fold_piggyback(self, partition: _LivePartition,
                        info: Dict[str, Any]) -> None:
        """Fold a heartbeat's (or final document's) piggybacked telemetry.

        Metric deltas fold into the parent registry (and the
        partition's shadow, for restart rollback) guarded by the
        worker's monotone ``metrics_seq`` — a re-delivered delta is a
        no-op, which is the idempotence contract.  Explain events fold
        guarded by their own seq.
        """
        seq = int(info.get("metrics_seq", 0))
        if seq > partition.folded_metrics_seq:
            delta = info.get("metrics_delta")
            if delta is not None and self.metrics.enabled:
                self.metrics.merge_snapshot(delta)
                if partition.shadow is not None:
                    partition.shadow.merge_snapshot(delta)
            partition.folded_metrics_seq = seq
        events = info.get("explain")
        if events:
            fresh = [event for event in events
                     if int(event.get("seq", 0))
                     > partition.explain_folded_seq]
            if fresh:
                partition.explain_folded_seq = int(fresh[-1]["seq"])
                if self.explain.enabled:
                    self.explain.extend(fresh)
        rows = info.get("transitions")
        if rows and self.on_transitions is not None:
            # Forward verbatim; the consumer's apply is idempotent
            # (strictly increasing transition time per block), which
            # absorbs a restarted worker re-shipping its full history.
            self.on_transitions(
                [(int(key), float(when), bool(up))
                 for key, when, up in rows])

    def _pump(self, partition: _LivePartition) -> None:
        """Send pending rows (and a due finalize) to a worker."""
        if (partition.status != "running" or not partition.hello
                or partition.conn is None):
            return
        try:
            while (partition.outbox
                   and len(partition.unacked) < _MAX_INFLIGHT_BATCHES):
                batch = []
                while partition.outbox and len(batch) < self._batch_rows:
                    batch.append(partition.outbox.popleft())
                partition.conn.send(("obs", batch))
                partition.sent_seq = batch[-1][0]
                partition.unacked.append(partition.sent_seq)
            if (self._finalize_end is not None
                    and not partition.finalize_sent
                    and not partition.outbox):
                # Pipe FIFO ordering guarantees the worker sees every
                # routed row before the finalize cut.
                partition.conn.send(("finalize", self._finalize_end,
                                     self._finalize_windows))
                partition.finalize_sent = True
        except OSError:
            # The worker died between the liveness verdict and this
            # send.  Judge it here instead of crashing the supervisor:
            # every unacked row (including a half-sent batch) is still
            # in ``replay``, so the restart rebuilds the outbox intact.
            self._fail(partition, "crash")

    def _service(self) -> None:
        """One supervision pass: drain, judge, respawn, pump."""
        now = time.monotonic()
        for partition in self.partitions:
            if partition.status == "running" and partition.conn is not None:
                # Drain the pipe before the liveness verdict, so a
                # worker that finished and exited still delivers.
                try:
                    while (partition.conn is not None
                           and partition.conn.poll(0)):
                        self._handle(partition, partition.conn.recv())
                except (EOFError, OSError):
                    pass
                if partition.status != "running":
                    continue
                if (partition.process is not None
                        and not partition.process.is_alive()):
                    self._fail(partition, "crash")
                    continue
                outstanding = (bool(partition.unacked)
                               or (partition.finalize_sent
                                   and partition.document is None))
                if (self.policy.timeout is not None and outstanding
                        and now - partition.last_message_at
                        > self.policy.timeout):
                    self._fail(partition, "hang")
                    continue
                if (self.policy.max_rss_mb is not None
                        and partition.process is not None):
                    rss = _process_rss_mb(partition.process.pid)
                    if rss is not None and rss > self.policy.max_rss_mb:
                        self._fail(partition, "oom")
                        continue
            if (partition.status == "pending"
                    and partition.restart_at is not None
                    and now >= partition.restart_at):
                self._spawn(partition)
            self._pump(partition)
        if self.on_service is not None:
            # Serving-plane tick: fires even when every worker is dead
            # or silent, so the bridge can observe lost coverage and
            # let its published snapshot age honestly.
            self.on_service()

    # -- the run ------------------------------------------------------------

    def run(self, capture: Any, tolerant: bool = False) -> LiveRunResult:
        """Stream ``capture`` through the partition fleet and merge.

        For a fused model ``capture`` is a mapping ``{source name:
        capture path}`` with one entry per vantage; the per-vantage
        streams are merged by timestamp, exactly the stream a fused
        single-process engine would see on one tagged tap.
        """
        if self.fused:
            if not isinstance(capture, Mapping):
                raise TypeError("a fused live run takes a mapping of "
                                "{source name: capture path}")
            missing = [name for name in self._fused_names
                       if name not in capture]
            if missing:
                raise ValueError("no capture for vantage(s): "
                                 + ", ".join(sorted(missing)))
        # Dispatch under an open span so every worker's trace context
        # names it as the cross-process parent.
        with self.tracer.span("partition_dispatch",
                              partitions=len(self.partitions)):
            for partition in self.partitions:
                self._spawn(partition)
        self._write_manifest(force=True)
        interrupted = False
        records_read = 0
        stopped_early = False
        records = 0
        try:
            with contextlib.ExitStack() as stack:
                if self.fused:
                    readers = {
                        name: stack.enter_context(
                            CaptureReader(capture[name], tolerant=tolerant))
                        for name in self._fused_names
                    }
                    stream = _merge_readers(self._fused_names, readers)
                else:
                    reader = stack.enter_context(
                        CaptureReader(capture, tolerant=tolerant))
                    stream = ((None, observation) for observation in reader)
                for vidx, observation in stream:
                    if self._stop():
                        interrupted = True
                        break
                    if vidx is None:
                        self._route(observation)
                    else:
                        self._route_fused(vidx, observation)
                    records += 1
                    if records % 64 == 0:
                        self._service()
                if self.fused:
                    records_read = sum(r.records_read
                                       for r in readers.values())
                    stopped_early = any(r.stopped_early
                                        for r in readers.values())
                else:
                    records_read = reader.records_read
                    stopped_early = reader.stopped_early
            if not interrupted:
                self._finalize()
                interrupted = self._stop()
        except BaseException:
            # Capture errors and worker-propagated ShardWorkerError
            # alike: tear the fleet down hard, then let the caller see
            # the original failure.
            for partition in self.partitions:
                self._kill(partition)
            raise
        if interrupted:
            self._shutdown_fleet()
        with self.tracer.span("partition_merge",
                              partitions=len(self.partitions)):
            result = self._merge(interrupted)
        result.records_read = records_read
        result.stopped_early = stopped_early
        for partition in self.partitions:
            self._kill(partition)
        return result

    def _route(self, observation: Observation) -> None:
        when = observation.time
        if when < self.start:
            return  # training-window traffic, not live
        front_before = self._front
        self._front = max(self._front, when)
        self._end = max(self._end, when)
        if self._sentinel is not None:
            if self._sentinel_buffer is not None:
                for ready in self._sentinel_buffer.push(observation):
                    self._sentinel.observe(ready.time)
            else:
                self._sentinel.observe(when)
        index = (self._owner.get(observation.block_key)
                 if observation.family is self.model.family else None)
        if index is None:
            # The single-process detector counts (and ignores) records
            # it has no block for; count them here so the merged
            # counter matches.
            self._unrouted += 1
            self._m_observations.inc()
            return
        partition = self.partitions[index]
        if partition.status == "lost":
            return
        row = (partition.next_seq, when, int(observation.family),
               observation.source, observation.qtype, front_before)
        partition.next_seq += 1
        partition.replay.append(row)
        partition.outbox.append(row)
        self._observed += 1
        if len(partition.outbox) >= self._batch_rows:
            self._pump(partition)

    def _route_fused(self, vidx: int, observation: Observation) -> None:
        """Route one tagged record; ship vantage-bin closes in-band.

        Mirrors the single-process fused engine exactly: monitors see
        the *raw* tap (every record at or past ``start``, routable or
        not), and a sentinel bin closes the moment the raw stream
        reaches ``bin_start + bin_seconds`` — before the record that
        crossed the boundary is observed.  The count rows are
        sequence-numbered into every partition's stream, so replay
        after a restart reconstructs monitor state bit-for-bit.
        """
        when = observation.time
        if when < self.start:
            return  # training-window traffic, not live
        front_before = self._front
        while self._vbin_start + self._vbin_seconds <= when:
            for source_index, count in enumerate(self._vbin_counts):
                self._broadcast_vbin(source_index, self._vbin_start, count,
                                     front_before)
            self._vbin_counts = [0] * len(self._vbin_counts)
            self._vbin_start += self._vbin_seconds
        self._vbin_counts[vidx] += 1
        self._front = max(self._front, when)
        self._end = max(self._end, when)
        index = (self._owner.get(observation.block_key)
                 if observation.family is self.model.family else None)
        if index is None:
            self._unrouted += 1
            self._m_observations.inc()
            return
        partition = self.partitions[index]
        if partition.status == "lost":
            return
        row = (partition.next_seq, when, int(observation.family),
               observation.source, observation.qtype, front_before, vidx)
        partition.next_seq += 1
        partition.replay.append(row)
        partition.outbox.append(row)
        self._observed += 1
        if len(partition.outbox) >= self._batch_rows:
            self._pump(partition)

    def _broadcast_vbin(self, vidx: int, bin_start: float, count: int,
                        front: float, closed: bool = True) -> None:
        """Ship one vantage-sentinel bin count to every live partition.

        Zero-count closed bins are shipped too — an empty bin *is* the
        blind-vantage signal the monitors exist to catch.  The
        end-of-stream partial bin goes out with ``closed=False``: its
        arrivals count, but the bin stays open, exactly as in a
        single-process engine whose raw tap simply stopped.
        """
        for partition in self.partitions:
            if partition.status == "lost":
                continue
            row = (partition.next_seq, None, vidx, bin_start, count, front,
                   closed)
            partition.next_seq += 1
            partition.replay.append(row)
            partition.outbox.append(row)
            if len(partition.outbox) >= self._batch_rows:
                self._pump(partition)

    def _finalize(self) -> None:
        if self._sentinel is not None:
            if self._sentinel_buffer is not None:
                for ready in self._sentinel_buffer.flush():
                    self._sentinel.observe(ready.time)
            self._sentinel.advance(self._end)
            self._finalize_windows = self._sentinel.quarantined_intervals()
        if self.fused:
            for vidx, count in enumerate(self._vbin_counts):
                if count:
                    self._broadcast_vbin(vidx, self._vbin_start, count,
                                         self._front, closed=False)
            self._vbin_counts = [0] * len(self._vbin_counts)
        self._finalize_end = self._end
        while any(p.status in ("running", "pending")
                  for p in self.partitions):
            if self._stop():
                return
            self._service()
            if any(p.status in ("running", "pending")
                   for p in self.partitions):
                time.sleep(self.policy.poll_interval)

    def _shutdown_fleet(self) -> None:
        """Graceful stop: ask every live worker to checkpoint and exit."""
        deadline = time.monotonic() + 5.0
        for partition in self.partitions:
            if (partition.status == "running" and partition.hello
                    and partition.conn is not None):
                try:
                    partition.conn.send(("shutdown",))
                except (OSError, ValueError):
                    continue
        while (time.monotonic() < deadline
               and any(p.status == "running" for p in self.partitions)):
            for partition in self.partitions:
                if partition.status != "running" or partition.conn is None:
                    continue
                try:
                    while (partition.conn is not None
                           and partition.conn.poll(0)):
                        # "bye" flips the partition to interrupted; a
                        # "final" that races the shutdown still counts.
                        self._handle(partition, partition.conn.recv())
                except (EOFError, OSError, ShardWorkerError):
                    partition.status = "interrupted"
            time.sleep(self.policy.poll_interval)
        for partition in self.partitions:
            if partition.status == "running":
                partition.status = "interrupted"
            self._kill(partition)

    # -- merging ------------------------------------------------------------

    def _merge_fused_sources(self, documents: List[Dict[str, Any]]
                             ) -> Dict[str, SourceHealth]:
        sources: Dict[str, SourceHealth] = {}
        for document in documents:
            for name, entry in document["health"].get("sources",
                                                      {}).items():
                health = SourceHealth.from_dict(entry)
                existing = sources.get(name)
                if existing is None:
                    sources[name] = health
                else:
                    existing.gated_bins += health.gated_bins
                    existing.measurable_blocks += health.measurable_blocks
        return sources

    def _merge(self, interrupted: bool) -> LiveRunResult:
        documents = [p.document for p in self.partitions
                     if p.document is not None]
        results: Dict[int, BlockResult] = {}
        for document in documents:
            for entry in document["results"]:
                result = block_result_from_dict(entry)
                results[result.key] = result

        merged = RunHealthReport.merged(
            (RunHealthReport.from_dict(document["health"])
             for document in documents),
            run="fusion-stream" if self.fused else "streaming",
            max_quarantine_frac=self.max_quarantine_frac)
        if self.fused and documents:
            # Every fused partition holds an identical whole-tap copy
            # of each vantage's monitor, so the generic merge summed
            # the same observation/bin counters once per partition.
            # Rebuild: vantage-level fields from the first document,
            # per-partition accounting (gated bins, measurable blocks)
            # summed across documents.
            merged.sources = self._merge_fused_sources(documents)
        if self.tracer.enabled:
            for document in documents:
                self.tracer.import_spans(document.get("spans"))
        folded = any(p.folded_metrics_seq for p in self.partitions)
        if self.metrics.enabled:
            for partition in self.partitions:
                document = partition.document
                if document is None or partition.folded_metrics_seq:
                    # Nothing delivered, or this partition's counters
                    # arrived incrementally (heartbeat deltas plus the
                    # final delta) — the registry is already current,
                    # folding the full snapshot would double it.
                    continue
                snapshot = document.get("metrics")
                if snapshot is not None:
                    self.metrics.merge_snapshot(snapshot)
                    folded = True
            merged.dead_letters.bind(dead_letter_metric(self.metrics),
                                     backfill=not folded)
            merged.guardrails.bind(guardrail_metric(self.metrics),
                                   backfill=not folded)
        if self._sentinel is not None:
            merged.sentinel_windows = sorted(
                set(tuple(window) for window in self._finalize_windows))

        planned = self._planned_measurable
        lost_errors: Dict[int, BaseException] = {}
        for partition in self.partitions:
            if partition.status != "lost":
                continue
            error_cls = _OUTCOME_ERRORS.get(partition.last_failure,
                                            ShardFatalError)
            error = error_cls(
                f"live partition {partition.unit} kept dying "
                f"({partition.last_failure}) through "
                f"{len(partition.attempts)} attempts "
                f"[{','.join(partition.attempts)}]; its blocks were "
                f"dead-lettered as lost coverage")
            for key in partition.measurable:
                lost_errors[key] = error
        records = [
            ShardAttemptRecord(
                unit=partition.unit, outcomes=list(partition.attempts),
                status={"done": "done", "lost": "lost"}.get(
                    partition.status, "pending"))
            for partition in self.partitions
        ]
        fold_lost_coverage(merged, "stream", planned, lost_errors, records,
                           self.metrics if self.metrics.enabled else None)

        degraded = bool(lost_errors)
        self._run_status = ("interrupted" if interrupted
                            else "degraded" if degraded else "finalized")
        self._write_manifest(force=True)

        result = LiveRunResult(
            results=results, health=merged, end=self._end,
            interrupted=interrupted, degraded=degraded,
            observed=self._observed, unrouted=self._unrouted,
            restarts=sum(p.failures for p in self.partitions),
            replayed_rows=self._replayed_rows,
            sentinel_windows=list(merged.sentinel_windows),
            sentinel_seconds=(self._sentinel.quarantined_seconds()
                              if self._sentinel is not None else 0.0),
            manifest_path=self.manifest_path)
        if not interrupted:
            # The parent owns the budget verdict over the merged
            # population, exactly like the single-process finalize.
            try:
                ErrorBudget(self.max_quarantine_frac).check(
                    "stream", planned, len(merged.dead_letters))
            except ErrorBudgetExceeded as error:
                merged.budget_tripped = True
                error.report = merged
                raise
        return result


def _merge_readers(names: List[str],
                   readers: Mapping[str, CaptureReader]):
    """Time-merge per-vantage capture readers into ``(vidx, obs)`` rows.

    Ties break by vantage order then arrival position, so the merged
    order is a pure function of the capture files — both deployment
    shapes iterate the identical stream.
    """
    def stream(vidx: int, reader: CaptureReader):
        for position, observation in enumerate(reader):
            yield (observation.time, vidx, position, observation)

    merged = heapq.merge(*(stream(vidx, readers[name])
                           for vidx, name in enumerate(names)))
    for _, vidx, _, observation in merged:
        yield vidx, observation


def merge_tagged_captures(captures: Mapping[str, str],
                          order: Optional[List[str]] = None,
                          tolerant: bool = False):
    """Yield the time-merged union of per-vantage captures, tagged.

    The single-process fused ingest: each record comes back as a
    :class:`~repro.telescope.records.TaggedObservation` carrying its
    vantage name, so feeding the result through a
    :class:`LiveBlockEngine` over a fused detector consumes exactly
    the stream the partitioned supervisor ships to its fleet.
    """
    names = list(order) if order is not None else sorted(captures)
    with contextlib.ExitStack() as stack:
        readers = {
            name: stack.enter_context(
                CaptureReader(captures[name], tolerant=tolerant))
            for name in names
        }
        for vidx, observation in _merge_readers(names, readers):
            yield TaggedObservation(observation.time, observation.family,
                                    observation.source, observation.qtype,
                                    names[vidx])


def run_partitioned_live(model: TrainedModel, capture: Any,
                         tolerant: bool = False,
                         **kwargs: Any) -> LiveRunResult:
    """Convenience wrapper: build a supervisor and run one capture.

    ``capture`` is a path for a single-source model, or a mapping of
    ``{source name: path}`` for a fused model.
    """
    supervisor = LivePartitionSupervisor(model, **kwargs)
    return supervisor.run(capture, tolerant=tolerant)

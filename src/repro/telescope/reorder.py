"""Watermark/reorder buffer: out-of-order tolerance for the live feed.

A production vantage point does not deliver a perfectly sorted stream:
multi-queue NICs, per-CPU capture buffers, and multi-file merges all
introduce bounded local disorder.  The strict consumers downstream
(:func:`repro.telescope.stream.merge_streams` and
:class:`repro.core.detector.StreamingDetector`) reject a stream that
goes backwards, so the live path needs a re-sorting stage with an
explicit bound and an explicit policy for what happens beyond it.

:class:`ReorderBuffer` implements the classic watermark design: arrivals
are held in a min-heap, and a record is released only once the maximum
timestamp seen exceeds it by at least ``horizon_seconds`` — i.e. once
no in-horizon straggler can still precede it.  Records arriving *later*
than the watermark (more than a horizon behind the stream front) cannot
be re-sorted without unbounded memory; they are handled by a
:class:`LatePolicy` instead of a crash:

* ``ADMIT`` — emit the late record immediately, out of order.  The
  output is no longer monotone; use only for consumers that re-sort
  (e.g. a capture writer feeding the batch pipeline).
* ``COUNT`` — drop the record and account for it in :class:`ReorderStats`
  (the default: the detector never sees disorder, the operator sees the
  loss).
* ``DROP`` — drop it without distinct accounting (still tallied in
  ``late_total``).
* ``RAISE`` — fail loudly, for pipelines that prefer the old behaviour.

Within the horizon the buffer is *lossless and exact*: any input that is
a bounded permutation of a sorted stream is restored to that sorted
stream, which is what lets the fault-injection suite pin "10% reorder
within the horizon produces bit-identical events".
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..obs.metrics import resolve_registry
from .records import Observation, TaggedObservation

__all__ = ["LatePolicy", "ReorderStats", "ReorderBuffer", "reorder_stream"]


class LatePolicy(enum.Enum):
    """What to do with a record that arrives beyond the reorder horizon."""

    ADMIT = "admit"
    COUNT = "count"
    DROP = "drop"
    RAISE = "raise"


@dataclass
class ReorderStats:
    """Operational counters for one :class:`ReorderBuffer`."""

    pushed: int = 0
    emitted: int = 0
    out_of_order: int = 0  #: arrivals older than the previous arrival
    late_total: int = 0    #: arrivals strictly behind the watermark
                           #: (a tie with the watermark is on-time)
    late_admitted: int = 0
    late_dropped: int = 0
    max_displacement_seconds: float = 0.0
    occupancy_peak: int = 0  #: most records ever held back at once

    def as_dict(self) -> dict:
        return {
            "pushed": self.pushed,
            "emitted": self.emitted,
            "out_of_order": self.out_of_order,
            "late_total": self.late_total,
            "late_admitted": self.late_admitted,
            "late_dropped": self.late_dropped,
            "max_displacement_seconds": self.max_displacement_seconds,
            "occupancy_peak": self.occupancy_peak,
        }


class ReorderBuffer:
    """Re-sort a nearly-sorted observation stream within a bounded horizon.

    Usage::

        buffer = ReorderBuffer(horizon_seconds=2.0)
        for observation in noisy_feed:
            for ready in buffer.push(observation):
                detector.observe(ready)
        for ready in buffer.flush():
            detector.observe(ready)

    Output is guaranteed non-decreasing in time for every policy except
    ``ADMIT``.  Ties are released in arrival order (stable).
    """

    def __init__(self, horizon_seconds: float,
                 policy: LatePolicy = LatePolicy.COUNT,
                 metrics: Optional[Any] = None) -> None:
        if horizon_seconds < 0:
            raise ValueError("horizon_seconds must be >= 0")
        self.horizon_seconds = float(horizon_seconds)
        self.policy = policy
        self.stats = ReorderStats()
        self._heap: List[Tuple[float, int, Observation]] = []
        self._sequence = 0
        self._front = float("-inf")      # max timestamp seen so far
        self._emitted_up_to = float("-inf")
        self._last_arrival = float("-inf")
        self.metrics = resolve_registry(metrics)
        records = self.metrics.counter(
            "reorder_records_total",
            "Records leaving the reorder buffer, by outcome",
            labelnames=("outcome",))
        self._m_admitted = records.labels(outcome="admitted")
        self._m_late_admitted = records.labels(outcome="late_admitted")
        self._m_late_dropped = records.labels(outcome="late_dropped")
        self._m_occupancy = self.metrics.gauge(
            "reorder_buffer_occupancy",
            "Records currently held back waiting for the watermark")
        self._m_occupancy_peak = self.metrics.gauge(
            "reorder_buffer_occupancy_peak",
            "High-watermark of reorder-buffer occupancy")

    @property
    def watermark(self) -> float:
        """Largest timestamp that is safe to emit (front minus horizon)."""
        return self._front - self.horizon_seconds

    @property
    def pending(self) -> int:
        """Records currently held back waiting for the watermark."""
        return len(self._heap)

    def push(self, observation: Observation) -> List[Observation]:
        """Add one arrival; return the records now past the watermark.

        A non-finite timestamp raises :class:`ValueError` regardless of
        the late policy: NaN compares false against the watermark (it
        would silently corrupt the heap order) and inf would advance the
        front so far that every later genuine arrival looks late.
        """
        stats = self.stats
        stats.pushed += 1
        time = observation.time
        if not math.isfinite(time):
            raise ValueError(
                f"arrival {stats.pushed - 1} has a non-finite timestamp "
                f"t={time!r}; a NaN defeats watermark ordering and an "
                f"inf would wedge the reorder front")
        if time < self._last_arrival:
            stats.out_of_order += 1
            stats.max_displacement_seconds = max(
                stats.max_displacement_seconds, self._last_arrival - time)
        self._last_arrival = max(self._last_arrival, time)
        if time < self._emitted_up_to:
            # Beyond repair: the emission boundary (the furthest watermark
            # any drain reached) has passed this timestamp, so re-sorting
            # is impossible.  Strictly-less: a record *at* the boundary is
            # on-time, matching the drain's `<=` — the two comparisons
            # must agree or a boundary record would be both emittable and
            # late depending on arrival order.
            stats.late_total += 1
            if self.policy is LatePolicy.RAISE:
                raise ValueError(
                    f"observation at {time:.6f} arrived "
                    f"{self._emitted_up_to - time:.6f}s behind the reorder "
                    f"watermark {self._emitted_up_to:.6f} (horizon "
                    f"{self.horizon_seconds}s)")
            if self.policy is LatePolicy.ADMIT:
                stats.late_admitted += 1
                stats.emitted += 1
                self._m_late_admitted.inc()
                return [observation]
            stats.late_dropped += 1
            self._m_late_dropped.inc()
            return []
        heapq.heappush(self._heap, (time, self._sequence, observation))
        self._sequence += 1
        if len(self._heap) > stats.occupancy_peak:
            stats.occupancy_peak = len(self._heap)
            self._m_occupancy_peak.set(stats.occupancy_peak)
        self._front = max(self._front, time)
        return self._drain(self.watermark)

    def flush(self) -> List[Observation]:
        """Release everything still buffered, in time order."""
        return self._drain(float("inf"))

    def advance_front(self, time: float) -> List[Observation]:
        """Advance the stream front from an *external* clock.

        A partitioned live worker's buffer sees only its own keys, so
        its front — and therefore its watermark — would lag a global
        buffer's whenever the partition is sparse, releasing records
        later and judging lateness against a softer boundary.  The
        parent ships the global stream front alongside every routed
        record; calling this before each push makes a per-partition
        buffer behave exactly like the single global buffer restricted
        to the partition's records (same releases, same late verdicts),
        which is what the partitioned≡single equivalence contract
        rests on.  Returns the records the advanced watermark released.
        """
        if not math.isfinite(time):
            raise ValueError(
                f"non-finite external front t={time!r} would wedge the "
                f"reorder watermark")
        if time <= self._front:
            return []
        self._front = time
        return self._drain(self.watermark)

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-able snapshot of the buffer's full mutable state.

        The held-back records travel with the watermark bookkeeping: a
        live monitor checkpointing its detector must checkpoint the
        observations still *inside* its reorder buffer too, or a
        restart would silently lose every record the watermark had not
        yet released.  Restoring via :meth:`restore_state` and feeding
        the remainder of the stream is bit-for-bit identical to never
        having stopped (heap entries keep their arrival sequence, so
        tie-breaking survives the round trip).
        """
        return {
            "horizon_seconds": self.horizon_seconds,
            "policy": self.policy.value,
            # A 5th row element carries the vantage tag of a fused
            # stream's records; plain records keep the 4-element shape
            # so single-source checkpoints are byte-identical.
            "heap": [[time, sequence,
                      [observation.time, int(observation.family),
                       observation.source, observation.qtype]
                      + ([observation.vantage]
                         if isinstance(observation, TaggedObservation)
                         else [])]
                     for time, sequence, observation in sorted(self._heap)],
            "sequence": self._sequence,
            "front": self._front,
            "emitted_up_to": self._emitted_up_to,
            "last_arrival": self._last_arrival,
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`state_dict` snapshot into this buffer.

        The buffer must have been constructed with the same horizon and
        policy the snapshot was taken under; a mismatch is a caller bug
        (the snapshot's watermark arithmetic assumed the old horizon)
        and raises rather than silently corrupting emission order.
        """
        from ..net.addr import Family

        if float(state["horizon_seconds"]) != self.horizon_seconds:
            raise ValueError(
                f"snapshot horizon {state['horizon_seconds']}s does not "
                f"match buffer horizon {self.horizon_seconds}s")
        if str(state["policy"]) != self.policy.value:
            raise ValueError(
                f"snapshot policy {state['policy']!r} does not match "
                f"buffer policy {self.policy.value!r}")
        self._heap = [
            (float(time), int(sequence),
             (TaggedObservation(float(row[0]), Family(int(row[1])),
                                int(row[2]), int(row[3]), str(row[4]))
              if len(row) > 4 else
              Observation(float(row[0]), Family(int(row[1])),
                          int(row[2]), int(row[3]))))
            for time, sequence, row in state["heap"]]
        heapq.heapify(self._heap)
        self._sequence = int(state["sequence"])
        self._front = float(state["front"])
        self._emitted_up_to = float(state["emitted_up_to"])
        self._last_arrival = float(state["last_arrival"])
        stats = state.get("stats", {})
        self.stats = ReorderStats(
            pushed=int(stats.get("pushed", 0)),
            emitted=int(stats.get("emitted", 0)),
            out_of_order=int(stats.get("out_of_order", 0)),
            late_total=int(stats.get("late_total", 0)),
            late_admitted=int(stats.get("late_admitted", 0)),
            late_dropped=int(stats.get("late_dropped", 0)),
            max_displacement_seconds=float(
                stats.get("max_displacement_seconds", 0.0)),
            occupancy_peak=int(stats.get("occupancy_peak", 0)),
        )

    def _drain(self, up_to: float) -> List[Observation]:
        ready: List[Observation] = []
        heap = self._heap
        while heap and heap[0][0] <= up_to:
            time, _, observation = heapq.heappop(heap)
            ready.append(observation)
            self._emitted_up_to = time
        if math.isfinite(up_to):
            # The watermark itself is the emission boundary, whether or
            # not the heap held anything at it: everything <= up_to is
            # now behind the buffer, and the late check in push() must
            # judge against the same boundary this loop's `<=` used
            # (ties on-time on both sides).  A flush passes +inf and
            # only records what it actually popped — raising the
            # boundary to infinity would mark every later arrival late.
            self._emitted_up_to = max(self._emitted_up_to, up_to)
        self.stats.emitted += len(ready)
        if ready:
            self._m_admitted.inc(len(ready))
            self._m_occupancy.set(len(heap))
        return ready


def reorder_stream(stream: Iterable[Observation], horizon_seconds: float,
                   policy: LatePolicy = LatePolicy.COUNT,
                   buffer: Optional[ReorderBuffer] = None,
                   metrics: Optional[Any] = None,
                   ) -> Iterator[Observation]:
    """Wrap a noisy stream in a :class:`ReorderBuffer`.

    Pass ``buffer`` to keep a handle on the stats; otherwise one is
    created from ``horizon_seconds``, ``policy``, and ``metrics``.
    """
    if buffer is None:
        buffer = ReorderBuffer(horizon_seconds, policy, metrics=metrics)
    for observation in stream:
        yield from buffer.push(observation)
    yield from buffer.flush()

"""Aggregation of observation streams into per-block structures.

Two consumers need two shapes:

* the *streaming* detector wants per-block sorted arrival-time arrays
  (:func:`per_block_times`);
* the *vectorised* belief engine wants a dense (blocks x bins) count
  matrix plus first/last arrival timestamps per bin for exact-timestamp
  edge refinement (:func:`binned_counts`, :func:`bin_edge_timestamps`).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

from .records import ObservationBatch

__all__ = ["per_block_times", "binned_counts", "bin_edge_timestamps",
           "merge_block_times", "BinGrid"]


class BinGrid:
    """A uniform time grid over ``[start, end)`` with ``bin_seconds`` bins.

    The last bin may be partial; callers that need equal-mass bins
    should choose spans divisible by the bin size (the experiment
    configs do).
    """

    __slots__ = ("start", "end", "bin_seconds", "n_bins")

    def __init__(self, start: float, end: float, bin_seconds: float) -> None:
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if end <= start:
            raise ValueError("grid must cover a positive span")
        self.start = float(start)
        self.end = float(end)
        self.bin_seconds = float(bin_seconds)
        self.n_bins = int(math.ceil((end - start) / bin_seconds))

    def bin_of(self, times: np.ndarray) -> np.ndarray:
        """Bin index per timestamp (times must lie within the grid)."""
        indices = ((np.asarray(times) - self.start)
                   // self.bin_seconds).astype(np.int64)
        return np.clip(indices, 0, self.n_bins - 1)

    def edges(self) -> np.ndarray:
        """Bin start times (length ``n_bins``)."""
        return self.start + self.bin_seconds * np.arange(self.n_bins)

    def bin_start(self, index: int) -> float:
        return self.start + index * self.bin_seconds

    def bin_end(self, index: int) -> float:
        return min(self.start + (index + 1) * self.bin_seconds, self.end)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BinGrid)
                and (self.start, self.end, self.bin_seconds)
                == (other.start, other.end, other.bin_seconds))

    def __repr__(self) -> str:
        return (f"BinGrid([{self.start}, {self.end}), "
                f"bin={self.bin_seconds}s, n={self.n_bins})")


def per_block_times(batch: ObservationBatch) -> Dict[int, np.ndarray]:
    """Split a batch into ``{block_key: sorted arrival times}``."""
    return {key: times.copy() for key, times in batch.per_block()}


def merge_block_times(per_block: Dict[int, np.ndarray],
                      keys: Sequence[int]) -> np.ndarray:
    """Merge several blocks' arrivals into one sorted array.

    Used by spatial aggregation: a /20 super-block's signal is the union
    of its /24 children's arrivals.
    """
    pieces = [per_block[key] for key in keys if key in per_block]
    if not pieces:
        return np.empty(0, dtype=float)
    merged = np.concatenate(pieces)
    merged.sort()
    return merged


def binned_counts(block_keys: Sequence[int],
                  per_block: Dict[int, np.ndarray],
                  grid: BinGrid) -> np.ndarray:
    """Dense ``(len(block_keys), grid.n_bins)`` arrival-count matrix.

    Missing blocks get all-zero rows, which downstream interprets via
    their trained rate (an always-silent dense block is simply down).
    """
    counts = np.zeros((len(block_keys), grid.n_bins), dtype=np.int32)
    for row, key in enumerate(block_keys):
        times = per_block.get(key)
        if times is None or times.size == 0:
            continue
        bins = grid.bin_of(times)
        counts[row] = np.bincount(bins, minlength=grid.n_bins)
    return counts


def bin_edge_timestamps(block_keys: Sequence[int],
                        per_block: Dict[int, np.ndarray],
                        grid: BinGrid) -> Tuple[np.ndarray, np.ndarray]:
    """First and last arrival timestamp inside each (block, bin).

    Returns two ``(blocks, bins)`` float arrays holding NaN where a bin
    is empty.  These exact timestamps let the event extractor refine
    outage edges below bin granularity — the paper's key precision
    trick.
    """
    shape = (len(block_keys), grid.n_bins)
    first = np.full(shape, np.nan)
    last = np.full(shape, np.nan)
    for row, key in enumerate(block_keys):
        times = per_block.get(key)
        if times is None or times.size == 0:
            continue
        bins = grid.bin_of(times)
        # times are sorted, so per-bin first/last are run boundaries.
        change = np.flatnonzero(np.diff(bins)) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [bins.size]))
        for s, e in zip(starts, ends):
            bin_index = bins[s]
            first[row, bin_index] = times[s]
            last[row, bin_index] = times[e - 1]
    return first, last

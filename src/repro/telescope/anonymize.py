"""Prefix-preserving address anonymization for captures.

Passive traces are sensitive: sources are real clients.  The standard
mitigation before sharing (as the paper's group does for its released
datasets) is *prefix-preserving* anonymization in the Crypto-PAn
style: a deterministic, keyed permutation of the address space such
that two addresses sharing a k-bit prefix before anonymization share
exactly a k-bit prefix after.  The outage pipeline is unaffected —
blocks map to blocks — while raw identities are unrecoverable without
the key.

The construction is the classic one: walk the address bits from the
top; flip bit *i* by a keyed pseudorandom function of the (original)
i-bit prefix above it.  Prefix preservation follows directly: two
addresses agreeing on the top k bits see identical flip decisions for
those bits.  The PRF here is HMAC-SHA256, which is deliberately boring.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable, Iterator

from ..net.addr import Family
from .records import Observation

__all__ = ["PrefixPreservingAnonymizer"]


class PrefixPreservingAnonymizer:
    """Keyed, deterministic, prefix-preserving address permutation.

    The same key always yields the same mapping, so longitudinal
    analyses over multiple anonymized captures still line up.  There is
    intentionally no unanonymize operation: the mapping is one-way
    without replaying the PRF with the key.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("anonymization key must be >= 16 bytes")
        self._key = key
        # Flip decisions are memoised per (family, prefix) — trace
        # sources cluster heavily, so the cache hit rate is high.
        self._cache = {}

    def _flip_bit(self, family: Family, prefix: int, depth: int) -> int:
        """Keyed PRF: should the bit below this prefix be flipped?"""
        cache_key = (family, depth, prefix)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        message = (int(family).to_bytes(1, "big")
                   + depth.to_bytes(1, "big")
                   + prefix.to_bytes(16, "big"))
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        flip = digest[0] & 1
        self._cache[cache_key] = flip
        return flip

    def anonymize_value(self, family: Family, value: int) -> int:
        """Anonymize one address integer."""
        bits = family.bits
        if not 0 <= value < (1 << bits):
            raise ValueError(f"address {value:#x} out of range for "
                             f"{family.name}")
        result = 0
        prefix = 0
        for depth in range(bits):
            bit = (value >> (bits - 1 - depth)) & 1
            result = (result << 1) | (bit ^ self._flip_bit(family, prefix,
                                                           depth))
            prefix = (prefix << 1) | bit
        return result

    def anonymize_block_key(self, family: Family, key: int,
                            prefix_len: int = 0) -> int:
        """Anonymize a right-aligned block key (prefix bits only).

        Because the permutation is prefix-preserving, anonymizing the
        enclosing block of an address equals the enclosing block of the
        anonymized address — asserted by the property tests.
        """
        if prefix_len == 0:
            prefix_len = family.default_block_prefix
        result = 0
        prefix = 0
        for depth in range(prefix_len):
            bit = (key >> (prefix_len - 1 - depth)) & 1
            result = (result << 1) | (bit ^ self._flip_bit(family, prefix,
                                                           depth))
            prefix = (prefix << 1) | bit
        return result

    def anonymize(self, observation: Observation) -> Observation:
        """Anonymize one observation (time and qtype untouched)."""
        return Observation(
            time=observation.time,
            family=observation.family,
            source=self.anonymize_value(observation.family,
                                        observation.source),
            qtype=observation.qtype,
        )

    def anonymize_stream(self, stream: Iterable[Observation]
                         ) -> Iterator[Observation]:
        """Anonymize a whole observation stream lazily."""
        for observation in stream:
            yield self.anonymize(observation)

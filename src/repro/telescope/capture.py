"""On-disk capture format for passive observations.

A minimal, self-describing binary trace format (".pobs") in the spirit
of pcap: a fixed magic+version header followed by fixed-width records.
Each record stores the exact arrival timestamp (float64 — the exact
timestamps are the paper's precision advantage, so they are first-class
here), the address family, the full 128-bit source address (IPv4 is
zero-extended), and the DNS query type.

Record layout (27 bytes, network byte order):

    float64  time_seconds
    uint8    family (4 or 6)
    byte[16] source address, big-endian, zero-padded
    uint16   qtype

Writers append; readers stream or bulk-load into
:class:`~repro.telescope.records.ObservationBatch` columns.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterator, Optional, Tuple, Union

import numpy as np

from ..net.addr import Family
from .records import Observation, ObservationBatch

__all__ = ["CaptureError", "CaptureCorruptionError", "CaptureWriter",
           "CaptureReader", "write_batches", "read_batches", "MAGIC",
           "VERSION"]

MAGIC = b"POBS"
VERSION = 1
_HEADER = struct.Struct("!4sHH")  # magic, version, reserved
_RECORD = struct.Struct("!dB16sH")


class CaptureError(IOError):
    """Raised on malformed capture files."""


class CaptureCorruptionError(CaptureError):
    """A capture's payload is damaged (truncated or undecodable frame).

    Carries enough context to act on operationally: ``byte_offset`` is
    where in the file the bad frame starts and ``records_read`` how many
    good records preceded it — i.e. how much of the capture survives a
    tolerant re-read.
    """

    def __init__(self, message: str, byte_offset: int,
                 records_read: int) -> None:
        super().__init__(
            f"{message} (byte offset {byte_offset}, after "
            f"{records_read} good records)")
        self.byte_offset = byte_offset
        self.records_read = records_read


PathOrFile = Union[str, Path, BinaryIO]


def _open(target: PathOrFile, mode: str) -> Tuple[BinaryIO, bool]:
    if isinstance(target, (str, Path)):
        return open(target, mode), True
    return target, False


class CaptureWriter:
    """Append observations to a capture stream.

    Use as a context manager::

        with CaptureWriter("day.pobs") as writer:
            writer.write(observation)
    """

    def __init__(self, target: PathOrFile) -> None:
        self._file, self._owns = _open(target, "wb")
        self._file.write(_HEADER.pack(MAGIC, VERSION, 0))
        self.records_written = 0

    def write(self, observation: Observation) -> None:
        """Append one observation."""
        self.write_raw(observation.time, observation.family,
                       observation.source, observation.qtype)

    def write_raw(self, time: float, family: Family, source: int,
                  qtype: int = 0) -> None:
        """Append one record from plain fields (hot path)."""
        self._file.write(_RECORD.pack(
            time, int(family), source.to_bytes(16, "big"), qtype))
        self.records_written += 1

    def write_batch(self, batch: ObservationBatch) -> None:
        """Append a whole batch (block-base addresses reconstructed)."""
        host_bits = batch.family.bits - batch.family.default_block_prefix
        family = int(batch.family)
        pack = _RECORD.pack
        chunks = [
            pack(float(t), family, (int(k) << host_bits).to_bytes(16, "big"),
                 int(q))
            for t, k, q in zip(batch.times, batch.block_keys, batch.qtypes)
        ]
        self._file.write(b"".join(chunks))
        self.records_written += len(chunks)

    def close(self) -> None:
        if self._owns:
            self._file.close()

    def __enter__(self) -> "CaptureWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CaptureReader:
    """Stream or bulk-load a capture file.

    ``tolerant=True`` turns trailing corruption (a truncated or
    undecodable final stretch, the signature of a writer killed
    mid-record) into a clean stop at the last good frame instead of a
    :class:`CaptureCorruptionError`; ``records_read`` and
    ``stopped_early`` report what happened either way.
    """

    def __init__(self, target: PathOrFile, tolerant: bool = False) -> None:
        self._file, self._owns = _open(target, "rb")
        self.tolerant = tolerant
        self.records_read = 0
        self.stopped_early = False
        header = self._file.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise CaptureError("capture shorter than its header")
        magic, version, _ = _HEADER.unpack(header)
        if magic != MAGIC:
            raise CaptureError(f"bad magic {magic!r}")
        if version != VERSION:
            raise CaptureError(f"unsupported capture version {version}")

    def __iter__(self) -> Iterator[Observation]:
        """Stream records one at a time."""
        while True:
            observation = self.read_one()
            if observation is None:
                return
            yield observation

    def _byte_offset(self) -> int:
        return _HEADER.size + self.records_read * _RECORD.size

    def _corrupt(self, message: str) -> Optional[Observation]:
        if self.tolerant:
            self.stopped_early = True
            return None
        raise CaptureCorruptionError(message, self._byte_offset(),
                                     self.records_read)

    def read_one(self) -> Optional[Observation]:
        """Read the next record, or None at EOF (or at the last good
        frame when ``tolerant``)."""
        if self.stopped_early:
            return None
        raw = self._file.read(_RECORD.size)
        if not raw:
            return None
        if len(raw) < _RECORD.size:
            return self._corrupt(
                f"truncated record at end of capture "
                f"({len(raw)} of {_RECORD.size} bytes)")
        time, family_value, source_bytes, qtype = _RECORD.unpack(raw)
        try:
            family = Family(family_value)
        except ValueError:
            return self._corrupt(f"bad family byte {family_value}")
        self.records_read += 1
        return Observation(time, family,
                           int.from_bytes(source_bytes, "big"), qtype)

    def read_all(self) -> Tuple[ObservationBatch, ObservationBatch]:
        """Bulk-load the remaining records into per-family batches.

        Returns ``(ipv4_batch, ipv6_batch)``; either may be empty.
        """
        payload = self._file.read()
        if len(payload) % _RECORD.size:
            if not self.tolerant:
                raise CaptureCorruptionError(
                    f"capture payload is not record-aligned "
                    f"({len(payload) % _RECORD.size} trailing bytes)",
                    self._byte_offset()
                    + len(payload) - len(payload) % _RECORD.size,
                    self.records_read + len(payload) // _RECORD.size)
            self.stopped_early = True
        count = len(payload) // _RECORD.size
        times = np.empty(count, dtype=np.float64)
        families = np.empty(count, dtype=np.uint8)
        keys = np.empty(count, dtype=np.uint64)
        qtypes = np.empty(count, dtype=np.uint16)
        view = memoryview(payload)
        good = count
        for index in range(count):
            time, family_value, source_bytes, qtype = _RECORD.unpack_from(
                view, index * _RECORD.size)
            try:
                family = Family(family_value)
            except ValueError:
                if not self.tolerant:
                    raise CaptureCorruptionError(
                        f"bad family byte {family_value}",
                        self._byte_offset() + index * _RECORD.size,
                        self.records_read + index) from None
                self.stopped_early = True
                good = index
                break
            times[index] = time
            families[index] = family_value
            qtypes[index] = qtype
            source = int.from_bytes(source_bytes, "big")
            shift = family.bits - family.default_block_prefix
            keys[index] = (source >> shift) & 0xFFFFFFFFFFFFFFFF
        self.records_read += good
        batches = []
        for family in (Family.IPV4, Family.IPV6):
            mask = families[:good] == int(family)
            batches.append(ObservationBatch(
                family, times[:good][mask], keys[:good][mask],
                qtypes[:good][mask]))
        return batches[0], batches[1]

    def close(self) -> None:
        if self._owns:
            self._file.close()

    def __enter__(self) -> "CaptureReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_batches(target: PathOrFile, *batches: ObservationBatch) -> int:
    """Write batches to a capture file; returns the record count."""
    with CaptureWriter(target) as writer:
        for batch in batches:
            writer.write_batch(batch)
        return writer.records_written


def read_batches(target: PathOrFile) -> Tuple[ObservationBatch,
                                              ObservationBatch]:
    """Load a capture file into ``(ipv4, ipv6)`` batches."""
    with CaptureReader(target) as reader:
        return reader.read_all()


def roundtrip_bytes(*batches: ObservationBatch) -> Tuple[ObservationBatch,
                                                         ObservationBatch]:
    """Serialise and re-load in memory (testing helper)."""
    buffer = io.BytesIO()
    write_batches(buffer, *batches)
    buffer.seek(0)
    return read_batches(buffer)

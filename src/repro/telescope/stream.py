"""Streaming utilities over observation sources.

The batch pipeline (simulate a day, then analyse it) covers the paper's
experiments, but a deployed system consumes a live feed.  This module
provides the streaming half: a k-way time-ordered merge over multiple
capture sources and a windowing iterator that releases observations in
bin-sized chunks, which is exactly the shape the streaming detector
(:class:`repro.core.detector.StreamingDetector`) consumes.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Tuple

from .records import Observation

__all__ = ["merge_streams", "window_stream"]


def merge_streams(*streams: Iterable[Observation]) -> Iterator[Observation]:
    """Merge time-sorted observation streams into one sorted stream.

    Each input must already be sorted by time (capture files are; the
    simulator's per-block streams are).  Ties are broken by input order,
    keeping the merge stable.
    """
    heap: List[Tuple[float, int, Observation, Iterator[Observation]]] = []
    for index, stream in enumerate(streams):
        iterator = iter(stream)
        first = next(iterator, None)
        if first is not None:
            heap.append((first.time, index, first, iterator))
    heapq.heapify(heap)
    previous_time = float("-inf")
    while heap:
        time, index, observation, iterator = heapq.heappop(heap)
        if time < previous_time:
            raise ValueError(
                f"stream {index} is not time-sorted: {time} after "
                f"{previous_time}")
        previous_time = time
        yield observation
        following = next(iterator, None)
        if following is not None:
            heapq.heappush(heap, (following.time, index, following, iterator))


def window_stream(stream: Iterable[Observation], start: float,
                  window_seconds: float
                  ) -> Iterator[Tuple[float, float, List[Observation]]]:
    """Chunk a sorted stream into fixed windows.

    Yields ``(window_start, window_end, observations)`` for every window
    from ``start`` until the stream ends, including empty windows
    between sparse arrivals — empty windows are precisely the signal the
    detector must see.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    window_start = start
    window_end = start + window_seconds
    pending: List[Observation] = []
    for observation in stream:
        if observation.time < start:
            continue
        while observation.time >= window_end:
            yield window_start, window_end, pending
            pending = []
            window_start = window_end
            window_end += window_seconds
        pending.append(observation)
    yield window_start, window_end, pending

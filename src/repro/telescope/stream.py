"""Streaming utilities over observation sources.

The batch pipeline (simulate a day, then analyse it) covers the paper's
experiments, but a deployed system consumes a live feed.  This module
provides the streaming half: a k-way time-ordered merge over multiple
capture sources and a windowing iterator that releases observations in
bin-sized chunks, which is exactly the shape the streaming detector
(:class:`repro.core.detector.StreamingDetector`) consumes.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..obs.metrics import resolve_registry
from .records import Observation
from .reorder import LatePolicy, reorder_stream

__all__ = ["merge_streams", "window_stream"]


def merge_streams(*streams: Iterable[Observation],
                  metrics: Optional[Any] = None) -> Iterator[Observation]:
    """Merge time-sorted observation streams into one sorted stream.

    Each input must already be sorted by time (capture files are; the
    simulator's per-block streams are).  Ties are broken by input order,
    keeping the merge stable: when two sources carry the same timestamp,
    the record from the lower-numbered stream is emitted first, and
    records within one stream keep their relative order.

    An unsorted input raises :class:`ValueError` naming the offending
    stream and both timestamps.  For feeds with bounded disorder, wrap
    the input in :func:`repro.telescope.reorder.reorder_stream` instead.

    A NaN or infinite timestamp also raises :class:`ValueError`, naming
    the stream and the record's index within it.  NaN cannot be merge-
    ordered at all (every comparison is false, so it would slide through
    the heap unnoticed and poison every downstream bin count), and an
    infinite time would wedge the merge front permanently.

    With ``metrics`` (or a process-default registry) the per-stream
    consumption counts land on ``merge_records_total{stream=...}``,
    flushed when the merge finishes or its consumer abandons it.
    """
    heap: List[Tuple[float, int, Observation, Iterator[Observation]]] = []
    # Per-stream count of records consumed so far, for diagnostics.
    consumed = [0] * len(streams)
    registry = resolve_registry(metrics)

    def _checked_time(observation: Observation, index: int) -> float:
        record_index = consumed[index]
        consumed[index] += 1
        time = observation.time
        if not math.isfinite(time):
            raise ValueError(
                f"input stream {index} record {record_index} has a "
                f"non-finite timestamp t={time!r}; refusing to merge it "
                f"(NaN defeats time ordering, inf wedges the merge front)")
        return time

    try:
        for index, stream in enumerate(streams):
            iterator = iter(stream)
            first = next(iterator, None)
            if first is not None:
                heap.append(
                    (_checked_time(first, index), index, first, iterator))
        heapq.heapify(heap)
        previous_time = float("-inf")
        previous_index = -1
        while heap:
            time, index, observation, iterator = heapq.heappop(heap)
            if time < previous_time:
                raise ValueError(
                    f"input stream {index} is not time-sorted: it produced "
                    f"t={time!r} after t={previous_time!r} had already been "
                    f"merged (from stream {previous_index}); sort the source "
                    f"or wrap it in repro.telescope.reorder.reorder_stream()")
            previous_time = time
            previous_index = index
            yield observation
            following = next(iterator, None)
            if following is not None:
                heapq.heappush(
                    heap,
                    (_checked_time(following, index), index, following,
                     iterator))
    finally:
        # One labelled increment per input stream, not per record: the
        # merge is the hottest loop in the live path.
        if registry.enabled:
            family = registry.counter(
                "merge_records_total",
                "Records consumed from each merge input stream",
                labelnames=("stream",))
            for index, count in enumerate(consumed):
                if count:
                    family.labels(stream=str(index)).inc(count)


def window_stream(stream: Iterable[Observation], start: float,
                  window_seconds: float,
                  reorder_horizon: float = 0.0,
                  late_policy: Optional[LatePolicy] = None,
                  metrics: Optional[Any] = None,
                  ) -> Iterator[Tuple[float, float, List[Observation]]]:
    """Chunk a sorted stream into fixed windows.

    Yields ``(window_start, window_end, observations)`` for every window
    from ``start`` until the stream ends, including empty windows
    between sparse arrivals — empty windows are precisely the signal the
    detector must see.

    A positive ``reorder_horizon`` first routes the stream through
    :func:`repro.telescope.reorder.reorder_stream`, so a feed with
    bounded disorder windows identically to its sorted equivalent
    (``late_policy`` defaults to counting-and-dropping records that
    fall beyond the horizon).
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    registry = resolve_registry(metrics)
    windows = registry.counter(
        "stream_windows_total",
        "Fixed-size windows released to the streaming consumer")
    if reorder_horizon > 0 or late_policy is not None:
        stream = reorder_stream(stream, reorder_horizon,
                                late_policy or LatePolicy.COUNT,
                                metrics=registry)
    window_start = start
    window_end = start + window_seconds
    pending: List[Observation] = []
    for observation in stream:
        if observation.time < start:
            continue
        while observation.time >= window_end:
            windows.inc()
            yield window_start, window_end, pending
            pending = []
            window_start = window_end
            window_end += window_seconds
        pending.append(observation)
    windows.inc()
    yield window_start, window_end, pending

"""Telescope substrate: observation records, captures, aggregation."""

from .anonymize import PrefixPreservingAnonymizer
from .aggregate import (
    BinGrid,
    bin_edge_timestamps,
    binned_counts,
    merge_block_times,
    per_block_times,
)
from .capture import (
    CaptureCorruptionError,
    CaptureError,
    CaptureReader,
    CaptureWriter,
    read_batches,
    write_batches,
)
from .records import Observation, ObservationBatch
from .reorder import LatePolicy, ReorderBuffer, ReorderStats, reorder_stream
from .stream import merge_streams, window_stream

__all__ = [
    "PrefixPreservingAnonymizer",
    "BinGrid",
    "bin_edge_timestamps",
    "binned_counts",
    "merge_block_times",
    "per_block_times",
    "CaptureCorruptionError",
    "CaptureError",
    "CaptureReader",
    "CaptureWriter",
    "read_batches",
    "write_batches",
    "Observation",
    "ObservationBatch",
    "LatePolicy",
    "ReorderBuffer",
    "ReorderStats",
    "reorder_stream",
    "merge_streams",
    "window_stream",
]

"""Observation records: what the passive vantage point keeps per packet.

The detector needs only ``(timestamp, source block)``; for realism and
for debugging the pipeline also carries the full source address and the
query type.  :class:`ObservationBatch` is the column-oriented bulk form
used everywhere performance matters — one numpy column per field, with
block keys precomputed (both /24 and /48 right-aligned keys fit in a
``uint64``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..net.addr import Family, format_address
from ..net.blocks import Block

__all__ = ["Observation", "TaggedObservation", "ObservationBatch"]


@dataclass(frozen=True, order=True)
class Observation:
    """A single passive observation (one query arriving at the service)."""

    time: float
    family: Family
    source: int
    qtype: int = 0

    @property
    def block_key(self) -> int:
        """Right-aligned key of the enclosing analysis block."""
        return self.source >> (self.family.bits
                               - self.family.default_block_prefix)

    @property
    def block(self) -> Block:
        return Block(self.family, self.block_key,
                     self.family.default_block_prefix)

    def __str__(self) -> str:
        return (f"{self.time:.3f}s {format_address(self.family, self.source)} "
                f"qtype={self.qtype}")


@dataclass(frozen=True)
class TaggedObservation(Observation):
    """An observation carrying the name of the vantage that saw it.

    The multi-vantage (fusion) stream plumbing needs the tag to survive
    reorder buffering and checkpointing, so it rides on the record
    itself rather than in side tables.  Everything downstream that
    handles plain observations handles tagged ones unchanged; only the
    fused detector looks at ``vantage``.
    """

    vantage: str = ""


class ObservationBatch:
    """Column-oriented batch of observations for one address family.

    Columns: ``times`` (float64, seconds), ``block_keys`` (uint64,
    right-aligned /24 or /48 keys), ``qtypes`` (uint16).  Full source
    addresses are not kept in the batch — the capture layer preserves
    them on disk; in memory the detector only needs block keys.
    """

    __slots__ = ("family", "times", "block_keys", "qtypes")

    def __init__(self, family: Family, times: np.ndarray,
                 block_keys: np.ndarray,
                 qtypes: Optional[np.ndarray] = None) -> None:
        times = np.asarray(times, dtype=np.float64)
        block_keys = np.asarray(block_keys, dtype=np.uint64)
        if times.shape != block_keys.shape:
            raise ValueError("times and block_keys must align")
        if qtypes is None:
            qtypes = np.zeros(times.shape, dtype=np.uint16)
        else:
            qtypes = np.asarray(qtypes, dtype=np.uint16)
            if qtypes.shape != times.shape:
                raise ValueError("qtypes must align with times")
        self.family = family
        self.times = times
        self.block_keys = block_keys
        self.qtypes = qtypes

    def __len__(self) -> int:
        return int(self.times.size)

    @classmethod
    def empty(cls, family: Family) -> "ObservationBatch":
        return cls(family, np.empty(0), np.empty(0, dtype=np.uint64))

    @classmethod
    def from_observations(cls, family: Family,
                          observations: Iterable[Observation]
                          ) -> "ObservationBatch":
        rows = [(o.time, o.block_key, o.qtype) for o in observations
                if o.family is family]
        if not rows:
            return cls.empty(family)
        times, keys, qtypes = zip(*rows)
        return cls(family, np.array(times), np.array(keys, dtype=np.uint64),
                   np.array(qtypes, dtype=np.uint16))

    @classmethod
    def concatenate(cls, batches: Sequence["ObservationBatch"]
                    ) -> "ObservationBatch":
        """Merge batches of the same family, re-sorted by time."""
        batches = [b for b in batches if len(b)]
        if not batches:
            raise ValueError("nothing to concatenate")
        family = batches[0].family
        if any(b.family is not family for b in batches):
            raise ValueError("cannot concatenate across families")
        times = np.concatenate([b.times for b in batches])
        keys = np.concatenate([b.block_keys for b in batches])
        qtypes = np.concatenate([b.qtypes for b in batches])
        order = np.argsort(times, kind="stable")
        return cls(family, times[order], keys[order], qtypes[order])

    def sorted_by_time(self) -> "ObservationBatch":
        if self.times.size and np.all(np.diff(self.times) >= 0):
            return self
        order = np.argsort(self.times, kind="stable")
        return ObservationBatch(self.family, self.times[order],
                                self.block_keys[order], self.qtypes[order])

    def time_slice(self, start: float, end: float) -> "ObservationBatch":
        """Rows with ``start <= time < end`` (requires time-sorted batch)."""
        left = np.searchsorted(self.times, start, side="left")
        right = np.searchsorted(self.times, end, side="left")
        return ObservationBatch(self.family, self.times[left:right],
                                self.block_keys[left:right],
                                self.qtypes[left:right])

    def unique_blocks(self) -> np.ndarray:
        """Sorted unique block keys present in the batch."""
        return np.unique(self.block_keys)

    def per_block(self) -> Iterator:
        """Yield ``(block_key, sorted times)`` per distinct block."""
        order = np.lexsort((self.times, self.block_keys))
        keys = self.block_keys[order]
        times = self.times[order]
        boundaries = np.flatnonzero(np.diff(keys)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [keys.size]))
        for start, end in zip(starts, ends):
            if end > start:
                yield int(keys[start]), times[start:end]

    def to_observations(self) -> List[Observation]:
        """Expand to row objects (block-base source addresses)."""
        host_bits = self.family.bits - self.family.default_block_prefix
        return [
            Observation(float(t), self.family, int(k) << host_bits, int(q))
            for t, k, q in zip(self.times, self.block_keys, self.qtypes)
        ]

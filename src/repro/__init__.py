"""repro — passive Internet outage detection (IMC 2022 reproduction).

A full reproduction of "Internet Outage Detection using Passive
Analysis" (Enayet & Heidemann, IMC 2022): a per-block-tuned Bayesian
detector over passive traffic, the substrates it runs on (simulated
Internet, DNS root service, capture pipeline), the comparators it is
evaluated against (Trinocular, RIPE-Atlas-style probing, Chocolatine,
CUSUM), and the evaluation harness that regenerates the paper's tables
and figures.

Quickstart::

    from repro import Family, PassiveOutagePipeline
    from repro.traffic import InternetConfig, SimulatedInternet

    internet = SimulatedInternet.build(InternetConfig())
    pipeline = PassiveOutagePipeline()
    ...

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from .net.addr import Address, Family
from .net.blocks import Block
from .timeline import OutageEvent, Timeline
from .core.pipeline import PassiveOutagePipeline, PipelineResult, TrainedModel

__version__ = "1.0.0"

__all__ = [
    "Address",
    "Family",
    "Block",
    "OutageEvent",
    "Timeline",
    "PassiveOutagePipeline",
    "PipelineResult",
    "TrainedModel",
    "__version__",
]

"""Binary prefix trie for longest-prefix matching over blocks.

The evaluation pipeline repeatedly asks "which monitored block (if any)
contains this address?" for populations where blocks may live at mixed
prefix lengths (/24s plus aggregated /20s, /48s plus /44s).  A
dictionary keyed by a single fixed prefix length cannot answer that, so
we provide a classic path-compressed binary trie with longest-prefix
match semantics — the same structure a routing table uses.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from .addr import Address, Family
from .blocks import Block

__all__ = ["PrefixTrie"]

V = TypeVar("V")


class _Node(Generic[V]):
    """One trie node; ``value`` is set when a prefix terminates here."""

    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Longest-prefix-match table from :class:`Block` to arbitrary values.

    One trie instance serves a single address family; mixing families in
    one routing structure is almost always a caller bug, so it is
    rejected eagerly.

    >>> trie = PrefixTrie(Family.IPV4)
    >>> trie.insert(Block.parse("192.0.2.0/24"), "fine")
    >>> trie.insert(Block.parse("192.0.0.0/16"), "coarse")
    >>> trie.lookup(Address.parse("192.0.2.9"))
    ('fine', Block.parse('192.0.2.0/24'))
    """

    def __init__(self, family: Family) -> None:
        self.family = family
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _check_family(self, family: Family) -> None:
        if family is not self.family:
            raise ValueError(
                f"trie holds {self.family.name} prefixes, got {family.name}"
            )

    def _bits_of(self, block: Block) -> Iterator[int]:
        """High-to-low bits of the block's prefix."""
        for position in range(block.prefix_len - 1, -1, -1):
            yield (block.prefix >> position) & 1

    def insert(self, block: Block, value: V) -> None:
        """Insert or replace the value stored at ``block``."""
        self._check_family(block.family)
        node = self._root
        for bit in self._bits_of(block):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, block: Block) -> bool:
        """Delete the exact prefix; returns False when it was absent.

        Interior nodes left childless are pruned so repeated insert and
        remove cycles do not leak memory.
        """
        self._check_family(block.family)
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        for bit in self._bits_of(block):
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child is not None and not child.has_value and child.children == [None, None]:
                parent.children[bit] = None
            else:
                break
        return True

    def get(self, block: Block) -> Optional[V]:
        """Exact-match lookup of a prefix; None when absent."""
        self._check_family(block.family)
        node = self._root
        for bit in self._bits_of(block):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def lookup(self, address: Address) -> Optional[Tuple[V, Block]]:
        """Longest-prefix match for an address.

        Returns ``(value, matched_block)`` for the most specific stored
        prefix containing the address, or None when nothing matches.
        """
        self._check_family(address.family)
        node = self._root
        best: Optional[Tuple[V, int]] = None
        if node.has_value:  # a /0 default route
            best = (node.value, 0)  # type: ignore[assignment]
        bits = self.family.bits
        for depth in range(1, bits + 1):
            bit = (address.value >> (bits - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (node.value, depth)  # type: ignore[assignment]
        if best is None:
            return None
        value, depth = best
        matched = Block(self.family, address.value >> (bits - depth), depth)
        return value, matched

    def items(self) -> Iterator[Tuple[Block, V]]:
        """Iterate all stored ``(block, value)`` pairs in prefix order."""

        def walk(node: _Node[V], prefix: int, depth: int) -> Iterator[Tuple[Block, V]]:
            if node.has_value:
                yield Block(self.family, prefix, depth), node.value  # type: ignore[misc]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, (prefix << 1) | bit, depth + 1)

        yield from walk(self._root, 0, 0)

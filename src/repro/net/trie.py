"""Binary prefix trie for longest-prefix matching over blocks.

The evaluation pipeline repeatedly asks "which monitored block (if any)
contains this address?" for populations where blocks may live at mixed
prefix lengths (/24s plus aggregated /20s, /48s plus /44s).  A
dictionary keyed by a single fixed prefix length cannot answer that, so
we provide a classic path-compressed binary trie with longest-prefix
match semantics — the same structure a routing table uses.

Two views share the node structure:

:class:`PrefixTrie`
    The mutable table.  :meth:`PrefixTrie.frozen` publishes an
    immutable :class:`FrozenPrefixTrie` snapshot in O(1): the trie
    switches to copy-on-write and any later mutation path-copies the
    nodes it touches, so every published view keeps seeing exactly the
    prefixes it was frozen with.

:class:`FrozenPrefixTrie`
    A read-only snapshot safe to share across threads without a lock —
    the serving plane's query hot path reads one of these while the
    publisher keeps mutating the live trie.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from .addr import Address, Family
from .blocks import Block

__all__ = ["PrefixTrie", "FrozenPrefixTrie"]

V = TypeVar("V")


class _Node(Generic[V]):
    """One trie node; ``value`` is set when a prefix terminates here.

    ``gen`` is the copy-on-write stamp: a node may be mutated in place
    only while its generation matches the owning trie's current one.
    Frozen views hold references to older-generation nodes, which the
    mutable trie clones (never edits) on its next write.
    """

    __slots__ = ("children", "value", "has_value", "gen")

    def __init__(self, gen: int = 0) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False
        self.gen = gen


def _clone(node: _Node, gen: int) -> _Node:
    copy: _Node = _Node(gen)
    copy.children = list(node.children)
    copy.value = node.value
    copy.has_value = node.has_value
    return copy


def _bits_of(block: Block) -> Iterator[int]:
    """High-to-low bits of the block's prefix."""
    for position in range(block.prefix_len - 1, -1, -1):
        yield (block.prefix >> position) & 1


def _find(root: _Node, block: Block) -> Optional[_Node]:
    """Descend to the node for ``block``'s exact prefix, if present."""
    node = root
    for bit in _bits_of(block):
        child = node.children[bit]
        if child is None:
            return None
        node = child
    return node


def _lookup(root: _Node, family: Family,
            address: Address) -> Optional[Tuple[object, Block]]:
    """Longest-prefix match shared by both trie views."""
    node = root
    best: Optional[Tuple[object, int]] = None
    if node.has_value:  # a /0 default route
        best = (node.value, 0)
    bits = family.bits
    for depth in range(1, bits + 1):
        bit = (address.value >> (bits - depth)) & 1
        child = node.children[bit]
        if child is None:
            break
        node = child
        if node.has_value:
            best = (node.value, depth)
    if best is None:
        return None
    value, depth = best
    matched = Block(family, address.value >> (bits - depth), depth)
    return value, matched


def _walk(node: _Node, family: Family, prefix: int,
          depth: int) -> Iterator[Tuple[Block, object]]:
    if node.has_value:
        yield Block(family, prefix, depth), node.value
    for bit in (0, 1):
        child = node.children[bit]
        if child is not None:
            yield from _walk(child, family, (prefix << 1) | bit, depth + 1)


class PrefixTrie(Generic[V]):
    """Longest-prefix-match table from :class:`Block` to arbitrary values.

    One trie instance serves a single address family; mixing families in
    one routing structure is almost always a caller bug, so it is
    rejected eagerly.

    >>> trie = PrefixTrie(Family.IPV4)
    >>> trie.insert(Block.parse("192.0.2.0/24"), "fine")
    >>> trie.insert(Block.parse("192.0.0.0/16"), "coarse")
    >>> trie.lookup(Address.parse("192.0.2.9"))
    ('fine', Block.parse('192.0.2.0/24'))
    """

    def __init__(self, family: Family) -> None:
        self.family = family
        self._gen = 0
        self._root: _Node[V] = _Node(0)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _check_family(self, family: Family) -> None:
        if family is not self.family:
            raise ValueError(
                f"trie holds {self.family.name} prefixes, got {family.name}"
            )

    def _bits_of(self, block: Block) -> Iterator[int]:
        return _bits_of(block)

    def frozen(self) -> "FrozenPrefixTrie[V]":
        """Publish an immutable snapshot of the current contents.

        O(1): the snapshot shares this trie's nodes, and the trie bumps
        its generation so any subsequent :meth:`insert`/:meth:`remove`
        clones the path it modifies instead of editing shared nodes.
        The returned view never changes and is safe to read from any
        thread without synchronisation.
        """
        view = FrozenPrefixTrie(self.family, self._root, self._size)
        self._gen += 1
        return view

    def _owned(self, parent: Optional[_Node[V]], bit: int,
               node: _Node[V]) -> _Node[V]:
        """Return a node safe to mutate, cloning a shared one."""
        if node.gen == self._gen:
            return node
        copy = _clone(node, self._gen)
        if parent is None:
            self._root = copy
        else:
            parent.children[bit] = copy
        return copy

    def insert(self, block: Block, value: V) -> None:
        """Insert or replace the value stored at ``block``."""
        self._check_family(block.family)
        node = self._owned(None, 0, self._root)
        for bit in _bits_of(block):
            child = node.children[bit]
            if child is None:
                child = _Node(self._gen)
                node.children[bit] = child
            else:
                child = self._owned(node, bit, child)
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, block: Block) -> bool:
        """Delete the exact prefix; returns False when it was absent.

        Interior nodes left childless are pruned so repeated insert and
        remove cycles do not leak memory.
        """
        self._check_family(block.family)
        if _find(self._root, block) is None:
            return False
        node = self._owned(None, 0, self._root)
        path: List[Tuple[_Node[V], int]] = []
        for bit in _bits_of(block):
            child = node.children[bit]
            assert child is not None  # probed above
            child = self._owned(node, bit, child)
            path.append((node, bit))
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child is not None and not child.has_value and child.children == [None, None]:
                parent.children[bit] = None
            else:
                break
        return True

    def get(self, block: Block) -> Optional[V]:
        """Exact-match lookup of a prefix; None when absent."""
        self._check_family(block.family)
        node = _find(self._root, block)
        if node is None:
            return None
        return node.value if node.has_value else None

    def lookup(self, address: Address) -> Optional[Tuple[V, Block]]:
        """Longest-prefix match for an address.

        Returns ``(value, matched_block)`` for the most specific stored
        prefix containing the address, or None when nothing matches.
        """
        self._check_family(address.family)
        return _lookup(self._root, self.family, address)  # type: ignore[return-value]

    def items(self) -> Iterator[Tuple[Block, V]]:
        """Iterate all stored ``(block, value)`` pairs in prefix order."""
        yield from _walk(self._root, self.family, 0, 0)  # type: ignore[misc]


class FrozenPrefixTrie(Generic[V]):
    """Immutable point-in-time view of a :class:`PrefixTrie`.

    Obtained from :meth:`PrefixTrie.frozen`; shares nodes with the
    live trie under copy-on-write, so it costs nothing to create and
    nothing to hold.  All read operations match the mutable trie's.
    """

    __slots__ = ("family", "_root", "_size")

    def __init__(self, family: Family, root: _Node[V], size: int) -> None:
        self.family = family
        self._root = root
        self._size = size

    def __len__(self) -> int:
        return self._size

    def _check_family(self, family: Family) -> None:
        if family is not self.family:
            raise ValueError(
                f"trie holds {self.family.name} prefixes, got {family.name}"
            )

    def get(self, block: Block) -> Optional[V]:
        """Exact-match lookup of a prefix; None when absent."""
        self._check_family(block.family)
        node = _find(self._root, block)
        if node is None:
            return None
        return node.value if node.has_value else None

    def lookup(self, address: Address) -> Optional[Tuple[V, Block]]:
        """Longest-prefix match; see :meth:`PrefixTrie.lookup`."""
        self._check_family(address.family)
        return _lookup(self._root, self.family, address)  # type: ignore[return-value]

    def items(self) -> Iterator[Tuple[Block, V]]:
        """Iterate all stored ``(block, value)`` pairs in prefix order."""
        yield from _walk(self._root, self.family, 0, 0)  # type: ignore[misc]

    def covered(self, block: Block) -> Iterator[Tuple[Block, V]]:
        """Iterate stored prefixes at or under ``block`` (subtree query).

        Yields ``block`` itself when stored, then every more-specific
        stored prefix inside it, in prefix order.
        """
        self._check_family(block.family)
        node = _find(self._root, block)
        if node is None:
            return
        yield from _walk(node, self.family, block.prefix,  # type: ignore[misc]
                         block.prefix_len)

"""Synthetic IPv6 hitlist in the style of the Gasser et al. hitlist.

The paper's Figure 2b compares the passive system's IPv6 coverage
against the Gasser IPv6 hitlist (74,373 /48 blocks at the time).  We
cannot ship that dataset, so this module synthesises a hitlist with the
structural properties that matter for the comparison:

* addresses cluster into a modest number of announced /32-like regions
  (providers), mirroring the "clusters in the expanse" observation;
* within a region, /48s are sampled with heavy-tailed density — a few
  providers contribute most of the hitlist;
* only a fraction of hitlist /48s ever source traffic toward any single
  vantage point, which is exactly the coverage gap Figure 2b quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set

import numpy as np

from .addr import Family
from .blocks import Block

__all__ = ["Hitlist", "synthesize_hitlist"]


@dataclass
class Hitlist:
    """A set of known-responsive /48 IPv6 blocks.

    ``blocks`` stores right-aligned /48 prefix keys (ints); helper
    methods convert to :class:`Block` objects on demand so bulk set
    operations stay cheap.
    """

    prefix_len: int = 48
    keys: Set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: int) -> bool:
        return key in self.keys

    def add(self, key: int) -> None:
        """Add a right-aligned /48 prefix key to the hitlist."""
        self.keys.add(key)

    def blocks(self) -> List[Block]:
        """Materialise the hitlist as sorted :class:`Block` objects."""
        return [Block(Family.IPV6, key, self.prefix_len) for key in sorted(self.keys)]

    def coverage_fraction(self, observed_keys: Iterable[int]) -> float:
        """Fraction of the hitlist covered by a set of observed blocks.

        This is the Figure 2b statistic: observed /48s that appear in the
        hitlist, divided by hitlist size.
        """
        if not self.keys:
            return 0.0
        observed = set(observed_keys)
        return len(observed & self.keys) / len(self.keys)


def synthesize_hitlist(
    rng: np.random.Generator,
    total_blocks: int = 74373,
    num_providers: int = 200,
    concentration: float = 1.2,
) -> Hitlist:
    """Build a clustered synthetic hitlist of /48 blocks.

    Providers are assigned /32 regions drawn from the 2000::/12-ish
    global-unicast space; each provider receives a Zipf-distributed share
    of the hitlist, and its /48s are random children of its /32.

    Parameters
    ----------
    total_blocks:
        Target number of distinct /48s (defaults to the paper's Gasser
        snapshot size; scale down for fast tests).
    num_providers:
        Number of synthetic /32 allocations.
    concentration:
        Zipf exponent controlling how skewed the per-provider shares are.
    """
    # Provider /32s: 0x2001xxxx-style prefixes inside global unicast.
    provider_prefixes = rng.integers(0x20010000, 0x3FFF0000, size=num_providers)
    provider_prefixes = np.unique(provider_prefixes)

    ranks = np.arange(1, len(provider_prefixes) + 1, dtype=float)
    weights = ranks ** (-concentration)
    weights /= weights.sum()
    shares = rng.multinomial(total_blocks, weights)

    hitlist = Hitlist()
    for prefix32, share in zip(provider_prefixes, shares):
        if share == 0:
            continue
        # A /48 key is the /32 key followed by 16 subnet bits.
        subnet_ids = rng.integers(0, 1 << 16, size=int(share))
        base = int(prefix32) << 16
        for subnet in np.unique(subnet_ids):
            hitlist.add(base | int(subnet))
    return hitlist


def hitlist_from_blocks(blocks: Sequence[Block]) -> Hitlist:
    """Build a hitlist directly from /48 blocks (e.g. the simulator's)."""
    hitlist = Hitlist()
    for block in blocks:
        if block.family is not Family.IPV6 or block.prefix_len != 48:
            raise ValueError(f"hitlist entries must be IPv6 /48s, got {block}")
        hitlist.add(block.prefix)
    return hitlist

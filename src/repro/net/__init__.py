"""Addressing substrate: addresses, blocks, prefix tries, hitlists."""

from .addr import (
    Address,
    AddressError,
    Family,
    format_address,
    format_ipv4,
    format_ipv6,
    parse_address,
    parse_ipv4,
    parse_ipv6,
)
from .blocks import Block, block_of, block_of_value, supernet_key, vector_block_keys
from .hitlist import Hitlist, hitlist_from_blocks, synthesize_hitlist
from .trie import PrefixTrie

__all__ = [
    "Address",
    "AddressError",
    "Family",
    "format_address",
    "format_ipv4",
    "format_ipv6",
    "parse_address",
    "parse_ipv4",
    "parse_ipv6",
    "Block",
    "block_of",
    "block_of_value",
    "supernet_key",
    "vector_block_keys",
    "Hitlist",
    "hitlist_from_blocks",
    "synthesize_hitlist",
    "PrefixTrie",
]

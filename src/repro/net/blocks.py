"""Address blocks — the spatial unit of outage detection.

The paper detects outages per */24 IPv4 block* and per */48 IPv6 block*,
with optional fallback to coarser prefixes when a block is too sparse.
A :class:`Block` is an immutable (family, prefix value, prefix length)
triple; :func:`block_of` maps a packet source address to its enclosing
analysis block, which is the single hottest operation in the passive
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from .addr import Address, AddressError, Family

__all__ = ["Block", "block_of", "block_of_value", "vector_block_keys", "supernet_key"]


@dataclass(frozen=True, order=True)
class Block:
    """An address prefix used as a detection unit.

    ``prefix`` holds the *network* bits right-aligned: for the IPv4 block
    ``192.0.2.0/24`` it is ``0xC00002`` (the top 24 bits of the address),
    not the full 32-bit network address.  Right-aligned prefixes make
    block keys compact and let sibling/supernet arithmetic be plain
    integer shifts.
    """

    family: Family
    prefix: int
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= self.family.bits:
            raise AddressError(
                f"prefix length /{self.prefix_len} invalid for {self.family.name}"
            )
        if self.prefix >> self.prefix_len:
            raise AddressError(
                f"prefix {self.prefix:#x} wider than /{self.prefix_len}"
            )

    @classmethod
    def parse(cls, text: str) -> "Block":
        """Parse CIDR text like ``"192.0.2.0/24"`` or ``"2001:db8::/48"``."""
        address_text, _, length_text = text.partition("/")
        if not length_text:
            raise AddressError(f"missing /len in block {text!r}")
        address = Address.parse(address_text)
        prefix_len = int(length_text)
        if not 0 <= prefix_len <= address.family.bits:
            raise AddressError(f"bad prefix length in {text!r}")
        shift = address.family.bits - prefix_len
        prefix = address.value >> shift
        if (prefix << shift) != address.value:
            raise AddressError(f"host bits set in block {text!r}")
        return cls(address.family, prefix, prefix_len)

    @property
    def network_address(self) -> Address:
        """The zero-host address of this block."""
        shift = self.family.bits - self.prefix_len
        return Address(self.family, self.prefix << shift)

    @property
    def num_addresses(self) -> int:
        """Number of addresses the block spans."""
        return 1 << (self.family.bits - self.prefix_len)

    def __str__(self) -> str:
        return f"{self.network_address}/{self.prefix_len}"

    def contains(self, address: Address) -> bool:
        """True when ``address`` falls inside this block."""
        if address.family is not self.family:
            return False
        return (address.value >> (self.family.bits - self.prefix_len)) == self.prefix

    def supernet(self, new_prefix_len: int) -> "Block":
        """The enclosing block at a shorter prefix length."""
        if new_prefix_len > self.prefix_len:
            raise AddressError(
                f"/{new_prefix_len} is not a supernet of /{self.prefix_len}"
            )
        return Block(
            self.family,
            self.prefix >> (self.prefix_len - new_prefix_len),
            new_prefix_len,
        )

    def subnets(self, new_prefix_len: int) -> Iterator["Block"]:
        """Iterate the child blocks at a longer prefix length."""
        extra = new_prefix_len - self.prefix_len
        if extra < 0:
            raise AddressError(
                f"/{new_prefix_len} is not a subnet of /{self.prefix_len}"
            )
        if extra > 20:
            raise AddressError(f"refusing to enumerate 2**{extra} subnets")
        base = self.prefix << extra
        for offset in range(1 << extra):
            yield Block(self.family, base + offset, new_prefix_len)

    def address_at(self, offset: int) -> Address:
        """The address ``offset`` positions into the block."""
        if not 0 <= offset < self.num_addresses:
            raise AddressError(f"offset {offset} outside {self}")
        return Address(self.family, self.network_address.value + offset)

    def sample_addresses(self, count: int, rng: np.random.Generator) -> List[Address]:
        """Draw ``count`` distinct addresses uniformly from the block.

        Used by the traffic simulator to pick the "active" addresses of a
        block and by active probers to choose probe targets.
        """
        span = self.num_addresses
        span_bits = self.family.bits - self.prefix_len
        if count > span:
            raise AddressError(f"cannot draw {count} addresses from {self}")
        if span <= 1 << 20:
            offsets = rng.choice(span, size=count, replace=False)
        else:
            # The span is astronomically larger than any realistic draw,
            # so rejection sampling terminates almost immediately.  Spans
            # beyond 2**63 exceed the generator's integer range; compose
            # the offset from 63-bit limbs instead.
            chosen = set()
            while len(chosen) < count:
                if span > 1 << 63:
                    high_bits = span_bits - 63
                    offset = (int(rng.integers(0, 1 << high_bits)) << 63) \
                        | int(rng.integers(0, 1 << 63))
                else:
                    offset = int(rng.integers(0, span))
                chosen.add(offset)
            offsets = sorted(chosen)
        return [self.address_at(int(offset)) for offset in offsets]


def block_of(address: Address, prefix_len: int = 0) -> Block:
    """Map an address to its enclosing analysis block.

    With the default ``prefix_len=0`` the family's standard analysis
    granularity is used: /24 for IPv4, /48 for IPv6 (the paper's units).
    """
    if prefix_len == 0:
        prefix_len = address.family.default_block_prefix
    return Block(
        address.family,
        address.value >> (address.family.bits - prefix_len),
        prefix_len,
    )


def block_of_value(family: Family, value: int, prefix_len: int = 0) -> int:
    """Integer fast path of :func:`block_of`: address int -> block key int.

    Returns only the right-aligned prefix integer; pair it with the
    family and prefix length externally.  This is what the packet-rate
    paths use.
    """
    if prefix_len == 0:
        prefix_len = family.default_block_prefix
    return value >> (family.bits - prefix_len)


def vector_block_keys(
    family: Family, values: np.ndarray, prefix_len: int = 0
) -> np.ndarray:
    """Vectorised :func:`block_of_value` over an array of address ints.

    IPv4 fits in uint64 so the shift is a single numpy op; IPv6 values
    arrive as Python-object arrays of ints and are shifted per element.
    """
    if prefix_len == 0:
        prefix_len = family.default_block_prefix
    shift = family.bits - prefix_len
    if family is Family.IPV4:
        return np.asarray(values, dtype=np.uint64) >> np.uint64(shift)
    return np.array([int(v) >> shift for v in values], dtype=object)


def supernet_key(prefix: int, levels: int) -> int:
    """Collapse a right-aligned block key ``levels`` bits toward the root.

    ``supernet_key(k, 4)`` maps a /24 key to its /20 key (or /48 -> /44).
    """
    return prefix >> levels


def blocks_sorted(blocks: Sequence[Block]) -> List[Block]:
    """Return blocks in canonical (family, prefix) order."""
    return sorted(blocks)

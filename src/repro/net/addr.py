"""IP address arithmetic for the outage-detection substrate.

Addresses are represented internally as plain Python integers paired with
an address family.  This keeps the hot paths (hashing millions of packet
sources into block keys) allocation-free and lets the rest of the system
use integers as dictionary keys and numpy array elements.

The module implements parsing and formatting for both IPv4 dotted-quad
and IPv6 colon-hex (including ``::`` compression) from scratch so that
the library has no dependency on the platform's ``inet_pton`` behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = [
    "Family",
    "AddressError",
    "Address",
    "parse_ipv4",
    "parse_ipv6",
    "parse_address",
    "format_ipv4",
    "format_ipv6",
    "format_address",
    "MAX_IPV4",
    "MAX_IPV6",
]

#: Largest representable IPv4 address as an integer.
MAX_IPV4 = (1 << 32) - 1
#: Largest representable IPv6 address as an integer.
MAX_IPV6 = (1 << 128) - 1


class Family(enum.IntEnum):
    """Address family of an address or block.

    The values match the conventional bit widths so that
    ``family.bits`` style arithmetic stays obvious at call sites.
    """

    IPV4 = 4
    IPV6 = 6

    @property
    def bits(self) -> int:
        """Total number of address bits for this family (32 or 128)."""
        return 32 if self is Family.IPV4 else 128

    @property
    def max_address(self) -> int:
        """Largest representable address integer for this family."""
        return MAX_IPV4 if self is Family.IPV4 else MAX_IPV6

    @property
    def default_block_prefix(self) -> int:
        """Prefix length of the paper's analysis block for this family.

        The paper analyses IPv4 at /24 granularity and IPv6 at /48.
        """
        return 24 if self is Family.IPV4 else 48


class AddressError(ValueError):
    """Raised when an address string or integer is malformed."""


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 text into an address integer.

    Rejects shorthand forms (``10.1``), leading zeros that would be
    ambiguous with octal notation, and out-of-range octets.

    >>> parse_ipv4("192.0.2.1")
    3221225985
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"IPv4 address needs 4 octets: {text!r}")
    value = 0
    for part in parts:
        if not part or not part.isdigit():
            raise AddressError(f"bad IPv4 octet {part!r} in {text!r}")
        if len(part) > 1 and part[0] == "0":
            raise AddressError(f"ambiguous leading zero in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format an address integer as dotted-quad IPv4 text.

    >>> format_ipv4(3221225985)
    '192.0.2.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise AddressError(f"IPv4 integer out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _parse_hextets(chunk: str, where: str) -> list:
    """Parse a run of colon-separated hextets, rejecting malformed groups."""
    if not chunk:
        return []
    hextets = []
    for group in chunk.split(":"):
        if not group or len(group) > 4:
            raise AddressError(f"bad IPv6 group {group!r} in {where!r}")
        try:
            hextets.append(int(group, 16))
        except ValueError:
            raise AddressError(f"bad IPv6 group {group!r} in {where!r}") from None
    return hextets


def parse_ipv6(text: str) -> int:
    """Parse colon-hex IPv6 text (with optional ``::``) into an integer.

    Supports the embedded-IPv4 tail form (``::ffff:192.0.2.1``).

    >>> hex(parse_ipv6("2001:db8::1"))
    '0x20010db8000000000000000000000001'
    """
    if text.count("::") > 1:
        raise AddressError(f"multiple '::' in {text!r}")

    # Convert an embedded IPv4 tail into its two trailing hextets.
    if "." in text:
        head, _, tail = text.rpartition(":")
        v4 = parse_ipv4(tail)
        text = f"{head}:{v4 >> 16:x}:{v4 & 0xFFFF:x}"

    if "::" in text:
        left_text, right_text = text.split("::")
        left = _parse_hextets(left_text, text)
        right = _parse_hextets(right_text, text)
        missing = 8 - len(left) - len(right)
        if missing < 1:
            raise AddressError(f"'::' expands to nothing in {text!r}")
        hextets = left + [0] * missing + right
    else:
        hextets = _parse_hextets(text, text)
        if len(hextets) != 8:
            raise AddressError(f"IPv6 address needs 8 groups: {text!r}")

    value = 0
    for hextet in hextets:
        value = (value << 16) | hextet
    return value


def format_ipv6(value: int) -> str:
    """Format an address integer as canonical (RFC 5952) IPv6 text.

    The longest run of two or more zero hextets is compressed to ``::``
    and hex digits are lower-case.

    >>> format_ipv6(0x20010db8000000000000000000000001)
    '2001:db8::1'
    """
    if not 0 <= value <= MAX_IPV6:
        raise AddressError(f"IPv6 integer out of range: {value!r}")
    hextets = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]

    # Find the longest run of zeros (>= 2) to compress, earliest wins ties.
    best_start, best_len = -1, 1
    run_start, run_len = -1, 0
    for index, hextet in enumerate(hextets + [-1]):  # sentinel ends final run
        if hextet == 0:
            if run_len == 0:
                run_start = index
            run_len += 1
        else:
            if run_len > best_len:
                best_start, best_len = run_start, run_len
            run_len = 0

    groups = [f"{h:x}" for h in hextets]
    if best_start < 0:
        return ":".join(groups)
    left = ":".join(groups[:best_start])
    right = ":".join(groups[best_start + best_len:])
    return f"{left}::{right}"


def parse_address(text: str) -> Tuple[Family, int]:
    """Parse either family from text, returning ``(family, value)``."""
    if ":" in text:
        return Family.IPV6, parse_ipv6(text)
    return Family.IPV4, parse_ipv4(text)


def format_address(family: Family, value: int) -> str:
    """Format an address integer for the given family."""
    if family is Family.IPV4:
        return format_ipv4(value)
    return format_ipv6(value)


@dataclass(frozen=True, order=True)
class Address:
    """A single IP address: an integer value tagged with its family.

    ``Address`` is an immutable value type, safe to use as a dict key.
    Ordering sorts IPv4 before IPv6 and then by numeric value, which
    gives a stable total order across mixed-family collections.
    """

    family: Family
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= self.family.max_address:
            raise AddressError(
                f"address {self.value:#x} out of range for {self.family.name}"
            )

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Parse dotted-quad or colon-hex text into an :class:`Address`."""
        family, value = parse_address(text)
        return cls(family, value)

    def __str__(self) -> str:
        return format_address(self.family, self.value)

    def shifted(self, offset: int) -> "Address":
        """Return the address ``offset`` positions away (may be negative)."""
        return Address(self.family, self.value + offset)

    def hosts_in_prefix(self, prefix_len: int) -> Iterator["Address"]:
        """Iterate every address inside this address's enclosing prefix.

        Intended for small prefixes (e.g. a /24 or a /120); iterating a
        /48 would enumerate 2**80 hosts and is a caller bug.
        """
        span_bits = self.family.bits - prefix_len
        if span_bits > 20:
            raise AddressError(f"refusing to enumerate 2**{span_bits} hosts")
        base = (self.value >> span_bits) << span_bits
        for offset in range(1 << span_bits):
            yield Address(self.family, base + offset)

"""CUSUM change detection — the "inflexible prior art" baseline.

The paper's framing: existing systems use "fixed parameters across the
whole internet with CUSUM-like change detection".  This module is that
system, done properly: a one-sided CUSUM on binned arrival counts that
alarms on sustained drops below a reference level, with one global
(k, h) pair shared by every block.

CUSUM recursion on standardised counts x_t:

    s_t = max(0, s_{t-1} + (mu - x_t)/sigma - k)

alarming when ``s_t > h``; the alarm clears once counts return and the
statistic drains below the release level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..telescope.aggregate import BinGrid
from ..timeline import Timeline

__all__ = ["CusumConfig", "CusumDetector"]


@dataclass(frozen=True)
class CusumConfig:
    """Global CUSUM parameters (identical for every block)."""

    bin_seconds: float = 300.0
    #: slack in standard deviations; drops smaller than this accumulate
    #: nothing.  0.75 keeps ordinary Poisson fluctuation from drifting
    #: the statistic upward.
    k: float = 0.75
    #: alarm threshold in accumulated standard deviations.  A silent
    #: dense block still crosses this within 2-3 bins.
    h: float = 8.0
    #: statistic level below which an active alarm releases.
    release: float = 0.5


class CusumDetector:
    """One-sided (downward) CUSUM over per-block binned counts.

    ``train`` estimates each block's reference mean/std from a clean
    window; ``detect`` runs the recursion and returns down timelines.
    Blocks whose training mean is below ``min_mean`` cannot be
    standardised meaningfully and are skipped — the coverage loss the
    paper attributes to homogeneous parameters shows up here naturally.
    """

    def __init__(self, config: Optional[CusumConfig] = None,
                 min_mean: float = 0.5) -> None:
        self.config = config or CusumConfig()
        self.min_mean = min_mean
        self._reference: Dict[int, Tuple[float, float]] = {}

    @property
    def trained_keys(self) -> List[int]:
        return sorted(self._reference)

    def train(self, per_block: Mapping[int, np.ndarray], start: float,
              end: float) -> None:
        """Fit per-block reference statistics over ``[start, end)``."""
        grid = BinGrid(start, end, self.config.bin_seconds)
        self._reference.clear()
        for key, times in per_block.items():
            times = np.asarray(times, dtype=float)
            inside = times[(times >= start) & (times < end)]
            counts = np.bincount(grid.bin_of(inside), minlength=grid.n_bins)
            mean = float(counts.mean())
            if mean < self.min_mean:
                continue
            std = float(counts.std())
            self._reference[key] = (mean, max(std, np.sqrt(mean), 1e-9))

    def detect_block(self, key: int, times: np.ndarray, start: float,
                     end: float) -> Optional[Timeline]:
        """Run the recursion for one trained block (None if untrained)."""
        reference = self._reference.get(key)
        if reference is None:
            return None
        mean, std = reference
        config = self.config
        grid = BinGrid(start, end, config.bin_seconds)
        times = np.asarray(times, dtype=float)
        inside = times[(times >= start) & (times < end)]
        counts = np.bincount(grid.bin_of(inside), minlength=grid.n_bins)

        statistic = 0.0
        alarmed = False
        down: List[Tuple[float, float]] = []
        run_start: Optional[float] = None
        for index in range(grid.n_bins):
            drop = (mean - counts[index]) / std
            statistic = max(0.0, statistic + drop - config.k)
            if not alarmed and statistic > config.h:
                alarmed = True
                run_start = grid.bin_start(index)
            elif alarmed and statistic < config.release:
                alarmed = False
                down.append((run_start, grid.bin_start(index)))
                run_start = None
        if alarmed and run_start is not None:
            down.append((run_start, grid.end))
        return Timeline(start, end, down)

    def detect(self, per_block: Mapping[int, np.ndarray], start: float,
               end: float) -> Dict[int, Timeline]:
        """Timelines for every trained block present in ``per_block``."""
        results: Dict[int, Timeline] = {}
        for key in self._reference:
            timeline = self.detect_block(
                key, per_block.get(key, np.empty(0)), start, end)
            if timeline is not None:
                results[key] = timeline
        return results

"""Fixed-threshold bin detector — the naive passive baseline.

The simplest possible passive detector: one global bin size, "down"
whenever a bin is empty, "up" otherwise.  No model, no inference.  It
serves two purposes: a floor for the benchmark comparisons, and a
demonstration of why per-block tuning matters — at a 5-minute bin this
detector drowns sparse blocks in false outages, and at a 2-hour bin it
cannot see short outages at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from ..telescope.aggregate import BinGrid
from ..timeline import Timeline

__all__ = ["ThresholdBinDetector"]


@dataclass
class ThresholdBinDetector:
    """Declare a block down in every bin with fewer than ``min_count``
    arrivals.

    ``consecutive_bins`` requires that many empty bins in a row before
    declaring down (a crude debounce real deployments add).
    """

    bin_seconds: float = 300.0
    min_count: int = 1
    consecutive_bins: int = 1

    def detect_block(self, times: np.ndarray, start: float,
                     end: float) -> Timeline:
        """Timeline for one block's arrivals."""
        grid = BinGrid(start, end, self.bin_seconds)
        times = np.asarray(times, dtype=float)
        inside = times[(times >= start) & (times < end)]
        counts = np.bincount(grid.bin_of(inside), minlength=grid.n_bins)
        below = counts < self.min_count
        down = []
        run_start = None
        run_length = 0
        for index, is_below in enumerate(below):
            if is_below:
                run_length += 1
                if run_start is None:
                    run_start = index
            else:
                if run_start is not None and run_length >= self.consecutive_bins:
                    down.append((grid.bin_start(run_start),
                                 grid.bin_start(index)))
                run_start = None
                run_length = 0
        if run_start is not None and run_length >= self.consecutive_bins:
            down.append((grid.bin_start(run_start), grid.end))
        return Timeline(start, end, down)

    def detect(self, per_block: Mapping[int, np.ndarray], start: float,
               end: float) -> Dict[int, Timeline]:
        """Timelines for a whole population."""
        return {key: self.detect_block(times, start, end)
                for key, times in per_block.items()}

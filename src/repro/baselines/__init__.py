"""Comparator systems: threshold bins, CUSUM, Chocolatine, Disco."""

from .bins import ThresholdBinDetector
from .chocolatine import ChocolatineConfig, ChocolatineDetector, group_by_as
from .cusum import CusumConfig, CusumDetector
from .disco import DiscoConfig, DiscoDetector

__all__ = [
    "ThresholdBinDetector",
    "ChocolatineConfig",
    "ChocolatineDetector",
    "group_by_as",
    "CusumConfig",
    "CusumDetector",
    "DiscoConfig",
    "DiscoDetector",
]

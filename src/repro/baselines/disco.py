"""Disco-style outage detection (Shah et al., TMA 2017).

Disco watches *long-lived connections* from RIPE Atlas probes: each
probe keeps a persistent TCP session to a controller, so a burst of
near-simultaneous disconnections from one region is strong evidence of
an outage there, with the exact disconnection timestamps giving fast
reaction.  Its blind spots are the paper's contrast points: only
probe-hosting networks are observable, and a single block dropping
(one disconnection) never clears the burst threshold.

The reimplementation models the full chain over the shared simulated
Internet: per-probe session churn (probes reconnect for benign reasons)
plus truth-driven disconnections, then burst detection per region with
outage end estimated from the probes' reconnection times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..net.addr import Family
from ..net.blocks import supernet_key
from ..timeline import Timeline
from ..traffic.internet import BlockProfile, SimulatedInternet

__all__ = ["DiscoConfig", "DiscoDetector"]


@dataclass(frozen=True)
class DiscoConfig:
    """Disco's operating parameters.

    ``min_burst`` disconnections within ``window_seconds`` trigger an
    alarm for the region; benign churn at ``churn_rate`` per probe sets
    the noise floor the threshold must clear.
    """

    window_seconds: float = 120.0
    min_burst: int = 3
    #: benign per-probe session resets (controller restarts, NAT
    #: timeouts): roughly one every 8 hours.
    churn_rate: float = 1.0 / (8.0 * 3600.0)
    #: fraction of observed blocks hosting a probe.
    instrumented_fraction: float = 0.3
    #: prefix bits dropped to form the default region (/24 -> /12).
    region_levels: int = 12
    #: delay before a probe re-establishes its session after an outage.
    reconnect_lag: float = 30.0


class DiscoDetector:
    """Burst detection over probe disconnection streams."""

    def __init__(self, internet: SimulatedInternet,
                 config: Optional[DiscoConfig] = None,
                 seed: int = 20170621) -> None:
        self.internet = internet
        self.config = config or DiscoConfig()
        self.seed = seed

    def instrumented_profiles(self, family: Family) -> List[BlockProfile]:
        """Deterministic probe placement (cf. RIPE Atlas hosting)."""
        rng = np.random.default_rng(self.seed)
        profiles = self.internet.family_profiles(family)
        chosen = rng.random(len(profiles)) < self.config.instrumented_fraction
        return [p for p, keep in zip(profiles, chosen) if keep]

    def _probe_events(self, profile: BlockProfile, start: float, end: float,
                      rng: np.random.Generator
                      ) -> List[Tuple[float, float]]:
        """(disconnect_time, reconnect_time) pairs for one probe."""
        events: List[Tuple[float, float]] = []
        # Outage-driven: session drops at outage start, returns shortly
        # after the block does.
        for down_start, down_end in profile.truth.down_intervals:
            if down_start < start or down_start >= end:
                continue
            events.append((down_start,
                           min(down_end + self.config.reconnect_lag, end)))
        # Benign churn: instant reconnect.
        churn_count = rng.poisson(self.config.churn_rate * (end - start))
        for churn_time in rng.uniform(start, end, size=churn_count):
            events.append((float(churn_time), float(churn_time) + 1.0))
        events.sort()
        return events

    def survey(
        self, family: Family, start: float, end: float,
        region_of_block: Optional[Mapping[int, int]] = None,
    ) -> Dict[int, Timeline]:
        """Detect outages per region over ``[start, end)``.

        Returns one timeline per region with at least one probe.  With
        no explicit mapping, regions are ``region_levels``-bit
        supernets; pass e.g. an AS mapping to mirror the original's
        AS-stream mode.
        """
        config = self.config
        rng = np.random.default_rng(self.seed + 1)
        by_region: Dict[int, List[Tuple[float, float]]] = {}
        for profile in self.instrumented_profiles(family):
            if region_of_block is not None:
                region = region_of_block.get(profile.key)
                if region is None:
                    continue
            else:
                region = supernet_key(profile.key, config.region_levels)
            by_region.setdefault(region, []).extend(
                self._probe_events(profile, start, end, rng))

        timelines: Dict[int, Timeline] = {}
        for region, events in by_region.items():
            timelines[region] = self._detect_region(events, start, end)
        return timelines

    def _detect_region(self, events: Sequence[Tuple[float, float]],
                       start: float, end: float) -> Timeline:
        """Burst scan over one region's disconnection stream."""
        config = self.config
        events = sorted(events)
        disconnects = np.array([d for d, _ in events])
        down: List[Tuple[float, float]] = []
        index = 0
        while index < len(events):
            window_end = disconnects[index] + config.window_seconds
            last = int(np.searchsorted(disconnects, window_end,
                                       side="right"))
            burst = events[index:last]
            if len(burst) >= config.min_burst:
                outage_start = float(disconnects[index])
                # Outage end: when the burst's probes come back — the
                # median reconnect filters stragglers and early churn.
                outage_end = float(np.median([r for _, r in burst]))
                down.append((outage_start, max(outage_end,
                                               outage_start + 1.0)))
                index = last
            else:
                index += 1
        return Timeline(start, end, down)

"""Chocolatine-style AS-level passive detection (Guillot et al., TMA'19).

Chocolatine detects outages in Internet background radiation with a
SARIMA forecast per *AS* (or country): predict the next 5-minute count
from seasonal history and alarm when the observation falls below the
prediction interval.  Its spatial resolution is therefore coarse — an
entire AS — which is exactly the contrast the paper draws with its
per-/24 tuning.

We implement the forecasting core as seasonal AR: the prediction for
bin *t* combines the seasonal mean (same time-of-day across training
days) with an AR(1) correction on the most recent residual, and the
alarm triggers when the observed count drops below
``prediction - z * sigma`` for at least ``min_alarm_bins`` bins.
(Full Box-Jenkins SARIMA fitting adds nothing for counts this regular;
the seasonal-AR shape is what drives Chocolatine's behaviour.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..telescope.aggregate import BinGrid
from ..timeline import Timeline

__all__ = ["ChocolatineConfig", "ChocolatineDetector", "group_by_as"]


@dataclass(frozen=True)
class ChocolatineConfig:
    """Detector parameters (5-minute bins, one-day season, as in the
    original)."""

    bin_seconds: float = 300.0
    season_seconds: float = 86400.0
    #: prediction-interval width in residual standard deviations.
    z: float = 3.0
    #: AR(1) coefficient on the previous residual.
    ar_coefficient: float = 0.6
    #: consecutive below-interval bins required to alarm.
    min_alarm_bins: int = 2
    #: ASes whose training mean per bin is below this are not modelled.
    min_mean_count: float = 2.0


def group_by_as(per_block: Mapping[int, np.ndarray],
                as_of_block: Mapping[int, int]) -> Dict[int, np.ndarray]:
    """Merge per-block arrivals into per-AS arrival streams."""
    buckets: Dict[int, List[np.ndarray]] = {}
    for key, times in per_block.items():
        as_id = as_of_block.get(key)
        if as_id is None:
            continue
        buckets.setdefault(as_id, []).append(np.asarray(times, dtype=float))
    merged: Dict[int, np.ndarray] = {}
    for as_id, pieces in buckets.items():
        stream = np.concatenate(pieces)
        stream.sort()
        merged[as_id] = stream
    return merged


class ChocolatineDetector:
    """Seasonal-AR forecaster with prediction-interval alarms, per AS."""

    def __init__(self, config: Optional[ChocolatineConfig] = None) -> None:
        self.config = config or ChocolatineConfig()
        self._seasonal_mean: Dict[int, np.ndarray] = {}
        self._residual_std: Dict[int, float] = {}

    @property
    def trained_ases(self) -> List[int]:
        return sorted(self._seasonal_mean)

    def _bins_per_season(self) -> int:
        return int(round(self.config.season_seconds
                         / self.config.bin_seconds))

    def train(self, per_as: Mapping[int, np.ndarray], start: float,
              end: float) -> None:
        """Fit per-AS seasonal means from >= 1 training day."""
        config = self.config
        bins_per_season = self._bins_per_season()
        grid = BinGrid(start, end, config.bin_seconds)
        if grid.n_bins < bins_per_season:
            raise ValueError("training window shorter than one season")
        self._seasonal_mean.clear()
        self._residual_std.clear()
        for as_id, times in per_as.items():
            times = np.asarray(times, dtype=float)
            inside = times[(times >= start) & (times < end)]
            counts = np.bincount(grid.bin_of(inside),
                                 minlength=grid.n_bins).astype(float)
            if counts.mean() < config.min_mean_count:
                continue
            full_seasons = (grid.n_bins // bins_per_season) * bins_per_season
            shaped = counts[:full_seasons].reshape(-1, bins_per_season)
            seasonal = shaped.mean(axis=0)
            residuals = shaped - seasonal
            self._seasonal_mean[as_id] = seasonal
            self._residual_std[as_id] = max(
                float(residuals.std()), float(np.sqrt(seasonal.mean())), 1e-9)

    def detect_as(self, as_id: int, times: np.ndarray, start: float,
                  end: float) -> Optional[Timeline]:
        """Alarm timeline for one trained AS (None if untrained)."""
        seasonal = self._seasonal_mean.get(as_id)
        if seasonal is None:
            return None
        config = self.config
        sigma = self._residual_std[as_id]
        bins_per_season = self._bins_per_season()
        grid = BinGrid(start, end, config.bin_seconds)
        times = np.asarray(times, dtype=float)
        inside = times[(times >= start) & (times < end)]
        counts = np.bincount(grid.bin_of(inside),
                             minlength=grid.n_bins).astype(float)

        previous_residual = 0.0
        below_streak = 0
        alarmed = False
        down: List[Tuple[float, float]] = []
        run_start: Optional[float] = None
        for index in range(grid.n_bins):
            season_slot = int((grid.bin_start(index) % config.season_seconds)
                              // config.bin_seconds) % bins_per_season
            prediction = (seasonal[season_slot]
                          + config.ar_coefficient * previous_residual)
            lower_bound = prediction - config.z * sigma
            observed = counts[index]
            if observed < lower_bound:
                below_streak += 1
            else:
                below_streak = 0
            if not alarmed and below_streak >= config.min_alarm_bins:
                alarmed = True
                run_start = grid.bin_start(index - config.min_alarm_bins + 1)
            elif alarmed and below_streak == 0:
                alarmed = False
                down.append((run_start, grid.bin_start(index)))
                run_start = None
            # During an alarm the residual is contaminated; freeze it so
            # recovery is judged against the seasonal norm.
            if not alarmed:
                previous_residual = observed - seasonal[season_slot]
        if alarmed and run_start is not None:
            down.append((run_start, grid.end))
        return Timeline(start, end, down)

    def detect(self, per_as: Mapping[int, np.ndarray], start: float,
               end: float) -> Dict[int, Timeline]:
        """Alarm timelines for all trained ASes."""
        results: Dict[int, Timeline] = {}
        for as_id in self._seasonal_mean:
            timeline = self.detect_as(
                as_id, per_as.get(as_id, np.empty(0)), start, end)
            if timeline is not None:
                results[as_id] = timeline
        return results

"""Generic active-probing primitives over the simulated Internet.

Active comparators (Trinocular, RIPE-Atlas-style anchors) all reduce to
"send a probe to an address at a time, observe response/timeout".  The
:class:`ActiveProber` wraps the simulator's truth with the artefacts a
real prober faces — per-probe network loss and a probing budget — so the
comparators' imperfections are simulated, not assumed away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..net.addr import Family
from ..traffic.internet import BlockProfile, SimulatedInternet

__all__ = ["ProbeRecord", "ActiveProber"]


@dataclass(frozen=True)
class ProbeRecord:
    """One probe and its outcome."""

    time: float
    family: Family
    target: int
    responded: bool


@dataclass
class ActiveProber:
    """Probe issuer with loss and budget accounting.

    ``network_loss`` models transit loss *in addition to* per-address
    responsiveness (which the simulator owns); real probers cannot tell
    the two apart, and neither can this one.
    """

    internet: SimulatedInternet
    rng: np.random.Generator
    network_loss: float = 0.01
    probes_sent: int = 0
    responses_seen: int = 0
    log: Optional[List[ProbeRecord]] = None

    def probe(self, family: Family, target: int, time: float) -> bool:
        """Send one probe; True on response."""
        self.probes_sent += 1
        responded = False
        if self.rng.random() >= self.network_loss:
            responded = self.internet.probe(family, target, time, self.rng)
        if responded:
            self.responses_seen += 1
        if self.log is not None:
            self.log.append(ProbeRecord(time, family, target, responded))
        return responded

    def probe_round(self, profile: BlockProfile, time: float,
                    max_probes: int, inter_probe_gap: float = 3.0
                    ) -> Tuple[int, bool]:
        """Probe a block's known-active addresses until one responds.

        Returns ``(probes_used, any_response)``.  Addresses are tried in
        a random rotation, one every ``inter_probe_gap`` seconds, the
        way Trinocular paces its rounds.
        """
        addresses = profile.active_addresses
        if len(addresses) == 0:
            return 0, False
        order = self.rng.permutation(len(addresses))
        used = 0
        for slot, index in enumerate(order[:max_probes]):
            used += 1
            if self.probe(profile.family, int(addresses[index]),
                          time + slot * inter_probe_gap):
                return used, True
        return used, False

    @property
    def response_rate(self) -> float:
        return (self.responses_seen / self.probes_sent
                if self.probes_sent else 0.0)

"""Trinocular: adaptive active probing (Quan et al., SIGCOMM 2013).

Reimplementation of the paper's primary comparator / ground-truth
system.  Trinocular watches each /24 with Bayesian inference driven by
*active* probes: every 11-minute round it probes addresses from the
block's ever-active history one at a time (up to 15), updating a belief
B(U) until the block's state is certain, then sleeps until the next
round.

The essential properties reproduced here, because the paper's Tables
1–2 hinge on them:

* **11-minute rounds** — outages shorter than a round are invisible,
  and edges are quantised to round boundaries (±330 s precision);
* **belief model over E(b)/A(b)** — a response is strong evidence of
  up; a timeout is weak evidence of down, weighted by the block's
  historical responsiveness A;
* **adaptive probe count** — dense, responsive blocks settle in one
  probe; poorly-responding blocks may exhaust all 15 and remain
  uncertain.

The per-round inner loop is vectorised across blocks (geometric draw of
"probes until first response"), which matches sequential probing
exactly for the likelihood model used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..net.addr import Family
from ..timeline import Timeline
from ..traffic.internet import BlockProfile, SimulatedInternet

__all__ = ["TrinocularConfig", "TrinocularResult", "Trinocular"]

#: Trinocular's belief thresholds from the SIGCOMM paper.
_BELIEF_DOWN = 0.1
_BELIEF_UP = 0.9


@dataclass(frozen=True)
class TrinocularConfig:
    """Operating parameters (defaults follow the 2013 paper)."""

    round_seconds: float = 660.0
    max_probes_per_round: int = 15
    network_loss: float = 0.01
    #: probability a *down* block still yields a response (spoofing /
    #: partial outage leakage); the paper's likelihoods use a small
    #: non-zero value so belief never saturates irrecoverably.
    ghost_response_prob: float = 0.001
    mean_time_between_failures: float = 14.0 * 86400.0
    mean_time_to_repair: float = 3600.0
    #: blocks with fewer ever-active addresses than this are not probed
    #: (Trinocular tracks only blocks with usable history).
    min_active_addresses: int = 2

    def transition_priors(self) -> Tuple[float, float]:
        p_down = 1.0 - float(np.exp(-self.round_seconds
                                    / self.mean_time_between_failures))
        p_up = 1.0 - float(np.exp(-self.round_seconds
                                  / self.mean_time_to_repair))
        return p_down, p_up


@dataclass
class TrinocularResult:
    """Trinocular's verdicts for one block."""

    key: int
    family: Family
    timeline: Timeline
    probes_sent: int
    rounds_uncertain: int


class Trinocular:
    """Run Trinocular over the simulated Internet.

    Usage::

        trinocular = Trinocular(internet)
        results = trinocular.survey(Family.IPV4, start, end)

    Produces one :class:`TrinocularResult` per trackable block, whose
    timeline is the comparator ground truth for Tables 1–2.
    """

    def __init__(self, internet: SimulatedInternet,
                 config: Optional[TrinocularConfig] = None,
                 seed: int = 20130812) -> None:
        self.internet = internet
        self.config = config or TrinocularConfig()
        self.seed = seed

    def trackable_profiles(self, family: Family) -> List[BlockProfile]:
        """Blocks Trinocular has enough history to probe."""
        return [
            profile for profile in self.internet.family_profiles(family)
            if len(profile.active_addresses)
            >= self.config.min_active_addresses
        ]

    def survey(self, family: Family, start: float, end: float
               ) -> Dict[int, TrinocularResult]:
        """Probe every trackable block from ``start`` to ``end``."""
        profiles = self.trackable_profiles(family)
        if not profiles:
            return {}
        config = self.config
        rng = np.random.default_rng(self.seed)
        n_blocks = len(profiles)
        round_times = np.arange(start, end, config.round_seconds)
        n_rounds = round_times.size

        # Effective per-probe response probability when the block is up:
        # the address answers AND transit does not drop the probe.
        response_prob = np.array([
            profile.probe_response_prob * (1.0 - config.network_loss)
            for profile in profiles
        ])
        response_prob = np.clip(response_prob, 1e-3, 1.0 - 1e-3)
        address_counts = np.array(
            [len(p.active_addresses) for p in profiles])
        max_probes = np.minimum(config.max_probes_per_round, address_counts)

        # Truth at each round start, vectorised per block.
        truth_up = np.empty((n_blocks, n_rounds), dtype=bool)
        for row, profile in enumerate(profiles):
            truth_up[row] = _up_at_times(profile.truth, round_times)

        p_down_prior, p_up_prior = config.transition_priors()
        belief = np.full(n_blocks, 1.0 - 1e-6)
        up_state = np.ones(n_blocks, dtype=bool)
        states = np.empty((n_blocks, n_rounds), dtype=bool)
        probes_per_block = np.zeros(n_blocks, dtype=np.int64)
        uncertain_rounds = np.zeros(n_blocks, dtype=np.int64)
        ghost = config.ghost_response_prob

        for round_index in range(n_rounds):
            belief = (belief * (1.0 - p_down_prior)
                      + (1.0 - belief) * p_up_prior)
            up_now = truth_up[:, round_index]

            # Probes until first response: geometric when up; a down
            # block only ever gets ghost responses.
            first_hit = np.where(
                up_now,
                rng.geometric(response_prob),
                rng.geometric(np.full(n_blocks, ghost)),
            )
            responded = first_hit <= max_probes
            probes_used = np.where(responded, first_hit, max_probes)
            probes_per_block += probes_used

            # Posterior after (probes_used - 1) timeouts and, when
            # responded, one response.  Work in odds space.
            odds = belief / (1.0 - belief)
            timeout_ratio = (1.0 - response_prob) / 1.0  # L(none|up)/L(none|down)
            timeouts = probes_used - responded.astype(int)
            odds = odds * np.power(timeout_ratio, timeouts)
            odds = np.where(responded, odds * (response_prob / ghost), odds)
            belief = odds / (1.0 + odds)
            np.clip(belief, 1e-9, 1.0 - 1e-9, out=belief)

            newly_certain = (belief >= _BELIEF_UP) | (belief <= _BELIEF_DOWN)
            uncertain_rounds += ~newly_certain
            up_state = np.where(belief >= _BELIEF_UP, True,
                                np.where(belief <= _BELIEF_DOWN, False,
                                         up_state))
            states[:, round_index] = up_state

        results: Dict[int, TrinocularResult] = {}
        for row, profile in enumerate(profiles):
            timeline = _states_to_timeline(
                states[row], round_times, config.round_seconds, start, end)
            results[profile.key] = TrinocularResult(
                key=profile.key,
                family=family,
                timeline=timeline,
                probes_sent=int(probes_per_block[row]),
                rounds_uncertain=int(uncertain_rounds[row]),
            )
        return results


def _up_at_times(truth: Timeline, times: np.ndarray) -> np.ndarray:
    """Vectorised Timeline.is_up_at over sorted query times."""
    up = np.ones(times.size, dtype=bool)
    for down_start, down_end in truth.down_intervals:
        left = np.searchsorted(times, down_start, side="left")
        right = np.searchsorted(times, down_end, side="left")
        up[left:right] = False
    return up


def _states_to_timeline(states: np.ndarray, round_times: np.ndarray,
                        round_seconds: float, start: float,
                        end: float) -> Timeline:
    """Round verdicts -> timeline with round-boundary edges.

    A round's verdict covers the round's span; this quantisation is the
    source of Trinocular's ±half-round timing uncertainty.
    """
    down: List[Tuple[float, float]] = []
    run_start: Optional[float] = None
    for index, is_up in enumerate(states):
        time = float(round_times[index])
        if not is_up and run_start is None:
            run_start = time
        elif is_up and run_start is not None:
            down.append((run_start, time))
            run_start = None
    if run_start is not None:
        down.append((run_start, end))
    return Timeline(start, end, down)

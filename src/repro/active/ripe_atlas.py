"""RIPE-Atlas-style probing: the short-outage ground truth (Table 3).

The paper validates 5-minute outages against RIPE Atlas built-in
measurements (as Chocolatine did).  We model the relevant mechanics:
a subset of blocks host Atlas probes; each probe runs a built-in ping
every ~6 minutes toward well-connected anchors, so a block's
connectivity is *sampled*, with ±half-interval timing uncertainty
(the ±180 s the paper works around by comparing events, not seconds).

A block is judged down at a sample when none of its probes' pings get
through; consecutive down samples form outage events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..net.addr import Family
from ..timeline import Timeline
from ..traffic.internet import BlockProfile, SimulatedInternet
from .trinocular import _up_at_times

__all__ = ["RipeAtlasConfig", "RipeAtlas", "RipeResult"]


@dataclass(frozen=True)
class RipeAtlasConfig:
    """Atlas-like measurement parameters.

    ``sample_seconds=360`` gives the ±180 s timing precision the paper
    quotes for the RIPE comparison.
    """

    sample_seconds: float = 360.0
    pings_per_sample: int = 3
    ping_success_prob: float = 0.95
    #: fraction of observed blocks that host an Atlas probe.
    instrumented_fraction: float = 0.15
    #: Atlas probes live in well-connected networks: blocks quieter than
    #: this toward the vantage point are never instrumented (matching
    #: the paper's comparison set of blocks "having traffic from both
    #: B-root and RIPE").
    min_block_rate: float = 0.0


@dataclass
class RipeResult:
    """Atlas verdicts for one instrumented block."""

    key: int
    family: Family
    timeline: Timeline
    samples: int
    lost_samples: int


class RipeAtlas:
    """Sampled connectivity measurements over the simulated Internet."""

    def __init__(self, internet: SimulatedInternet,
                 config: Optional[RipeAtlasConfig] = None,
                 seed: int = 19920401) -> None:
        self.internet = internet
        self.config = config or RipeAtlasConfig()
        self.seed = seed

    def instrumented_profiles(self, family: Family) -> List[BlockProfile]:
        """Deterministically choose which blocks host probes.

        The draw is keyed by the block prefix so the same simulated
        Internet always instruments the same blocks, independent of
        measurement window.
        """
        rng = np.random.default_rng(self.seed)
        profiles = [p for p in self.internet.family_profiles(family)
                    if p.mean_rate >= self.config.min_block_rate]
        chosen = rng.random(len(profiles)) < self.config.instrumented_fraction
        return [p for p, keep in zip(profiles, chosen) if keep]

    def survey(self, family: Family, start: float, end: float
               ) -> Dict[int, RipeResult]:
        """Sample every instrumented block over ``[start, end)``."""
        config = self.config
        profiles = self.instrumented_profiles(family)
        results: Dict[int, RipeResult] = {}
        sample_times = np.arange(start, end, config.sample_seconds)
        rng = np.random.default_rng(self.seed + 1)
        for profile in profiles:
            up = _up_at_times(profile.truth, sample_times)
            # Ping outcomes: when the block is up, at least one of the
            # sample's pings must land; when down, all fail.
            all_lost_given_up = ((1.0 - config.ping_success_prob)
                                 ** config.pings_per_sample)
            false_loss = rng.random(sample_times.size) < all_lost_given_up
            observed_up = up & ~false_loss
            timeline = _samples_to_timeline(
                observed_up, sample_times, config.sample_seconds, start, end)
            results[profile.key] = RipeResult(
                key=profile.key,
                family=family,
                timeline=timeline,
                samples=int(sample_times.size),
                lost_samples=int((~observed_up).sum()),
            )
        return results


def _samples_to_timeline(observed_up: np.ndarray, sample_times: np.ndarray,
                         sample_seconds: float, start: float,
                         end: float) -> Timeline:
    """Sample verdicts -> timeline; a lone lost sample is kept (it is a
    ~6-minute candidate outage — exactly the short events Table 3
    compares), but its edges carry half-interval uncertainty."""
    down: List[Tuple[float, float]] = []
    run_start: Optional[float] = None
    for index, is_up in enumerate(observed_up):
        time = float(sample_times[index])
        if not is_up and run_start is None:
            run_start = time
        elif is_up and run_start is not None:
            down.append((run_start, time))
            run_start = None
    if run_start is not None:
        down.append((run_start, end))
    return Timeline(start, end, down)

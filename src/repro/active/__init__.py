"""Active-probing comparators: generic prober, Trinocular, RIPE Atlas."""

from .prober import ActiveProber, ProbeRecord
from .ripe_atlas import RipeAtlas, RipeAtlasConfig, RipeResult
from .trinocular import Trinocular, TrinocularConfig, TrinocularResult

__all__ = [
    "ActiveProber",
    "ProbeRecord",
    "RipeAtlas",
    "RipeAtlasConfig",
    "RipeResult",
    "Trinocular",
    "TrinocularConfig",
    "TrinocularResult",
]

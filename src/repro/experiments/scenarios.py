"""Canonical experiment scenarios for the paper's tables and figures.

Every benchmark, example, and CLI experiment builds its simulated
Internet from one of these constructors so the numbers in
EXPERIMENTS.md are regenerated from exactly one place.  Each scenario
accepts a ``scale`` factor: 1.0 is the calibrated default used for the
recorded results; smaller values shrink block populations for quick
runs (CI, property tests) without changing the per-block physics.

All scenarios simulate two days: day one is clean training history, day
two carries the injected outages and is the evaluation window — the
same protocol as the paper's train-on-history / detect-on-day split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..net.addr import Family
from ..traffic.internet import FamilyConfig, InternetConfig, SimulatedInternet
from ..traffic.outages import IPV4_OUTAGE_MODEL, IPV6_OUTAGE_MODEL, OutageModel

__all__ = ["DAY", "TRAIN_END", "EVAL_END", "Scenario", "long_outage_scenario",
           "short_outage_scenario", "tradeoff_scenario", "ipv6_scenario",
           "uplift_scenario", "split_window"]

DAY = 86400.0
TRAIN_END = DAY
EVAL_END = 2 * DAY


@dataclass
class Scenario:
    """A built simulated Internet plus its per-block arrival streams."""

    internet: SimulatedInternet
    per_block_v4: Dict[int, np.ndarray]
    per_block_v6: Dict[int, np.ndarray]

    def per_block(self, family: Family) -> Dict[int, np.ndarray]:
        return (self.per_block_v4 if family is Family.IPV4
                else self.per_block_v6)

    def truths(self, family: Family, start: float = TRAIN_END,
               end: float = EVAL_END) -> Dict[int, "object"]:
        """Ground-truth timelines clipped to the evaluation window."""
        return {p.key: p.truth.clip(start, end)
                for p in self.internet.family_profiles(family)}


def _build(config: InternetConfig) -> Scenario:
    internet = SimulatedInternet.build(config)
    v4: Dict[int, np.ndarray] = {}
    v6: Dict[int, np.ndarray] = {}
    for profile, times in internet.passive_observations():
        target = v4 if profile.family is Family.IPV4 else v6
        target[profile.key] = times
    return Scenario(internet=internet, per_block_v4=v4, per_block_v6=v6)


def split_window(per_block: Mapping[int, np.ndarray],
                 boundary: float = TRAIN_END
                 ) -> Tuple[Dict[int, np.ndarray], Dict[int, np.ndarray]]:
    """Split each block's arrivals into (training, evaluation) halves."""
    train = {key: times[times < boundary] for key, times in per_block.items()}
    evaluate = {key: times[times >= boundary]
                for key, times in per_block.items()}
    return train, evaluate


def long_outage_scenario(scale: float = 1.0, seed: int = 44) -> Scenario:
    """Tables 1 and 2: a day of ordinary outages over a mixed population.

    Outage phenomenology follows the defaults calibrated to the paper:
    ~5.5 % of blocks see an outage, with a short/long duration mixture.
    The default seed picks a representative day: across seeds the
    vs-Trinocular TNR spans ~0.76–0.88 (which outages land on which
    blocks is a big lever for a single day), and this day sits at the
    distribution's centre, closest to the paper's published 0.842.
    """
    n_blocks = max(200, int(2000 * scale))
    config = InternetConfig(
        end=EVAL_END, training_seconds=TRAIN_END, seed=seed,
        ipv4=FamilyConfig(n_blocks=n_blocks,
                          outage_model=IPV4_OUTAGE_MODEL))
    return _build(config)


def short_outage_scenario(scale: float = 1.0, seed: int = 7) -> Scenario:
    """Table 3: the short-outage day compared against RIPE Atlas.

    Outages skew short (70 % in the ~5–10-minute class) so the event
    comparison has material short-outage mass, and the population is
    larger so several hundred blocks carry both B-root traffic and an
    Atlas probe — the paper compared ~600 such blocks.
    """
    n_blocks = max(400, int(4000 * scale))
    model = OutageModel(outage_probability=0.12, short_fraction=0.7,
                        extra_event_mean=0.3,
                        short_log_mean=float(np.log(420.0)),
                        short_log_sigma=0.3)
    config = InternetConfig(
        end=EVAL_END, training_seconds=TRAIN_END, seed=seed,
        ipv4=FamilyConfig(n_blocks=n_blocks, outage_model=model))
    return _build(config)


def tradeoff_scenario(scale: float = 1.0, seed: int = 11) -> Scenario:
    """Figure 1: a dense/sparse mix wide enough to show the coverage
    curve saturating near 90 % at coarse bins."""
    n_blocks = max(300, int(3000 * scale))
    config = InternetConfig(
        end=EVAL_END, training_seconds=TRAIN_END, seed=seed,
        ipv4=FamilyConfig(n_blocks=n_blocks,
                          outage_model=IPV4_OUTAGE_MODEL))
    return _build(config)


def ipv6_scenario(scale: float = 1.0, seed: int = 66) -> Scenario:
    """Figures 2a/2b: joint IPv4 + IPv6 population.

    The IPv4:IPv6 measurable-block ratio (~14:1) and the per-family
    outage propensities (5.5 % vs 12 %) follow the paper; vantage
    visibility is below 1 because B-root sees only recursive resolvers —
    the gap prior systems' denominators expose in Figure 2b.
    """
    n_v4 = max(700, int(7000 * scale))
    # IPv6 shrinks sub-linearly: its population is already small at full
    # scale, and the Figure 2a rate comparison needs >= ~100 measurable
    # /48s to escape small-sample noise.
    n_v6 = max(330, int(500 * scale ** 0.3))
    config = InternetConfig(
        end=EVAL_END, training_seconds=TRAIN_END, seed=seed,
        ipv4=FamilyConfig(n_blocks=n_v4, outage_model=IPV4_OUTAGE_MODEL,
                          vantage_visibility=0.23),
        ipv6=FamilyConfig(n_blocks=n_v6, outage_model=IPV6_OUTAGE_MODEL,
                          vantage_visibility=0.26))
    return _build(config)


def uplift_scenario(scale: float = 1.0, seed: int = 19) -> Scenario:
    """Short-outage uplift accounting: a day whose 5–11-minute events
    carry paper-like mass relative to the long events (the poster's
    "+20 % total outage duration" claim)."""
    n_blocks = max(400, int(4000 * scale))
    model = OutageModel(outage_probability=0.12, short_fraction=0.65,
                        extra_event_mean=0.5,
                        short_log_mean=float(np.log(420.0)),
                        short_log_sigma=0.3,
                        long_log_mean=float(np.log(2500.0)),
                        long_log_sigma=0.45,
                        max_duration=4.0 * 3600.0)
    config = InternetConfig(
        end=EVAL_END, training_seconds=TRAIN_END, seed=seed,
        ipv4=FamilyConfig(n_blocks=n_blocks, outage_model=model))
    return _build(config)

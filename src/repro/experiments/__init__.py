"""Canonical experiments reproducing the paper's tables and figures."""

from .extensions import (
    AblationResult,
    BaselineComparison,
    FusionResult,
    ShortUpliftResult,
    run_baseline_comparison,
    run_darknet_fusion,
    run_sensitivity,
    run_short_uplift,
    run_tuning_ablation,
)
from .figures import (
    Figure1Result,
    Figure2aResult,
    Figure2bResult,
    run_figure1,
    run_figure2a,
    run_figure2b,
)
from .scenarios import (
    DAY,
    EVAL_END,
    TRAIN_END,
    Scenario,
    ipv6_scenario,
    long_outage_scenario,
    short_outage_scenario,
    split_window,
    tradeoff_scenario,
)
from .tables import TableResult, detect_passive, run_table1, run_table2, run_table3
from .weeklong import WeekResult, run_week_validation

__all__ = [
    "AblationResult",
    "BaselineComparison",
    "FusionResult",
    "ShortUpliftResult",
    "run_baseline_comparison",
    "run_darknet_fusion",
    "run_sensitivity",
    "run_short_uplift",
    "run_tuning_ablation",
    "Figure1Result",
    "Figure2aResult",
    "Figure2bResult",
    "run_figure1",
    "run_figure2a",
    "run_figure2b",
    "DAY",
    "EVAL_END",
    "TRAIN_END",
    "Scenario",
    "ipv6_scenario",
    "long_outage_scenario",
    "short_outage_scenario",
    "split_window",
    "tradeoff_scenario",
    "TableResult",
    "detect_passive",
    "run_table1",
    "run_table2",
    "run_table3",
    "WeekResult",
    "run_week_validation",
]

"""Runners for the paper's confusion-matrix tables (Tables 1–3).

Each ``run_*`` function builds its canonical scenario, runs the passive
pipeline and the relevant comparator over the same simulated truth, and
returns the confusion matrix the paper reports, plus the rendered
table text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..active.ripe_atlas import RipeAtlas, RipeAtlasConfig
from ..active.trinocular import Trinocular
from ..core.pipeline import PassiveOutagePipeline
from ..eval.confusion import Confusion, confusion_for_population
from ..eval.coverage import confusion_by_density
from ..eval.matching import event_confusion_for_population
from ..eval.report import format_confusion_table
from ..net.addr import Family
from ..timeline import Timeline
from ..traffic.rates import DensityClass
from .scenarios import (
    EVAL_END,
    TRAIN_END,
    Scenario,
    long_outage_scenario,
    short_outage_scenario,
    split_window,
)

__all__ = ["TableResult", "run_table1", "run_table2", "run_table3",
           "detect_passive"]

#: RIPE instrumentation for the Table 3 comparison set (calibrated so a
#: paper-sized population of blocks carries both signals).
RIPE_CONFIG = RipeAtlasConfig(instrumented_fraction=0.6, min_block_rate=0.01)


@dataclass
class TableResult:
    """One reproduced table: the matrix, its rendering, and context."""

    name: str
    confusion: Confusion
    text: str
    compared_blocks: int
    paper: Dict[str, float]

    def __str__(self) -> str:
        return self.text


def detect_passive(scenario: Scenario, family: Family = Family.IPV4,
                   pipeline: Optional[PassiveOutagePipeline] = None):
    """Train on day 1, detect on day 2; returns (model, result)."""
    pipeline = pipeline or PassiveOutagePipeline()
    train, evaluate = split_window(scenario.per_block(family))
    model = pipeline.train(family, train, 0.0, TRAIN_END)
    result = pipeline.detect(model, evaluate, TRAIN_END, EVAL_END)
    return model, result


def _passive_timelines(result) -> Dict[int, Timeline]:
    return {key: block.timeline for key, block in result.blocks.items()}


def run_table1(scale: float = 1.0, seed: int = 44) -> TableResult:
    """Table 1: long-duration outages vs Trinocular, in seconds."""
    scenario = long_outage_scenario(scale, seed)
    _, result = detect_passive(scenario)
    trinocular = Trinocular(scenario.internet).survey(
        Family.IPV4, TRAIN_END, EVAL_END)
    ours = _passive_timelines(result)
    theirs = {key: r.timeline for key, r in trinocular.items()}
    confusion = confusion_for_population(ours, theirs)
    text = format_confusion_table(
        confusion, "Table 1: confusion matrix for long-duration outages "
                   "(seconds)")
    return TableResult(
        name="table1", confusion=confusion, text=text,
        compared_blocks=len(set(ours) & set(theirs)),
        paper={"precision": 0.9999, "recall": 0.9985, "tnr": 0.84178},
    )


def run_table2(scale: float = 1.0, seed: int = 44) -> TableResult:
    """Table 2: long-duration outages on *dense* blocks, in seconds."""
    scenario = long_outage_scenario(scale, seed)
    model, result = detect_passive(scenario)
    trinocular = Trinocular(scenario.internet).survey(
        Family.IPV4, TRAIN_END, EVAL_END)
    ours = _passive_timelines(result)
    theirs = {key: r.timeline for key, r in trinocular.items()}
    split = confusion_by_density(ours, theirs, model.histories)
    confusion = split[DensityClass.DENSE]
    text = format_confusion_table(
        confusion, "Table 2: confusion matrix for long-duration outages "
                   "on dense blocks (seconds)")
    dense_keys = [key for key in set(ours) & set(theirs)
                  if model.histories[key].density is DensityClass.DENSE]
    return TableResult(
        name="table2", confusion=confusion, text=text,
        compared_blocks=len(dense_keys),
        paper={"precision": 0.99, "recall": 0.99, "tnr": 0.96},
    )


def run_table3(scale: float = 1.0, seed: int = 7) -> TableResult:
    """Table 3: short-duration outages vs RIPE Atlas, in events."""
    scenario = short_outage_scenario(scale, seed)
    _, result = detect_passive(scenario)
    ripe = RipeAtlas(scenario.internet, RIPE_CONFIG).survey(
        Family.IPV4, TRAIN_END, EVAL_END)
    ours = _passive_timelines(result)
    theirs = {key: r.timeline for key, r in ripe.items()}
    confusion = event_confusion_for_population(ours, theirs)
    text = format_confusion_table(
        confusion, "Table 3: confusion matrix for short-duration outages "
                   "(events)", unit="events", ground_truth="RIPE")
    return TableResult(
        name="table3", confusion=confusion, text=text,
        compared_blocks=len(set(ours) & set(theirs)),
        paper={"precision": 0.97692, "recall": 0.9453, "tnr": 0.7341},
    )

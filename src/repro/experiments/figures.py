"""Runners for the paper's figures (Figure 1, Figure 2a, Figure 2b)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..active.trinocular import Trinocular
from ..core.parameters import DEFAULT_BIN_LADDER
from ..eval.confusion import Confusion
from ..eval.coverage import (
    CoveragePoint,
    OutageRateReport,
    PriorCoverageReport,
    SpatialCoveragePoint,
    confusion_by_density,
    coverage_vs_bin,
    coverage_vs_spatial,
    outage_rate_report,
    prior_coverage_report,
)
from ..eval.report import (
    format_coverage_curve,
    format_outage_rates,
    format_prior_coverage,
)
from ..net.addr import Family
from ..net.hitlist import Hitlist, synthesize_hitlist
from ..traffic.rates import DensityClass
from .scenarios import (
    EVAL_END,
    TRAIN_END,
    ipv6_scenario,
    tradeoff_scenario,
)
from .tables import detect_passive

import numpy as np

__all__ = ["Figure1Result", "run_figure1", "Figure2aResult", "run_figure2a",
           "Figure2bResult", "run_figure2b"]


@dataclass
class Figure1Result:
    """Figure 1: temporal precision vs coverage trade-off."""

    points: List[CoveragePoint]
    spatial_points: List[SpatialCoveragePoint]
    precision_by_density: Dict[DensityClass, Confusion]
    text: str

    @property
    def coverage_at_coarsest(self) -> float:
        return self.points[-1].coverage

    @property
    def coverage_at_finest(self) -> float:
        return self.points[0].coverage

    def __str__(self) -> str:
        return self.text


def run_figure1(scale: float = 1.0, seed: int = 11) -> Figure1Result:
    """Sweep the bin ladder and report coverage plus per-class precision.

    Coverage is the paper's y-axis ("percentage of observed B-root
    blocks"); the per-density confusion quantifies the "good precision
    for dense, less for sparse" statement.
    """
    scenario = tradeoff_scenario(scale, seed)
    model, result = detect_passive(scenario)
    points = coverage_vs_bin(model.histories, DEFAULT_BIN_LADDER)
    spatial_points = coverage_vs_spatial(model.histories,
                                         bin_seconds=300.0)

    trinocular = Trinocular(scenario.internet).survey(
        Family.IPV4, TRAIN_END, EVAL_END)
    ours = {key: block.timeline for key, block in result.blocks.items()}
    theirs = {key: r.timeline for key, r in trinocular.items()}
    split = confusion_by_density(ours, theirs, model.histories)

    lines = [format_coverage_curve(points),
             "",
             "  Alternative: hold 5-min bins, coarsen *spatial* "
             "precision instead:"]
    for point in spatial_points:
        bar = "#" * int(round(point.coverage * 40))
        lines.append(f"    /{24 - point.levels:<3d} blocks "
                     f"{point.covered_blocks:>6d}/{point.total_blocks}"
                     f"{point.coverage:>9.1%}  {bar}")
    lines += ["", "  Time-weighted precision by density class:"]
    for density in (DensityClass.DENSE, DensityClass.SPARSE):
        confusion = split[density]
        if confusion.total:
            lines.append(f"    {density.value:>7s}: "
                         f"precision {confusion.precision:.4f}, "
                         f"TNR {confusion.tnr:.4f}")
    return Figure1Result(points=points, spatial_points=spatial_points,
                         precision_by_density=split,
                         text="\n".join(lines))


@dataclass
class Figure2aResult:
    """Figure 2a: measurable blocks and outage rate, IPv4 vs IPv6."""

    reports: List[OutageRateReport]
    text: str

    @property
    def ipv4(self) -> OutageRateReport:
        return self.reports[0]

    @property
    def ipv6(self) -> OutageRateReport:
        return self.reports[1]

    def __str__(self) -> str:
        return self.text


def run_figure2a(scale: float = 1.0, seed: int = 66) -> Figure2aResult:
    """Detect both families over the same day; compare outage rates.

    The paper's claim: IPv6's outage *rate* (12 % of measurable /48s
    with a >= 10-minute outage) exceeds IPv4's (5.5 %), while IPv4 has
    far more measurable blocks in absolute terms.
    """
    scenario = ipv6_scenario(scale, seed)
    reports = []
    for family, name in ((Family.IPV4, "IPv4 /24"), (Family.IPV6, "IPv6 /48")):
        _, result = detect_passive(scenario, family)
        timelines = {key: block.timeline
                     for key, block in result.blocks.items()}
        reports.append(outage_rate_report(name, timelines,
                                          min_outage_seconds=600.0))
    return Figure2aResult(reports=reports,
                          text=format_outage_rates(reports))


@dataclass
class Figure2bResult:
    """Figure 2b: coverage relative to the best prior system."""

    reports: List[PriorCoverageReport]
    hitlist_size: int
    text: str

    @property
    def ipv4(self) -> PriorCoverageReport:
        return self.reports[0]

    @property
    def ipv6(self) -> PriorCoverageReport:
        return self.reports[1]

    def __str__(self) -> str:
        return self.text


def run_figure2b(scale: float = 1.0, seed: int = 66) -> Figure2bResult:
    """Compare our measurable-block counts against prior denominators.

    IPv4: Trinocular's trackable /24 population (it probes blocks we
    never hear from, because B-root sees only recursive resolvers).
    IPv6: a Gasser-style hitlist containing every simulated /48 plus the
    wider expanse of responsive blocks outside our vantage.
    """
    scenario = ipv6_scenario(scale, seed)

    # Ours: individually measurable blocks per family.
    measurable: Dict[Family, int] = {}
    for family in (Family.IPV4, Family.IPV6):
        model, _ = detect_passive(scenario, family)
        measurable[family] = len(model.measurable_keys)

    trinocular_trackable = len(
        Trinocular(scenario.internet).trackable_profiles(Family.IPV4))

    # Gasser-style hitlist: every simulated /48 plus synthetic expanse
    # (responsive blocks that never query our vantage point).
    rng = np.random.default_rng(seed)
    v6_blocks = scenario.internet.blocks(Family.IPV6)
    extra = synthesize_hitlist(rng, total_blocks=max(1, len(v6_blocks) // 3))
    hitlist = Hitlist()
    for block in v6_blocks:
        hitlist.add(block.prefix)
    hitlist.keys |= extra.keys

    reports = [
        prior_coverage_report("IPv4 /24", measurable[Family.IPV4],
                              "Trinocular", trinocular_trackable),
        prior_coverage_report("IPv6 /48", measurable[Family.IPV6],
                              "Gasser hitlist", len(hitlist)),
    ]
    return Figure2bResult(reports=reports, hitlist_size=len(hitlist),
                          text=format_prior_coverage(reports))

"""Secondary claims and ablations beyond the numbered tables/figures.

* :func:`run_short_uplift` — the poster's "short outages add up": the
  5–11-minute events prior systems omit add ~20 % to total outage time.
* :func:`run_tuning_ablation` — per-block tuning vs the homogeneous
  fixed-bin planner prior systems use (the design choice DESIGN.md
  calls out).
* :func:`run_baseline_comparison` — our detector vs CUSUM and
  Chocolatine on the same day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..baselines.chocolatine import ChocolatineDetector, group_by_as
from ..baselines.cusum import CusumDetector
from ..baselines.disco import DiscoDetector
from ..core.parameters import TuningPolicy
from ..core.pipeline import PassiveOutagePipeline
from ..traffic.darknet import DarknetTelescope
from ..eval.confusion import Confusion, confusion_for_population
from ..eval.report import ascii_bar_chart
from ..net.addr import Family
from ..traffic.rates import DensityClass
from .scenarios import (
    EVAL_END,
    TRAIN_END,
    long_outage_scenario,
    split_window,
    uplift_scenario,
)
from .tables import detect_passive

__all__ = ["ShortUpliftResult", "run_short_uplift", "AblationResult",
           "run_tuning_ablation", "BaselineComparison",
           "run_baseline_comparison", "FusionResult", "run_darknet_fusion",
           "SensitivityResult", "run_sensitivity"]

#: Trinocular's detection floor: outages under 11 minutes are invisible
#: to a round-based prober.
PRIOR_FLOOR_SECONDS = 660.0
#: Our floor: the 5-minute class the paper newly reaches.
OUR_FLOOR_SECONDS = 300.0


@dataclass
class ShortUpliftResult:
    """Outage-time accounting with and without the 5–11-minute class."""

    long_outage_seconds: float
    short_outage_seconds: float
    short_events: int
    long_events: int
    text: str

    @property
    def uplift(self) -> float:
        """Fractional increase in total outage time from short events."""
        if self.long_outage_seconds == 0:
            return 0.0
        return self.short_outage_seconds / self.long_outage_seconds

    def __str__(self) -> str:
        return self.text


def run_short_uplift(scale: float = 1.0, seed: int = 19) -> ShortUpliftResult:
    """Quantify the outage time the 5–11-minute class adds.

    Accounting is restricted to dense blocks: only they resolve the
    5–11-minute class, so only there can "what prior systems omitted"
    be measured without the denominator being dominated by coarse-bin
    noise.
    """
    scenario = uplift_scenario(scale, seed)
    model, result = detect_passive(scenario)
    short_seconds = 0.0
    long_seconds = 0.0
    short_events = 0
    long_events = 0
    for key, block in result.blocks.items():
        if model.histories[key].density is not DensityClass.DENSE:
            continue
        for event in block.timeline.events(OUR_FLOOR_SECONDS):
            if event.duration < PRIOR_FLOOR_SECONDS:
                short_seconds += event.duration
                short_events += 1
            else:
                long_seconds += event.duration
                long_events += 1
    uplift = short_seconds / long_seconds if long_seconds else 0.0
    text = ("Short-outage uplift (5-11 min events prior systems omit):\n"
            f"  long events (>=11 min): {long_events} "
            f"({long_seconds:,.0f} s)\n"
            f"  short events (5-11 min): {short_events} "
            f"({short_seconds:,.0f} s)\n"
            f"  total outage time increases by {uplift:.1%}")
    return ShortUpliftResult(
        long_outage_seconds=long_seconds, short_outage_seconds=short_seconds,
        short_events=short_events, long_events=long_events, text=text)


@dataclass
class AblationResult:
    """Per-block tuning vs homogeneous parameters."""

    tuned_coverage: float
    homogeneous: Dict[float, float]
    tuned_confusion: Confusion
    homogeneous_confusion: Dict[float, Confusion]
    text: str

    def __str__(self) -> str:
        return self.text


def run_tuning_ablation(scale: float = 1.0, seed: int = 44,
                        fixed_bins: Tuple[float, ...] = (300.0, 3600.0)
                        ) -> AblationResult:
    """Compare the per-block planner against fixed-bin planners.

    The fixed 5-minute planner keeps precision but covers only the
    dense slice; the fixed 1-hour planner recovers coverage but loses
    the short-outage class.  The tuned planner gets both — the paper's
    core argument.
    """
    scenario = long_outage_scenario(scale, seed)
    truths = scenario.truths(Family.IPV4)

    model, result = detect_passive(scenario)
    tuned_coverage = model.coverage()
    tuned_confusion = confusion_for_population(
        {key: block.timeline for key, block in result.blocks.items()},
        truths)

    homogeneous_coverage: Dict[float, float] = {}
    homogeneous_confusion: Dict[float, Confusion] = {}
    for bin_seconds in fixed_bins:
        pipeline = PassiveOutagePipeline(homogeneous_bin=bin_seconds,
                                         aggregation_levels=0)
        fixed_model, fixed_result = detect_passive(scenario,
                                                   pipeline=pipeline)
        homogeneous_coverage[bin_seconds] = fixed_model.coverage()
        homogeneous_confusion[bin_seconds] = confusion_for_population(
            {key: block.timeline
             for key, block in fixed_result.blocks.items()},
            truths)

    labels = [f"tuned (per-block)"]
    values = [tuned_coverage]
    for bin_seconds in fixed_bins:
        labels.append(f"fixed {bin_seconds / 60.0:.0f}-min bin")
        values.append(homogeneous_coverage[bin_seconds])
    lines = ["Ablation: per-block tuning vs homogeneous parameters",
             "  Coverage (fraction of observed blocks measurable):",
             ascii_bar_chart(labels, values),
             "  Detection quality vs simulator truth (TNR = outage "
             "seconds caught):",
             f"    tuned: TNR {tuned_confusion.tnr:.4f}, "
             f"precision {tuned_confusion.precision:.4f}"]
    for bin_seconds in fixed_bins:
        confusion = homogeneous_confusion[bin_seconds]
        lines.append(f"    fixed {bin_seconds / 60.0:.0f} min: "
                     f"TNR {confusion.tnr:.4f}, "
                     f"precision {confusion.precision:.4f}")
    return AblationResult(
        tuned_coverage=tuned_coverage,
        homogeneous=homogeneous_coverage,
        tuned_confusion=tuned_confusion,
        homogeneous_confusion=homogeneous_confusion,
        text="\n".join(lines))


@dataclass
class BaselineComparison:
    """Our detector vs CUSUM, Chocolatine, and Disco."""

    ours: Confusion
    cusum: Confusion
    cusum_covered: int
    chocolatine: Confusion
    chocolatine_ases: int
    disco: Confusion
    disco_regions: int
    text: str

    def __str__(self) -> str:
        return self.text


def run_baseline_comparison(scale: float = 1.0,
                            seed: int = 44) -> BaselineComparison:
    """Score all passive systems against the same simulated truth.

    CUSUM runs per block with global parameters (covering only blocks
    dense enough to standardise).  Chocolatine runs per AS; its AS-level
    alarm is projected onto every member block and scored against
    block-level truth, which is the fair framing of the paper's
    criticism — an AS-wide signal cannot see (or localise) single-block
    outages.
    """
    scenario = long_outage_scenario(scale, seed)
    train, evaluate = split_window(scenario.per_block(Family.IPV4))
    truths = scenario.truths(Family.IPV4)

    _, result = detect_passive(scenario)
    ours = confusion_for_population(
        {key: block.timeline for key, block in result.blocks.items()},
        truths)

    cusum = CusumDetector()
    cusum.train(train, 0.0, TRAIN_END)
    cusum_timelines = cusum.detect(evaluate, TRAIN_END, EVAL_END)
    cusum_confusion = confusion_for_population(cusum_timelines, truths)

    as_of_block = {profile.key: profile.as_id
                   for profile in scenario.internet.family_profiles(
                       Family.IPV4)}
    chocolatine = ChocolatineDetector()
    chocolatine.train(group_by_as(train, as_of_block), 0.0, TRAIN_END)
    as_timelines = chocolatine.detect(group_by_as(evaluate, as_of_block),
                                      TRAIN_END, EVAL_END)
    # Project each AS alarm onto its member blocks: the finest statement
    # an AS-granular detector can make about a block.
    block_level = {
        key: as_timelines[as_id]
        for key, as_id in as_of_block.items()
        if as_id in as_timelines and key in truths
    }
    chocolatine_confusion = confusion_for_population(block_level, truths)

    # Disco: burst detection over probe disconnections, projected from
    # its regional alarms onto member blocks the same way.
    disco = DiscoDetector(scenario.internet)
    disco_timelines = disco.survey(Family.IPV4, TRAIN_END, EVAL_END)
    disco_block_level = {
        key: disco_timelines[key >> disco.config.region_levels]
        for key in truths
        if (key >> disco.config.region_levels) in disco_timelines
    }
    disco_confusion = confusion_for_population(disco_block_level, truths)

    text = "\n".join([
        "Passive systems vs simulator truth (same day):",
        f"  ours (per-block Bayesian): precision {ours.precision:.4f}, "
        f"TNR {ours.tnr:.4f}, blocks {len(result.blocks)}",
        f"  CUSUM (global params):     precision "
        f"{cusum_confusion.precision:.4f}, TNR {cusum_confusion.tnr:.4f}, "
        f"blocks {len(cusum_timelines)}",
        f"  Chocolatine (per AS):      precision "
        f"{chocolatine_confusion.precision:.4f}, "
        f"TNR {chocolatine_confusion.tnr:.4f}, "
        f"ASes {len(as_timelines)}",
        f"  Disco (probe bursts):      precision "
        f"{disco_confusion.precision:.4f}, "
        f"TNR {disco_confusion.tnr:.4f}, "
        f"regions {len(disco_timelines)}",
    ])
    return BaselineComparison(
        ours=ours, cusum=cusum_confusion, cusum_covered=len(cusum_timelines),
        chocolatine=chocolatine_confusion, chocolatine_ases=len(as_timelines),
        disco=disco_confusion, disco_regions=len(disco_timelines),
        text=text)



@dataclass
class FusionResult:
    """Single-source vs fused multi-source detection.

    ``fused_*`` is the naive packet-merge (concatenate both vantages'
    arrivals, retrain); ``layered_*`` runs the same two vantages
    through the evidence-fusion layer (:mod:`repro.fusion`): one model
    and sentinel per source, reliability-weighted log-likelihoods in
    one belief pass.  The layered path is the deployable one — it is
    the only one that degrades gracefully when a vantage goes dark.
    """

    dns_coverage: float
    darknet_coverage: float
    fused_coverage: float
    dns_confusion: Confusion
    darknet_confusion: Confusion
    fused_confusion: Confusion
    text: str
    layered_coverage: float = 0.0
    layered_confusion: Confusion = None

    def __str__(self) -> str:
        return self.text


def run_darknet_fusion(scale: float = 1.0, seed: int = 44) -> FusionResult:
    """The poster's future-work extension: add a darknet passive source.

    Both vantage points watch the same simulated Internet: the DNS
    service sees resolver queries, the darknet telescope sees background
    radiation (weakly correlated rates, partly spoofed).  Per-block
    arrival streams are merged packet-wise before training, so a block
    that is sparse at either single vantage can clear the measurability
    bar on the combined signal — the coverage motivation for adding
    sources.
    """
    scenario = long_outage_scenario(scale, seed)
    truths = scenario.truths(Family.IPV4)
    dns = scenario.per_block(Family.IPV4)
    telescope = DarknetTelescope(scenario.internet)
    darknet = telescope.per_block(Family.IPV4)

    merged = {}
    for key in set(dns) | set(darknet):
        streams = [s for s in (dns.get(key), darknet.get(key))
                   if s is not None and s.size]
        if not streams:
            continue
        combined = np.concatenate(streams)
        combined.sort()
        merged[key] = combined

    # Spoofed IBR keeps flowing during outages; the darknet-fed
    # pipelines assume a per-block noise floor proportional to rate.
    spoof_policy = TuningPolicy(noise_fraction_of_rate=0.04)
    runs = {
        "dns": (dns, PassiveOutagePipeline()),
        "darknet": (darknet, PassiveOutagePipeline(policy=spoof_policy)),
        "fused": (merged, PassiveOutagePipeline(policy=spoof_policy)),
    }
    coverage = {}
    confusion = {}
    for name, (per_block, pipeline) in runs.items():
        train = {k: t[t < TRAIN_END] for k, t in per_block.items()}
        evaluate = {k: t[t >= TRAIN_END] for k, t in per_block.items()}
        model = pipeline.train(Family.IPV4, train, 0.0, TRAIN_END)
        result = pipeline.detect(model, evaluate, TRAIN_END, EVAL_END)
        coverage[name] = model.coverage()
        confusion[name] = confusion_for_population(
            {k: b.timeline for k, b in result.blocks.items()}, truths)

    # Detector-path fusion: the same two vantages through the
    # evidence-fusion layer — per-source models, per-source sentinels,
    # reliability-weighted log-likelihoods in one belief pass — rather
    # than a packet-level merge.
    from ..fusion import MappingSource, detect_fused, train_fused

    adapters = [
        MappingSource("dns", dns, family=Family.IPV4),
        MappingSource("darknet", darknet, family=Family.IPV4,
                      policy=spoof_policy),
    ]
    fused_model = train_fused(adapters, Family.IPV4, 0.0, TRAIN_END)
    detection = detect_fused(
        fused_model,
        {"dns": {k: t[t >= TRAIN_END] for k, t in dns.items()},
         "darknet": {k: t[t >= TRAIN_END] for k, t in darknet.items()}},
        TRAIN_END, EVAL_END)
    coverage["layered"] = fused_model.coverage()
    confusion["layered"] = confusion_for_population(
        {k: b.timeline for k, b in detection.blocks.items()}, truths)

    text = "\n".join([
        "Multi-source fusion (DNS vantage + darknet telescope):",
        f"  {'source':<10s}{'coverage':>10s}{'precision':>11s}{'TNR':>8s}",
        *(f"  {name:<10s}{coverage[name]:>9.1%}"
          f"{confusion[name].precision:>11.4f}{confusion[name].tnr:>8.4f}"
          for name in ("dns", "darknet", "fused", "layered")),
    ])
    return FusionResult(
        dns_coverage=coverage["dns"],
        darknet_coverage=coverage["darknet"],
        fused_coverage=coverage["fused"],
        dns_confusion=confusion["dns"],
        darknet_confusion=confusion["darknet"],
        fused_confusion=confusion["fused"],
        layered_coverage=coverage["layered"],
        layered_confusion=confusion["layered"],
        text=text)

@dataclass
class SensitivityResult:
    """Detector metrics across a sweep of the tuning target."""

    rows: List[Tuple[float, float, float, float]]
    text: str

    def __str__(self) -> str:
        return self.text


def run_sensitivity(scale: float = 1.0, seed: int = 44,
                    targets: Tuple[float, ...] = (0.10, 0.05, 0.02,
                                                  0.01, 0.005)
                    ) -> SensitivityResult:
    """Sweep the per-block tuner's empty-bin target.

    ``target_empty_prob`` is the system's one real free parameter: it
    decides how aggressive a bin each block may claim.  Loose targets
    buy coverage and temporal precision at the cost of false outages;
    tight targets the reverse.  The sweep shows the default (0.02)
    sitting on the flat part of the precision curve while keeping most
    of the coverage — evidence the reproduction's headline numbers are
    not knife-edge artefacts.
    """
    scenario = long_outage_scenario(scale, seed)
    truths = scenario.truths(Family.IPV4)
    rows: List[Tuple[float, float, float, float]] = []
    for target in targets:
        pipeline = PassiveOutagePipeline(
            policy=TuningPolicy(target_empty_prob=target))
        model, result = detect_passive(scenario, pipeline=pipeline)
        confusion = confusion_for_population(
            {k: b.timeline for k, b in result.blocks.items()}, truths)
        rows.append((target, model.coverage(), confusion.precision,
                     confusion.tnr))
    lines = ["Sensitivity: empty-bin target vs coverage/precision/TNR",
             f"  {'target':>8s}{'coverage':>10s}{'precision':>11s}"
             f"{'TNR':>8s}"]
    for target, coverage, precision, tnr in rows:
        marker = "  <- default" if target == 0.02 else ""
        lines.append(f"  {target:>8.3f}{coverage:>9.1%}{precision:>11.4f}"
                     f"{tnr:>8.4f}{marker}")
    return SensitivityResult(rows=rows, text="\n".join(lines))

"""Seven-day rolling validation (the paper's full measurement window).

The paper's evaluation spans 2019-01-09 to 2019-01-15; the confusion
tables come from one day, but the system ran across the week.  This
experiment reproduces that operating mode: train on day 0, then detect
each of the following seven days with the drift audit + rolling refresh
between days — the loop a deployment actually runs — and report how
stable the daily metrics are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


from ..core.drift import audit_drift, refresh_model
from ..core.pipeline import PassiveOutagePipeline
from ..eval.confusion import Confusion, confusion_for_population
from ..net.addr import Family
from ..traffic.internet import FamilyConfig, InternetConfig, SimulatedInternet
from ..traffic.outages import IPV4_OUTAGE_MODEL
from .scenarios import DAY

__all__ = ["WeekResult", "run_week_validation"]


@dataclass
class WeekResult:
    """Per-day metrics over the seven detected days."""

    daily: List[Tuple[int, Confusion]]
    retrained_per_day: List[int]
    text: str

    @property
    def tnr_spread(self) -> float:
        """Max - min daily TNR (stability of the headline metric)."""
        values = [confusion.tnr for _, confusion in self.daily]
        return max(values) - min(values)

    @property
    def worst_precision(self) -> float:
        return min(confusion.precision for _, confusion in self.daily)

    def __str__(self) -> str:
        return self.text


def run_week_validation(scale: float = 1.0,
                        seed: int = 9) -> WeekResult:
    """Detect seven consecutive days with nightly drift refresh."""
    n_blocks = max(150, int(800 * scale))
    config = InternetConfig(
        end=8 * DAY, training_seconds=DAY, seed=seed,
        ipv4=FamilyConfig(n_blocks=n_blocks,
                          outage_model=IPV4_OUTAGE_MODEL))
    internet = SimulatedInternet.build(config)
    per_block = {profile.key: times
                 for profile, times in internet.passive_observations()}

    pipeline = PassiveOutagePipeline()
    model = pipeline.train(
        Family.IPV4, {k: t[t < DAY] for k, t in per_block.items()},
        0.0, DAY)

    daily: List[Tuple[int, Confusion]] = []
    retrained_per_day: List[int] = []
    for day_index in range(1, 8):
        day_start = day_index * DAY
        day_end = (day_index + 1) * DAY
        todays = {k: t[(t >= day_start) & (t < day_end)]
                  for k, t in per_block.items()}
        result = pipeline.detect(model, todays, day_start, day_end)
        truths = {p.key: p.truth.clip(day_start, day_end)
                  for p in internet.family_profiles(Family.IPV4)}
        confusion = confusion_for_population(
            {k: b.timeline for k, b in result.blocks.items()}, truths)
        daily.append((day_index, confusion))
        # Nightly maintenance: refresh drifted blocks on today's data.
        audits = audit_drift(model, result.blocks, todays)
        model, retrained = refresh_model(model, audits, todays,
                                         day_start, day_end)
        retrained_per_day.append(len(retrained))

    lines = ["Seven-day rolling validation (train day 0, detect days 1-7, "
             "nightly drift refresh):",
             f"  {'day':>5s}{'precision':>11s}{'recall':>9s}{'TNR':>8s}"
             f"{'retrained':>11s}"]
    for (day_index, confusion), retrained in zip(daily, retrained_per_day):
        lines.append(f"  {day_index:>5d}{confusion.precision:>11.4f}"
                     f"{confusion.recall:>9.4f}{confusion.tnr:>8.4f}"
                     f"{retrained:>11d}")
    spread = max(c.tnr for _, c in daily) - min(c.tnr for _, c in daily)
    lines.append(f"  TNR spread across the week: {spread:.3f}")
    return WeekResult(daily=daily, retrained_per_day=retrained_per_day,
                      text="\n".join(lines))

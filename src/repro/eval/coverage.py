"""Coverage and measurability accounting (paper Figures 1 and 2).

Figure 1 is the precision/coverage dial: how many blocks become
measurable as the time bin coarsens, and what time-weighted precision
each density class retains.  Figure 2a compares IPv4 and IPv6 outage
*rates* over measurable blocks; Figure 2b compares our coverage against
the best prior system per family (Trinocular's probeable /24s, the
Gasser hitlist's /48s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..core.history import BlockHistory
from ..traffic.rates import DensityClass
from ..timeline import Timeline
from .confusion import Confusion, confusion_for_block

__all__ = ["CoveragePoint", "coverage_vs_bin", "SpatialCoveragePoint",
           "coverage_vs_spatial", "OutageRateReport",
           "outage_rate_report", "PriorCoverageReport",
           "prior_coverage_report", "confusion_by_density"]


@dataclass
class CoveragePoint:
    """One point on the Figure 1 trade-off curve."""

    bin_seconds: float
    measurable_blocks: int
    total_blocks: int

    @property
    def coverage(self) -> float:
        return (self.measurable_blocks / self.total_blocks
                if self.total_blocks else 0.0)


def coverage_vs_bin(
    histories: Mapping[int, BlockHistory],
    bin_ladder: Sequence[float],
    target_empty_prob: float = 0.02,
    min_training_arrivals: int = 10,
) -> List[CoveragePoint]:
    """Coverage achievable at each candidate bin size.

    A block counts as covered at bin τ when its empty-bin probability
    at τ meets the tuning target — i.e. the block *could* be watched at
    that temporal precision.  Coverage is monotone in τ: coarser bins
    admit sparser blocks, the heart of the paper's trade-off.
    """
    points: List[CoveragePoint] = []
    total = len(histories)
    for bin_seconds in bin_ladder:
        measurable = sum(
            1 for history in histories.values()
            if history.observed_count >= min_training_arrivals
            and history.empty_bin_probability(bin_seconds)
            <= target_empty_prob)
        points.append(CoveragePoint(bin_seconds, measurable, total))
    return points


@dataclass
class SpatialCoveragePoint:
    """One point on the *spatial* half of the Figure 1 trade-off.

    At aggregation ``levels`` (0 = native /24s), ``covered_blocks`` of
    the ``total_blocks`` native blocks live inside some measurable
    detection unit — either measurable themselves or members of a
    measurable supernet.
    """

    levels: int
    covered_blocks: int
    total_blocks: int
    detection_units: int

    @property
    def coverage(self) -> float:
        return (self.covered_blocks / self.total_blocks
                if self.total_blocks else 0.0)


def coverage_vs_spatial(
    histories: Mapping[int, BlockHistory],
    bin_seconds: float,
    levels_ladder: Sequence[int] = (0, 2, 4, 6, 8),
    target_empty_prob: float = 0.02,
    min_training_arrivals: int = 10,
) -> List[SpatialCoveragePoint]:
    """Coverage achievable by widening *blocks* at a fixed time bin.

    The dual of :func:`coverage_vs_bin`: hold temporal precision fixed
    and merge sibling blocks into supernets until the combined rate
    clears the measurability bar.  Rates add across siblings, so a
    supernet is covered when the sum of member rates (discounted by the
    members' worst burstiness) meets the empty-bin target.
    """
    points: List[SpatialCoveragePoint] = []
    total = len(histories)
    for levels in levels_ladder:
        groups: Dict[int, List[BlockHistory]] = {}
        for key, history in histories.items():
            groups.setdefault(int(key) >> levels, []).append(history)
        covered = 0
        units = 0
        for members in groups.values():
            rate = sum(h.min_rate() for h in members)
            count = sum(h.observed_count for h in members)
            burst = max(h.burstiness for h in members)
            effective = rate / max(1.0, np.sqrt(burst))
            measurable = (count >= min_training_arrivals
                          and np.exp(-effective * bin_seconds)
                          <= target_empty_prob)
            if measurable:
                covered += len(members)
                units += 1
        points.append(SpatialCoveragePoint(
            levels=levels, covered_blocks=covered, total_blocks=total,
            detection_units=units))
    return points


def confusion_by_density(
    observed: Mapping[int, Timeline],
    truth: Mapping[int, Timeline],
    histories: Mapping[int, BlockHistory],
) -> Dict[DensityClass, Confusion]:
    """Time-weighted confusion split by the blocks' density class.

    Figure 1's "good precision for dense blocks, less for sparse"
    statement, quantified.
    """
    split: Dict[DensityClass, Confusion] = {
        cls: Confusion() for cls in DensityClass}
    for key in sorted(set(observed) & set(truth)):
        history = histories.get(key)
        if history is None:
            continue
        split[history.density] += confusion_for_block(
            observed[key], truth[key])
    return split


@dataclass
class OutageRateReport:
    """Figure 2a numbers for one family."""

    family_name: str
    measurable_blocks: int
    blocks_with_outage: int
    min_outage_seconds: float

    @property
    def outage_rate(self) -> float:
        return (self.blocks_with_outage / self.measurable_blocks
                if self.measurable_blocks else 0.0)


def outage_rate_report(
    family_name: str,
    timelines: Mapping[int, Timeline],
    min_outage_seconds: float = 600.0,
) -> OutageRateReport:
    """Count measurable blocks with >= 1 outage of the given length."""
    with_outage = sum(
        1 for timeline in timelines.values()
        if timeline.events(min_outage_seconds))
    return OutageRateReport(
        family_name=family_name,
        measurable_blocks=len(timelines),
        blocks_with_outage=with_outage,
        min_outage_seconds=min_outage_seconds,
    )


@dataclass
class PriorCoverageReport:
    """Figure 2b numbers for one family."""

    family_name: str
    our_blocks: int
    prior_system: str
    prior_blocks: int

    @property
    def fraction_of_prior(self) -> float:
        return self.our_blocks / self.prior_blocks if self.prior_blocks else 0.0


def prior_coverage_report(family_name: str, our_blocks: int,
                          prior_system: str,
                          prior_blocks: int) -> PriorCoverageReport:
    """Package a coverage-vs-prior comparison."""
    return PriorCoverageReport(family_name=family_name, our_blocks=our_blocks,
                               prior_system=prior_system,
                               prior_blocks=prior_blocks)

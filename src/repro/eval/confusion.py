"""Second-weighted confusion matrices (paper Tables 1 and 2).

The paper scores the passive system against Trinocular by *time*: every
second of the comparison window falls into one of four cells, named
from B-root's point of view with availability as the positive class:

* ``ta`` — true availability: both say up;
* ``fa`` — false availability: B-root says up, ground truth says down;
* ``fo`` — false outage: B-root says down, ground truth says up;
* ``to`` — true outage: both say down.

Precision = ta/(ta+fa), recall = ta/(ta+fo) (how well availability is
tracked), and TNR = to/(to+fa) (what fraction of true outage time the
system also calls outage) — the headline numbers of Tables 1–2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from ..timeline import Timeline, intersect_intervals, total_duration

__all__ = ["Confusion", "confusion_for_block", "confusion_for_population"]


@dataclass
class Confusion:
    """Accumulable 2x2 confusion matrix (seconds or events).

    The four cells follow the paper's naming; all metric properties
    return NaN-free safe values (0 when the denominator is empty).
    """

    ta: float = 0.0
    fa: float = 0.0
    fo: float = 0.0
    to: float = 0.0

    def __add__(self, other: "Confusion") -> "Confusion":
        return Confusion(self.ta + other.ta, self.fa + other.fa,
                         self.fo + other.fo, self.to + other.to)

    def __iadd__(self, other: "Confusion") -> "Confusion":
        self.ta += other.ta
        self.fa += other.fa
        self.fo += other.fo
        self.to += other.to
        return self

    @property
    def total(self) -> float:
        return self.ta + self.fa + self.fo + self.to

    @property
    def precision(self) -> float:
        """Of the availability we report, how much is real."""
        denominator = self.ta + self.fa
        return self.ta / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """Of the real availability, how much we report."""
        denominator = self.ta + self.fo
        return self.ta / denominator if denominator else 0.0

    @property
    def tnr(self) -> float:
        """Of the real outage time, how much we also call outage."""
        denominator = self.to + self.fa
        return self.to / denominator if denominator else 0.0

    @property
    def outage_precision(self) -> float:
        """Of the outage we report, how much is real."""
        denominator = self.to + self.fo
        return self.to / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        return (self.ta + self.to) / self.total if self.total else 0.0

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return self.ta, self.fa, self.fo, self.to


def confusion_for_block(observed: Timeline, truth: Timeline) -> Confusion:
    """Second-weighted confusion between one block's two timelines.

    The two timelines are clipped to their overlapping span first, so a
    detector that reports a shorter window than the comparator is only
    judged where both have an opinion.
    """
    start = max(observed.start, truth.start)
    end = min(observed.end, truth.end)
    if end <= start:
        return Confusion()
    observed = observed.clip(start, end)
    truth = truth.clip(start, end)

    observed_down = observed.down_intervals
    truth_down = truth.down_intervals
    to = total_duration(intersect_intervals(observed_down, truth_down))
    observed_down_total = total_duration(observed_down)
    truth_down_total = total_duration(truth_down)
    fo = observed_down_total - to          # we say down, truth up
    fa = truth_down_total - to             # truth down, we say up
    span = end - start
    ta = span - to - fo - fa
    return Confusion(ta=max(ta, 0.0), fa=max(fa, 0.0),
                     fo=max(fo, 0.0), to=max(to, 0.0))


def confusion_for_population(
    observed: Mapping[int, Timeline],
    truth: Mapping[int, Timeline],
    keys: Iterable[int] = (),
) -> Confusion:
    """Sum block confusions over the keys both systems cover.

    With no explicit ``keys``, the intersection of the two mappings is
    used — mirroring the paper's "compare only /24 blocks that overlap
    between B-root and Trinocular".
    """
    keys = list(keys) or sorted(set(observed) & set(truth))
    accumulated = Confusion()
    for key in keys:
        accumulated += confusion_for_block(observed[key], truth[key])
    return accumulated

"""Per-block diagnostic drill-down.

The poster illustrates its method with two strip charts: a dense block
whose belief B(a) pins to 1 and drops sharply at an outage, and a
sparse block whose belief wanders.  This module renders that view for
any detected block — trained statistics, tuned parameters, an ASCII
belief strip, and the event list — the first thing an operator wants
when a block's verdict looks surprising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.detector import BlockResult
from ..telescope.aggregate import BinGrid

__all__ = ["BlockDrilldown", "drilldown", "render_belief_strip"]

#: glyphs from DOWN (left) to UP (right).
_BELIEF_GLYPHS = " .:-=+*#@"


def render_belief_strip(beliefs: np.ndarray, width: int = 72) -> str:
    """Compress a belief trajectory into a one-line ASCII strip.

    Each output column shows the *minimum* belief over its span — a
    short outage must stay visible after downsampling, and min is the
    conservative aggregate for "was this ever in trouble".
    """
    beliefs = np.asarray(beliefs, dtype=float)
    if beliefs.size == 0:
        return ""
    width = min(width, beliefs.size)
    edges = np.linspace(0, beliefs.size, width + 1).astype(int)
    glyphs = []
    for left, right in zip(edges, edges[1:]):
        value = float(beliefs[left:max(right, left + 1)].min())
        index = int(np.clip(value, 0.0, 1.0) * (len(_BELIEF_GLYPHS) - 1))
        glyphs.append(_BELIEF_GLYPHS[index])
    return "".join(glyphs)


@dataclass
class BlockDrilldown:
    """A rendered diagnostic for one block."""

    key: int
    text: str

    def __str__(self) -> str:
        return self.text


def drilldown(result: BlockResult, start: float, end: float,
              times: Optional[np.ndarray] = None) -> BlockDrilldown:
    """Render the poster-style diagnostic for one block's result.

    ``times`` (the block's raw arrivals over the window) adds an arrival
    sparkline above the belief strip when provided.  The belief strip
    requires the detector to have been run with
    ``keep_belief_traces=True``.
    """
    history = result.history
    params = result.params
    lines: List[str] = [
        f"block {result.key:#x} ({result.family.name}, "
        f"/{result.family.default_block_prefix})",
        f"  trained: rate {history.mean_rate:.4g} q/s "
        f"({history.density.value}), burstiness {history.burstiness:.2f}, "
        f"max healthy gap {history.max_gap:.0f}s",
        f"  tuned:   bin {params.bin_seconds / 60:.0f} min, "
        f"P(empty|up) {params.p_empty_up:.2e}, "
        + (f"gap threshold {params.gap_threshold_seconds:.0f}s"
           if np.isfinite(params.gap_threshold_seconds)
           else "gap detector off"),
    ]

    if times is not None and len(times):
        grid = BinGrid(start, end, (end - start) / 72.0)
        counts = np.bincount(grid.bin_of(np.asarray(times)),
                             minlength=grid.n_bins)
        peak = counts.max() or 1
        spark = "".join(
            _BELIEF_GLYPHS[int(c / peak * (len(_BELIEF_GLYPHS) - 1))]
            for c in counts)
        lines.append(f"  arrivals {spark}")

    if result.belief_trace is not None:
        strip = render_belief_strip(result.belief_trace)
        lines.append(f"  belief   {strip}")
        lines.append(f"           ^ {start:.0f}s"
                     f"{'':>{max(0, 60 - len(str(int(start))))}}"
                     f"{end:.0f}s ^")

    events = result.timeline.events()
    if events:
        lines.append(f"  {len(events)} outage event(s):")
        for event in events[:8]:
            lines.append(f"    down {event.start:,.1f}s -> "
                         f"{event.end:,.1f}s  ({event.duration:,.0f}s)")
        if len(events) > 8:
            lines.append(f"    ... and {len(events) - 8} more")
    else:
        lines.append("  no outages detected")
    return BlockDrilldown(key=result.key, text="\n".join(lines))

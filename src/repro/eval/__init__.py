"""Evaluation: confusion matrices, event matching, coverage, reports."""

from .bootstrap import MetricInterval, bootstrap_confusion
from .incidents import Incident, format_incident_report, group_incidents
from .confusion import Confusion, confusion_for_block, confusion_for_population
from .drilldown import BlockDrilldown, drilldown, render_belief_strip
from .coverage import (
    CoveragePoint,
    OutageRateReport,
    PriorCoverageReport,
    confusion_by_density,
    coverage_vs_bin,
    outage_rate_report,
    prior_coverage_report,
)
from .matching import (
    MatchResult,
    event_confusion,
    event_confusion_for_population,
    match_events,
)
from .report import (
    ascii_bar_chart,
    format_confusion_table,
    format_coverage_curve,
    format_outage_rates,
    format_prior_coverage,
)

__all__ = [
    "Incident",
    "format_incident_report",
    "group_incidents",
    "MetricInterval",
    "bootstrap_confusion",
    "BlockDrilldown",
    "drilldown",
    "render_belief_strip",
    "Confusion",
    "confusion_for_block",
    "confusion_for_population",
    "CoveragePoint",
    "OutageRateReport",
    "PriorCoverageReport",
    "confusion_by_density",
    "coverage_vs_bin",
    "outage_rate_report",
    "prior_coverage_report",
    "MatchResult",
    "event_confusion",
    "event_confusion_for_population",
    "match_events",
    "ascii_bar_chart",
    "format_confusion_table",
    "format_coverage_curve",
    "format_outage_rates",
    "format_prior_coverage",
]

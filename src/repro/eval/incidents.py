"""Incident grouping: from per-block events to operator-facing reports.

A per-block event list is the detector's raw output; an operator wants
*incidents* — "these 14 /24s under 203.0.0.0/12 went dark together at
03:12 for 40 minutes" — the way public observatories (IODA and kin)
present outages.  This module clusters block events that overlap in
time and share a region (supernet or AS), ranks incidents by their
block-time footprint, and renders a daily report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..net.blocks import supernet_key
from ..timeline import OutageEvent

__all__ = ["Incident", "group_incidents", "format_incident_report"]


@dataclass
class Incident:
    """A set of co-occurring block outages in one region."""

    region_key: int
    region_levels: int
    members: List[Tuple[int, OutageEvent]] = field(default_factory=list)

    @property
    def start(self) -> float:
        return min(event.start for _, event in self.members)

    @property
    def end(self) -> float:
        return max(event.end for _, event in self.members)

    @property
    def block_count(self) -> int:
        return len({key for key, _ in self.members})

    @property
    def block_seconds(self) -> float:
        """The incident's footprint: summed block-downtime."""
        return sum(event.duration for _, event in self.members)

    @property
    def is_regional(self) -> bool:
        """More than one block: likely infrastructure, not one host."""
        return self.block_count > 1


def group_incidents(
    events_by_block: Mapping[int, Sequence[OutageEvent]],
    levels: int = 8,
    slack: float = 600.0,
    region_of_block: Optional[Mapping[int, int]] = None,
) -> List[Incident]:
    """Cluster block events into incidents.

    Two events join the same incident when their blocks share a region
    and the events overlap within ``slack`` seconds.  The region is the
    ``levels``-bit supernet by default; pass ``region_of_block`` (e.g.
    an AS mapping) to cluster by any other key.  Returns incidents
    sorted by block-seconds footprint, largest first.

    Clustering is transitive within a region: a rolling outage where
    block A overlaps B and B overlaps C lands in one incident even if A
    and C never overlap directly.
    """
    by_region: Dict[int, List[Tuple[int, OutageEvent]]] = {}
    for key, events in events_by_block.items():
        if region_of_block is not None:
            region = region_of_block.get(int(key))
            if region is None:
                continue
        else:
            region = supernet_key(int(key), levels)
        bucket = by_region.setdefault(region, [])
        for event in events:
            bucket.append((int(key), event))

    incidents: List[Incident] = []
    for region, members in by_region.items():
        members.sort(key=lambda pair: pair[1].start)
        current: Optional[Incident] = None
        current_end = float("-inf")
        for key, event in members:
            if current is None or event.start > current_end + slack:
                current = Incident(region_key=region, region_levels=levels)
                incidents.append(current)
                current_end = event.end
            current.members.append((key, event))
            current_end = max(current_end, event.end)
    incidents.sort(key=lambda incident: incident.block_seconds, reverse=True)
    return incidents


def format_incident_report(incidents: Sequence[Incident],
                           top: int = 10,
                           title: str = "Outage incidents") -> str:
    """Render the daily incident report."""
    regional = [i for i in incidents if i.is_regional]
    isolated = [i for i in incidents if not i.is_regional]
    lines = [
        title,
        f"  {len(incidents)} incidents: {len(regional)} regional, "
        f"{len(isolated)} single-block",
        f"  {'start':>10s}{'dur(min)':>10s}{'blocks':>8s}"
        f"{'blk-min':>9s}  region",
    ]
    for incident in incidents[:top]:
        lines.append(
            f"  {incident.start:>10,.0f}"
            f"{(incident.end - incident.start) / 60:>10.0f}"
            f"{incident.block_count:>8d}"
            f"{incident.block_seconds / 60:>9.0f}"
            f"  {incident.region_key:#x}/{incident.region_levels}lvl")
    if len(incidents) > top:
        lines.append(f"  ... and {len(incidents) - top} more")
    return "\n".join(lines)

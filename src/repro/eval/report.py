"""Text renderers that print the paper's tables and figures.

Each function formats one artefact in the same shape the paper reports
it, so a benchmark run ends with output directly comparable to the
published numbers (EXPERIMENTS.md holds the side-by-side record).
"""

from __future__ import annotations

from typing import List, Sequence

from .confusion import Confusion
from .coverage import CoveragePoint, OutageRateReport, PriorCoverageReport

__all__ = ["format_confusion_table", "format_coverage_curve",
           "format_outage_rates", "format_prior_coverage", "ascii_bar_chart"]


def format_confusion_table(confusion: Confusion, title: str,
                           unit: str = "s",
                           ground_truth: str = "Trinocular") -> str:
    """Render a Table 1/2/3-style confusion matrix."""
    def fmt(value: float) -> str:
        return f"{value:,.0f}"

    lines = [
        title,
        f"  Observation (B-root) vs ground truth ({ground_truth}), in {unit}",
        f"  {'':14s}{'truth avail':>18s}{'truth outage':>18s}",
        (f"  {'availability':14s}{'TP=ta=' + fmt(confusion.ta):>18s}"
         f"{'FP=fa=' + fmt(confusion.fa):>18s}"
         f"   Precision {confusion.precision:.4f}"),
        (f"  {'outage':14s}{'FN=fo=' + fmt(confusion.fo):>18s}"
         f"{'TN=to=' + fmt(confusion.to):>18s}"),
        (f"  {'':14s}{'Recall ' + format(confusion.recall, '.4f'):>18s}"
         f"{'TNR ' + format(confusion.tnr, '.4f'):>18s}"),
    ]
    return "\n".join(lines)


def format_coverage_curve(points: Sequence[CoveragePoint],
                          title: str = "Figure 1: coverage vs time bin"
                          ) -> str:
    """Render the Figure 1 temporal-precision/coverage trade-off."""
    lines = [title,
             f"  {'bin (min)':>10s}{'measurable':>12s}{'total':>9s}"
             f"{'coverage':>10s}  "]
    for point in points:
        bar = "#" * int(round(point.coverage * 40))
        lines.append(
            f"  {point.bin_seconds / 60.0:>10.0f}"
            f"{point.measurable_blocks:>12d}{point.total_blocks:>9d}"
            f"{point.coverage:>9.1%}  {bar}")
    return "\n".join(lines)


def format_outage_rates(reports: Sequence[OutageRateReport],
                        title: str = "Figure 2a: outage rate, IPv4 vs IPv6"
                        ) -> str:
    """Render the Figure 2a measurable-blocks / outage-rate comparison."""
    lines = [title,
             f"  {'family':>8s}{'measurable':>12s}{'with outage':>13s}"
             f"{'rate':>8s}   (outage >= "
             f"{reports[0].min_outage_seconds / 60.0:.0f} min)"]
    for report in reports:
        lines.append(
            f"  {report.family_name:>8s}{report.measurable_blocks:>12d}"
            f"{report.blocks_with_outage:>13d}{report.outage_rate:>7.1%}")
    return "\n".join(lines)


def format_prior_coverage(reports: Sequence[PriorCoverageReport],
                          title: str = "Figure 2b: coverage vs best prior "
                                       "system") -> str:
    """Render the Figure 2b coverage-fraction comparison."""
    lines = [title,
             f"  {'family':>8s}{'ours':>10s}{'prior system':>16s}"
             f"{'prior':>10s}{'fraction':>10s}"]
    for report in reports:
        lines.append(
            f"  {report.family_name:>8s}{report.our_blocks:>10d}"
            f"{report.prior_system:>16s}{report.prior_blocks:>10d}"
            f"{report.fraction_of_prior:>9.1%}")
    return "\n".join(lines)


def ascii_bar_chart(labels: Sequence[str], values: Sequence[float],
                    width: int = 40, value_format: str = ".3f") -> str:
    """Generic horizontal bar chart for examples and benches."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"  {label:<{label_width}s} "
                     f"{value:{value_format}} {bar}")
    return "\n".join(lines)

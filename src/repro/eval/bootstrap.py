"""Block-bootstrap confidence intervals for evaluation metrics.

A single simulated (or measured) day yields point estimates of
precision/recall/TNR; resampling *blocks* with replacement quantifies
how much those estimates depend on which blocks happened to fail.
Blocks — not seconds — are the exchangeable unit: outage seconds within
one block are strongly dependent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..timeline import Timeline
from .confusion import confusion_for_block

__all__ = ["MetricInterval", "bootstrap_confusion"]


@dataclass(frozen=True)
class MetricInterval:
    """A point estimate with a percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return (f"{self.estimate:.4f} "
                f"[{self.low:.4f}, {self.high:.4f}]"
                f"@{self.confidence:.0%}")

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_confusion(
    observed: Mapping[int, Timeline],
    truth: Mapping[int, Timeline],
    replicates: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> Dict[str, MetricInterval]:
    """Bootstrap precision/recall/TNR over blocks.

    Returns intervals for ``precision``, ``recall``, and ``tnr``.
    Per-block confusion cells are computed once; each replicate is a
    cheap resampled sum, so 500 replicates over thousands of blocks run
    in milliseconds.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    keys = sorted(set(observed) & set(truth))
    if not keys:
        raise ValueError("no blocks common to both mappings")

    cells = np.array([confusion_for_block(observed[key],
                                          truth[key]).as_tuple()
                      for key in keys])  # (n_blocks, 4): ta, fa, fo, to

    def metrics_of(matrix: np.ndarray) -> Tuple[float, float, float]:
        ta, fa, fo, to = matrix.sum(axis=0)
        precision = ta / (ta + fa) if ta + fa else 0.0
        recall = ta / (ta + fo) if ta + fo else 0.0
        tnr = to / (to + fa) if to + fa else 0.0
        return precision, recall, tnr

    point = metrics_of(cells)
    rng = np.random.default_rng(seed)
    samples = np.empty((replicates, 3))
    n_blocks = len(keys)
    for replicate in range(replicates):
        chosen = rng.integers(0, n_blocks, size=n_blocks)
        samples[replicate] = metrics_of(cells[chosen])

    alpha = (1.0 - confidence) / 2.0
    intervals: Dict[str, MetricInterval] = {}
    for column, name in enumerate(("precision", "recall", "tnr")):
        low, high = np.quantile(samples[:, column], [alpha, 1.0 - alpha])
        intervals[name] = MetricInterval(
            estimate=point[column], low=float(low), high=float(high),
            confidence=confidence)
    return intervals

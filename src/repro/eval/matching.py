"""Event-based comparison (paper Table 3).

For short outages, second-weighted scoring is dominated by timing
imprecision: RIPE-style sampling carries ±180 s of edge uncertainty,
which is most of a 300-second outage.  The paper therefore compares
short outages *by events* "to factor out imprecision in timing".

:func:`match_events` pairs outage events across two systems: events
match when they overlap within the timing slack.  :func:`event_confusion`
builds a Table 3-style confusion matrix from two matchings:

* **outage events** — matched pairs are ``to`` (true outages); our
  events the ground truth lacks are ``fo`` (false outages); ground-truth
  events we lack are ``fa`` (false availability: we said available
  through a real outage);
* **availability events** — the up segments between outages, matched
  the same way; matched pairs are ``ta``.

Precision = ta/(ta+fa), recall = ta/(ta+fo) and TNR = to/(to+fa) then
carry exactly the paper's semantics, with event counts instead of
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from ..timeline import OutageEvent, Timeline
from .confusion import Confusion

__all__ = ["event_confusion", "event_confusion_for_population",
           "match_events", "MatchResult"]


@dataclass
class MatchResult:
    """Outcome of pairing detected events against truth events."""

    matched: List[Tuple[OutageEvent, OutageEvent]]
    unmatched_detected: List[OutageEvent]
    unmatched_truth: List[OutageEvent]

    @property
    def precision(self) -> float:
        total = len(self.matched) + len(self.unmatched_detected)
        return len(self.matched) / total if total else 0.0

    @property
    def recall(self) -> float:
        total = len(self.matched) + len(self.unmatched_truth)
        return len(self.matched) / total if total else 0.0

    def start_errors(self) -> List[float]:
        """Signed detected-minus-truth start offsets of matched pairs."""
        return [detected.start - truth.start
                for detected, truth in self.matched]


def match_events(detected: Sequence[OutageEvent],
                 truth: Sequence[OutageEvent],
                 slack: float = 180.0) -> MatchResult:
    """Greedily pair detected and truth outage events.

    Events pair when they overlap within ``slack``; each truth event
    takes the earliest unconsumed detected event, so one detected event
    never satisfies two truth events.
    """
    remaining = sorted(detected)
    matched: List[Tuple[OutageEvent, OutageEvent]] = []
    unmatched_truth: List[OutageEvent] = []
    for truth_event in sorted(truth):
        hit_index = next(
            (index for index, candidate in enumerate(remaining)
             if candidate.overlaps(truth_event, slack)), None)
        if hit_index is None:
            unmatched_truth.append(truth_event)
        else:
            matched.append((remaining.pop(hit_index), truth_event))
    return MatchResult(matched=matched, unmatched_detected=remaining,
                       unmatched_truth=unmatched_truth)


def _up_events(timeline: Timeline) -> List[OutageEvent]:
    """Availability segments of a timeline, as events."""
    return [OutageEvent(start, end) for start, end in timeline.up_intervals]


def event_confusion(observed: Timeline, truth: Timeline,
                    slack: float = 180.0,
                    min_event_seconds: float = 0.0) -> Confusion:
    """Event-counted confusion between one block's two timelines.

    ``min_event_seconds`` drops outage events below a duration floor on
    both sides before matching (e.g. 300 to compare only >= 5-minute
    events, as Table 3 does).
    """
    start = max(observed.start, truth.start)
    end = min(observed.end, truth.end)
    if end <= start:
        return Confusion()
    observed = observed.clip(start, end)
    truth = truth.clip(start, end)

    outage_match = match_events(observed.events(min_event_seconds),
                                truth.events(min_event_seconds), slack)
    availability_match = match_events(_up_events(observed),
                                      _up_events(truth), slack)
    return Confusion(
        ta=len(availability_match.matched),
        fa=len(outage_match.unmatched_truth),
        fo=len(outage_match.unmatched_detected),
        to=len(outage_match.matched),
    )


def event_confusion_for_population(
    observed: Mapping[int, Timeline],
    truth: Mapping[int, Timeline],
    slack: float = 180.0,
    min_event_seconds: float = 0.0,
) -> Confusion:
    """Sum event confusions over the blocks both systems cover."""
    accumulated = Confusion()
    for key in sorted(set(observed) & set(truth)):
        accumulated += event_confusion(observed[key], truth[key], slack,
                                       min_event_seconds)
    return accumulated

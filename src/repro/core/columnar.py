"""Columnar cohort layout for the streaming belief engine.

The scalar streaming detector closes bins one Python object at a time:
every ``_close_bin`` call runs ~20 scalar numpy operations per block.
At population scale (the paper judges hundreds of thousands of /24s)
the per-bin hot path must be a batched array operation — Trinocular's
Bayesian rounds and Chocolatine's telescope-scale streaming both hinge
on this.  This module holds the *data layout* and the *vectorised
update kernels*; :class:`~repro.core.detector.StreamingDetector` owns
the orchestration (which members close when, quarantine, hot swaps).

Design contract — scalar is the oracle, columnar is the engine:

* Close *scheduling* is untouched.  Per-packet catch-up still closes a
  lagging block's bins scalar, and ``advance(now)`` closes the same
  bins at the same boundaries the scalar loop would.  Only the *math*
  of simultaneous closes is batched, so audits, hot-swap boundaries,
  checkpoints, and partition splits observe bit-identical state.
* Every array expression replicates the scalar float operations of
  :meth:`repro.core.belief.BeliefState.update` (and the fused path's
  :func:`~repro.core.belief.bin_log_likelihood_ratio` /
  :func:`~repro.core.belief.fused_posterior`) in the same order; numpy
  ufuncs produce bitwise-identical results for array and scalar
  operands, which the property suite pins.
* A member whose history or likelihood spec could make the scalar path
  *raise* (non-finite summary, malformed profile) is excluded from its
  cohort at build time and processed by the scalar loop in insertion
  order, so quarantine order and dead-letter messages stay identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .belief import BELIEF_CEIL, BELIEF_FLOOR, _COUNT_RATIO_CAP, _PROB_EPS
from .history import DIURNAL_SLOTS

__all__ = ["Cohort", "build_cohorts", "diurnal_p_empty",
           "columnar_update", "columnar_fused_posterior",
           "columnar_llr", "history_is_clean"]


def history_is_clean(history: Any) -> bool:
    """True when the scalar likelihood math over ``history`` cannot
    raise or produce non-finite evidence — the admission test for a
    cohort.  Anything suspicious keeps the scalar path (and with it the
    exact exception type, message, and quarantine order)."""
    try:
        if not (np.isfinite(history.mean_rate)
                and np.isfinite(history.burstiness)):
            return False
        profile = history.diurnal_profile
        if profile is not None:
            profile = np.asarray(profile, dtype=float)
            if profile.shape != (DIURNAL_SLOTS,):
                return False
            if not np.isfinite(profile).all():
                return False
        weekly = history.weekly_profile
        if weekly is not None:
            weekly = np.asarray(weekly, dtype=float)
            if weekly.shape != (7,):
                return False
            if not np.isfinite(weekly).all():
                return False
    except Exception:
        return False
    return True


@dataclass
class Cohort:
    """One parameter group's contiguous arrays (static per member).

    ``states`` hold direct references to the detector's per-block
    state objects — the detector's dicts stay authoritative; the
    cohort only caches what does not change between hot swaps.
    Per-close values (belief, counts, ``next_bin_end``) are gathered
    fresh at each boundary, so packet-driven scalar closes never
    invalidate the cohort.
    """

    bin_seconds: float
    keys: List[int]
    states: List[Any]
    # -- belief-update parameter columns (one row per member) --------
    p_empty_up: np.ndarray
    noise_nonempty: np.ndarray
    prior_down: np.ndarray
    prior_up_recovery: np.ndarray
    down_threshold: np.ndarray
    up_threshold: np.ndarray
    # -- diurnal likelihood rows -------------------------------------
    has_diurnal: np.ndarray
    mean_rate: np.ndarray
    rate_denominator: np.ndarray
    diurnal: np.ndarray   # (n, 24) shrunk factors; 1.0 where flat
    weekly: np.ndarray    # (n, 7) shrunk factors; 1.0 where flat
    #: subclass payload (the fused engine parks per-source likelihood
    #: columns and the roster signature here).
    extras: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.keys)


def _shrink(profile: np.ndarray) -> np.ndarray:
    """The likelihood shrinkage of ``BlockHistory.likelihood_rate_at``:
    below-average slots at face value, above-average slots shrunk
    toward the mean (same float ops, evaluated as an array)."""
    return np.where(profile < 1.0, profile, 0.75 * profile + 0.25)


def build_cohorts(entries: List[Tuple[Any, int, Any]],
                  ) -> List[Cohort]:
    """Group ``(signature, key, state)`` rows into cohorts.

    ``entries`` must be in the detector's insertion order; grouping is
    stable so member order inside a cohort matches it.
    """
    grouped: Dict[Any, List[Tuple[int, Any]]] = {}
    for signature, key, state in entries:
        grouped.setdefault(signature, []).append((key, state))
    cohorts: List[Cohort] = []
    for signature, members in grouped.items():
        keys = [key for key, _ in members]
        states = [state for _, state in members]
        n = len(states)
        params = [state.params for state in states]
        has_diurnal = np.array(
            [state.history.diurnal_profile is not None
             for state in states], dtype=bool)
        diurnal = np.ones((n, DIURNAL_SLOTS))
        weekly = np.ones((n, 7))
        for row, state in enumerate(states):
            history = state.history
            if history.diurnal_profile is not None:
                diurnal[row] = _shrink(
                    np.asarray(history.diurnal_profile, dtype=float))
                if history.weekly_profile is not None:
                    weekly[row] = _shrink(
                        np.asarray(history.weekly_profile, dtype=float))
        burstiness = np.array(
            [state.history.burstiness for state in states], dtype=float)
        cohorts.append(Cohort(
            bin_seconds=float(states[0].params.bin_seconds),
            keys=keys,
            states=states,
            p_empty_up=np.array([p.p_empty_up for p in params]),
            noise_nonempty=np.array([p.noise_nonempty for p in params]),
            prior_down=np.array([p.prior_down for p in params]),
            prior_up_recovery=np.array(
                [p.prior_up_recovery for p in params]),
            down_threshold=np.array([p.down_threshold for p in params]),
            up_threshold=np.array([p.up_threshold for p in params]),
            has_diurnal=has_diurnal,
            mean_rate=np.array(
                [state.history.mean_rate for state in states], dtype=float),
            rate_denominator=np.maximum(1.0, np.sqrt(burstiness)),
            diurnal=diurnal,
            weekly=weekly,
        ))
    return cohorts


def diurnal_p_empty(cohort: Cohort, rows: np.ndarray,
                    bin_start: float) -> np.ndarray:
    """Per-member P(empty bin | up) for the bin starting at
    ``bin_start`` — ``empty_bin_probability_at`` over the selected
    rows, with the tuned ``p_empty_up`` for members without a diurnal
    profile (exactly the scalar detector's ``_update_belief`` choice).
    """
    hour = int((bin_start % 86400.0) // 3600.0) % DIURNAL_SLOTS
    day = int((bin_start % (7 * 86400.0)) // 86400.0) % 7
    factor = cohort.diurnal[rows, hour] * cohort.weekly[rows, day]
    rate = (cohort.mean_rate[rows] * factor) / cohort.rate_denominator[rows]
    from_profile = np.exp(-rate * cohort.bin_seconds)
    return np.where(cohort.has_diurnal[rows], from_profile,
                    cohort.p_empty_up[rows])


def columnar_update(belief: np.ndarray, is_up: np.ndarray,
                    counts: np.ndarray, p_empty: np.ndarray,
                    noise_nonempty: np.ndarray, prior_down: np.ndarray,
                    prior_up_recovery: np.ndarray,
                    down_threshold: np.ndarray,
                    up_threshold: np.ndarray,
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :meth:`BeliefState.update` over one cohort boundary.

    Streaming counts are always finite non-negative ints, so the
    no-evidence branch of the scalar update is unreachable here; every
    other branch is replicated operation-for-operation.  Returns
    ``(new_belief, new_up, guardrail_trips)``.
    """
    degenerate = (p_empty <= 0.0) | (p_empty >= 1.0)
    # The scalar oracle clamps ONLY the degenerate rows — an in-range
    # p_empty is consumed at face value, however tiny, so the clamp
    # must not touch it (that was this PR's audited divergence).
    p = np.where(degenerate,
                 np.minimum(np.maximum(p_empty, _PROB_EPS),
                            1.0 - _PROB_EPS),
                 p_empty)
    predicted = (belief * (1.0 - prior_down)
                 + (1.0 - belief) * prior_up_recovery)
    empty = counts == 0
    likelihood_up = np.where(empty, p, np.maximum(1.0 - p, 1e-3))
    with np.errstate(over="ignore", under="ignore"):
        discount = np.maximum(8.0 ** -(counts - 1),
                              1.0 / _COUNT_RATIO_CAP)
    likelihood_down = np.where(empty, 1.0 - noise_nonempty,
                               noise_nonempty * discount)
    numerator = predicted * likelihood_up
    denominator = numerator + (1.0 - predicted) * likelihood_down
    with np.errstate(divide="ignore", invalid="ignore"):
        updated = np.where(denominator > 0,
                           numerator / np.where(denominator > 0,
                                                denominator, 1.0),
                           predicted)
    updated = np.clip(updated, BELIEF_FLOOR, BELIEF_CEIL)
    new_up = np.where(is_up, updated > down_threshold,
                      updated >= up_threshold)
    return updated, new_up, degenerate.astype(np.int64)


def columnar_llr(counts: np.ndarray, p_empty: np.ndarray,
                 noise_nonempty: np.ndarray) -> np.ndarray:
    """Vectorised :func:`bin_log_likelihood_ratio` (finite inputs).

    Callers guarantee finite likelihood parameters and non-negative
    integer counts (cohort admission does), so the raise/no-evidence
    branches of the scalar form are unreachable.
    """
    p = np.minimum(np.maximum(p_empty, _PROB_EPS), 1.0 - _PROB_EPS)
    noise = np.minimum(np.maximum(noise_nonempty, _PROB_EPS),
                       1.0 - _PROB_EPS)
    empty = counts == 0
    with np.errstate(over="ignore", under="ignore"):
        discount = np.maximum(8.0 ** -(counts - 1),
                              1.0 / _COUNT_RATIO_CAP)
    return np.where(
        empty,
        np.log(p) - np.log(1.0 - noise),
        np.log(np.maximum(1.0 - p, 1e-3)) - np.log(noise * discount))


def columnar_fused_posterior(belief: np.ndarray, is_up: np.ndarray,
                             weighted_llr: np.ndarray,
                             prior_down: np.ndarray,
                             prior_up_recovery: np.ndarray,
                             down_threshold: np.ndarray,
                             up_threshold: np.ndarray,
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`fused_posterior` + the fused hysteresis step.

    Returns ``(posterior, new_up)``; the fused path trips no
    guardrails (its clamps are silent, matching the scalar form).
    """
    predicted = (belief * (1.0 - prior_down)
                 + (1.0 - belief) * prior_up_recovery)
    predicted = np.minimum(np.maximum(predicted, BELIEF_FLOOR),
                           BELIEF_CEIL)
    log_odds = np.log(predicted) - np.log1p(-predicted) + weighted_llr
    posterior = 1.0 / (1.0 + np.exp(-log_odds))
    posterior = np.clip(posterior, BELIEF_FLOOR, BELIEF_CEIL)
    new_up = np.where(is_up, posterior > down_threshold,
                      posterior >= up_threshold)
    return posterior, new_up

"""Corroborating outage signals across sources and neighbours.

The poster: "when possible, we correlate multiple signals from the same
region to corroborate results."  Two fusion mechanisms:

* **belief fusion** — when several passive vantage points each maintain
  a belief about the same block, their evidence combines in log-odds
  space (independent-observation assumption), sharpening marginal
  signals;
* **event corroboration** — an outage event reported for a block gains
  confidence when overlapping events appear for sibling blocks (same
  supernet) or for the same block at other sources, which is how a
  regional event is distinguished from a single flaky resolver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..net.blocks import supernet_key
from ..timeline import OutageEvent, Timeline
from .belief import BELIEF_CEIL, BELIEF_FLOOR
from .health import BlockDataError

__all__ = ["fuse_beliefs", "fuse_timelines", "CorroboratedEvent",
           "corroborate_events"]


def _source_label(sources: Optional[Sequence[str]], index: int) -> str:
    if sources is not None and index < len(sources):
        return repr(sources[index])
    return f"source[{index}]"


def fuse_beliefs(belief_traces: Sequence[np.ndarray],
                 prior: float = 0.99,
                 sources: Optional[Sequence[str]] = None) -> np.ndarray:
    """Fuse aligned belief trajectories from independent sources.

    Each trace is P(up | that source's data).  Under independent
    observations with a shared prior, the fused posterior's log-odds is
    ``sum(logodds(b_i)) - (n-1) * logodds(prior)``.

    A trace whose length disagrees with the first, or that carries
    NaN/inf probabilities, raises :class:`BlockDataError` naming the
    offending source (pass ``sources`` for real vantage names):
    corrupt evidence from one vantage must be quarantined at its
    source, never silently folded into every verdict downstream.
    """
    if not belief_traces:
        raise ValueError("need at least one belief trace")
    if not (np.isfinite(prior) and 0.0 < prior < 1.0):
        raise ValueError(f"prior must be a probability in (0, 1), "
                         f"got {prior!r}")
    traces = [np.asarray(trace, dtype=float) for trace in belief_traces]
    expected = traces[0].shape
    for index, trace in enumerate(traces):
        label = _source_label(sources, index)
        if trace.ndim != 1:
            raise BlockDataError(
                f"belief trace from {label} must be 1-d, "
                f"got shape {trace.shape}")
        if trace.shape != expected:
            raise BlockDataError(
                f"belief trace from {label} has {trace.shape[0]} "
                f"samples where {_source_label(sources, 0)} has "
                f"{expected[0]}; traces must share one evaluation grid")
        if not np.isfinite(trace).all():
            bad = int(np.flatnonzero(~np.isfinite(trace))[0])
            raise BlockDataError(
                f"belief trace from {label} has a non-finite "
                f"probability at sample {bad} ({trace[bad]!r})")
    stacked = np.clip(np.vstack(traces), BELIEF_FLOOR, BELIEF_CEIL)
    log_odds = np.log(stacked / (1.0 - stacked)).sum(axis=0)
    prior_odds = np.log(prior / (1.0 - prior))
    log_odds -= (stacked.shape[0] - 1) * prior_odds
    fused = 1.0 / (1.0 + np.exp(-log_odds))
    return np.clip(fused, BELIEF_FLOOR, BELIEF_CEIL)


def fuse_timelines(timelines: Sequence[Timeline],
                   quorum: int = 0,
                   sources: Optional[Sequence[str]] = None) -> Timeline:
    """Combine per-source timelines: down where >= ``quorum`` agree.

    ``quorum`` defaults to a majority.  With quorum 1 this is the union
    (most sensitive); with ``len(timelines)`` the intersection (most
    specific).

    Timelines must cover one shared span with finite interval edges; a
    violation raises :class:`BlockDataError` naming the offending
    source, since a mis-spanned timeline would silently dilute (or
    inflate) every vote on the mismatched stretch.
    """
    if not timelines:
        raise ValueError("need at least one timeline")
    first = timelines[0]
    for index, timeline in enumerate(timelines):
        label = _source_label(sources, index)
        if (timeline.start, timeline.end) != (first.start, first.end):
            raise BlockDataError(
                f"timeline from {label} spans "
                f"[{timeline.start}, {timeline.end}] where "
                f"{_source_label(sources, 0)} spans "
                f"[{first.start}, {first.end}]; fusion needs one "
                f"shared span")
        for left, right in timeline.down_intervals:
            if not (np.isfinite(left) and np.isfinite(right)):
                raise BlockDataError(
                    f"timeline from {label} has a non-finite down "
                    f"interval ({left!r}, {right!r})")
    if quorum <= 0:
        quorum = len(timelines) // 2 + 1
    quorum = min(quorum, len(timelines))
    edges = sorted({first.start, first.end} | {
        edge
        for timeline in timelines
        for interval in timeline.down_intervals
        for edge in interval
    })
    down: List[Tuple[float, float]] = []
    for left, right in zip(edges, edges[1:]):
        middle = 0.5 * (left + right)
        votes = sum(not t.is_up_at(middle) for t in timelines)
        if votes >= quorum:
            down.append((left, right))
    return Timeline(first.start, first.end, down)


@dataclass(frozen=True)
class CorroboratedEvent:
    """An outage event annotated with how many witnesses back it."""

    key: int
    event: OutageEvent
    witnesses: int

    @property
    def corroborated(self) -> bool:
        return self.witnesses > 0


def corroborate_events(
    events_by_block: Mapping[int, Sequence[OutageEvent]],
    levels: int = 4,
    slack: float = 300.0,
) -> List[CorroboratedEvent]:
    """Count sibling witnesses for every reported event.

    Two blocks are siblings when they share a supernet ``levels`` bits
    up; an event is witnessed by a sibling's event when the two overlap
    within ``slack`` seconds.  A regional outage lights up many siblings
    at once; a lone flapping resolver does not.
    """
    by_super: Dict[int, List[Tuple[int, OutageEvent]]] = {}
    for key, events in events_by_block.items():
        super_key = supernet_key(int(key), levels)
        bucket = by_super.setdefault(super_key, [])
        for event in events:
            bucket.append((int(key), event))

    corroborated: List[CorroboratedEvent] = []
    for key, events in events_by_block.items():
        super_key = supernet_key(int(key), levels)
        neighbours = by_super.get(super_key, [])
        for event in events:
            witnesses = sum(
                1 for other_key, other_event in neighbours
                if other_key != int(key) and event.overlaps(other_event, slack))
            corroborated.append(
                CorroboratedEvent(int(key), event, witnesses))
    return corroborated

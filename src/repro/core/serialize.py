"""Persistence for trained models.

A deployed detector trains on yesterday and detects today; retraining
from raw captures on every restart is wasteful, so trained models
(histories + tuned parameters) serialise to a single JSON document.
JSON is chosen over pickle deliberately: the model is configuration-like
data an operator may want to inspect or diff, and loading it must be
safe regardless of provenance.

The format is versioned; loaders reject documents from future versions
rather than misreading them.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, IO, Union

import numpy as np

from ..net.addr import Family
from ..timeline import Timeline
from .detector import BlockResult
from .history import BlockHistory
from .parameters import BlockParameters
from .pipeline import TrainedModel

__all__ = ["MODEL_FORMAT_VERSION", "ModelFormatError", "atomic_write_text",
           "model_to_json", "model_from_json", "save_model", "load_model",
           "timeline_to_dict", "timeline_from_dict",
           "block_result_to_dict", "block_result_from_dict",
           "model_blocks_to_dict", "model_blocks_from_dict"]


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    A crash at any point leaves either the old file or the new file,
    never a torn mix: the text is flushed and fsynced to a temporary
    sibling first, then moved over the target with :func:`os.replace`
    (atomic within a filesystem).  The temp file is removed on failure.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise

MODEL_FORMAT_VERSION = 1


class ModelFormatError(ValueError):
    """Raised when a model document is malformed or from a newer format."""


def _history_to_dict(history: BlockHistory) -> Dict[str, Any]:
    return {
        "mean_rate": history.mean_rate,
        "observed_count": history.observed_count,
        "training_seconds": history.training_seconds,
        "median_gap": history.median_gap,
        "p95_gap": history.p95_gap,
        "max_gap": history.max_gap,
        "burstiness": history.burstiness,
        "diurnal_profile": (None if history.diurnal_profile is None
                            else [float(x) for x in history.diurnal_profile]),
        "weekly_profile": (None if history.weekly_profile is None
                           else [float(x) for x in history.weekly_profile]),
    }


def _history_from_dict(data: Dict[str, Any]) -> BlockHistory:
    profile = data.get("diurnal_profile")
    weekly = data.get("weekly_profile")
    return BlockHistory(
        mean_rate=float(data["mean_rate"]),
        observed_count=int(data["observed_count"]),
        training_seconds=float(data["training_seconds"]),
        median_gap=float(data["median_gap"]),
        p95_gap=float(data["p95_gap"]),
        max_gap=float(data.get("max_gap", 0.0)),
        burstiness=float(data.get("burstiness", 1.0)),
        diurnal_profile=(None if profile is None
                         else np.asarray(profile, dtype=float)),
        weekly_profile=(None if weekly is None
                        else np.asarray(weekly, dtype=float)),
    )


def _parameters_to_dict(params: BlockParameters) -> Dict[str, Any]:
    return {
        "bin_seconds": params.bin_seconds,
        "p_empty_up": params.p_empty_up,
        "noise_nonempty": params.noise_nonempty,
        "prior_down": params.prior_down,
        "prior_up_recovery": params.prior_up_recovery,
        "down_threshold": params.down_threshold,
        "up_threshold": params.up_threshold,
        "measurable": params.measurable,
        # JSON has no Infinity in strict mode; None means "disabled".
        "gap_threshold_seconds": (
            None if not np.isfinite(params.gap_threshold_seconds)
            else params.gap_threshold_seconds),
    }


def _parameters_from_dict(data: Dict[str, Any]) -> BlockParameters:
    gap = data.get("gap_threshold_seconds")
    fields = {
        "bin_seconds": float(data["bin_seconds"]),
        "p_empty_up": float(data["p_empty_up"]),
        "noise_nonempty": float(data["noise_nonempty"]),
        "prior_down": float(data["prior_down"]),
        "prior_up_recovery": float(data["prior_up_recovery"]),
        "down_threshold": float(data["down_threshold"]),
        "up_threshold": float(data["up_threshold"]),
        "measurable": bool(data["measurable"]),
        "gap_threshold_seconds": (float("inf") if gap is None
                                  else float(gap)),
    }
    try:
        return BlockParameters(**fields)
    except ValueError:
        # Wire faithfulness beats eager validation: a degenerate
        # parameter set (bit-flipped checkpoint, fault injection) must
        # cross a worker boundary reproducing the in-memory object
        # exactly, or the sharded path diverges from the sequential
        # one.  The detector's numerical guardrails — not the
        # deserialiser — are the enforcement point for bad parameters,
        # and they quarantine per block instead of crashing the load.
        params = object.__new__(BlockParameters)
        for name, value in fields.items():
            object.__setattr__(params, name, value)
        return params


def model_blocks_to_dict(histories: Dict[int, BlockHistory],
                         parameters: Dict[int, BlockParameters],
                         ) -> Dict[str, Any]:
    """Per-block model state (history + parameters) as JSON-able dicts.

    The shared wire shape of the model file's ``blocks`` section and of
    a parallel train-shard result: string keys (JSON objects cannot key
    on ints) in sorted-key order for determinism.
    """
    return {
        str(key): {
            "history": _history_to_dict(histories[key]),
            "parameters": _parameters_to_dict(parameters[key]),
        }
        for key in sorted(histories)
    }


def model_blocks_from_dict(data: Dict[str, Any],
                           ) -> "tuple[Dict[int, BlockHistory], Dict[int, BlockParameters]]":
    """Inverse of :func:`model_blocks_to_dict`."""
    histories: Dict[int, BlockHistory] = {}
    parameters: Dict[int, BlockParameters] = {}
    for key_text, entry in data.items():
        key = int(key_text)
        histories[key] = _history_from_dict(entry["history"])
        parameters[key] = _parameters_from_dict(entry["parameters"])
    return histories, parameters


def timeline_to_dict(timeline: Timeline) -> Dict[str, Any]:
    """A timeline as span plus down intervals (floats round-trip exactly)."""
    return {
        "start": timeline.start,
        "end": timeline.end,
        "down": [[s, e] for s, e in timeline.down_intervals],
    }


def timeline_from_dict(data: Dict[str, Any]) -> Timeline:
    return Timeline(float(data["start"]), float(data["end"]),
                    [(float(s), float(e)) for s, e in data["down"]])


def block_result_to_dict(result: BlockResult) -> Dict[str, Any]:
    """One block's detection result as a JSON-able dict.

    This is the worker-result wire format of the parallel pipeline:
    everything a :class:`~repro.core.detector.BlockResult` holds,
    self-contained (parameters and history inline) so the parent can
    rebuild the result without consulting worker state.  Python floats
    survive JSON bit-for-bit (repr round-trip), which is what makes the
    sharded path's merge byte-identical to the sequential one.
    """
    return {
        "key": result.key,
        "family": int(result.family),
        "params": _parameters_to_dict(result.params),
        "history": _history_to_dict(result.history),
        "timeline": timeline_to_dict(result.timeline),
        "coarse_timeline": timeline_to_dict(result.coarse_timeline),
        "belief_trace": (None if result.belief_trace is None
                         else [float(x) for x in result.belief_trace]),
        "quarantined": [[s, e] for s, e in result.quarantined],
    }


def block_result_from_dict(data: Dict[str, Any]) -> BlockResult:
    """Inverse of :func:`block_result_to_dict`."""
    trace = data.get("belief_trace")
    return BlockResult(
        key=int(data["key"]),
        family=Family(data["family"]),
        params=_parameters_from_dict(data["params"]),
        history=_history_from_dict(data["history"]),
        timeline=timeline_from_dict(data["timeline"]),
        coarse_timeline=timeline_from_dict(data["coarse_timeline"]),
        belief_trace=(None if trace is None
                      else np.asarray(trace, dtype=float)),
        quarantined=[(float(s), float(e))
                     for s, e in data.get("quarantined", [])],
    )


def model_to_json(model: TrainedModel) -> str:
    """Serialise a trained model to a JSON string."""
    document = {
        "format_version": MODEL_FORMAT_VERSION,
        "family": int(model.family),
        "train_start": model.train_start,
        "train_end": model.train_end,
        "blocks": model_blocks_to_dict(model.histories, model.parameters),
    }
    return json.dumps(document, indent=1)


def model_from_json(text: str) -> TrainedModel:
    """Reconstruct a trained model from :func:`model_to_json` output."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ModelFormatError(f"not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ModelFormatError("model document must be a JSON object")
    version = document.get("format_version")
    if version != MODEL_FORMAT_VERSION:
        raise ModelFormatError(
            f"unsupported model format version {version!r} "
            f"(this build reads {MODEL_FORMAT_VERSION})")
    try:
        family = Family(document["family"])
        histories, parameters = model_blocks_from_dict(document["blocks"])
        return TrainedModel(
            family=family,
            histories=histories,
            parameters=parameters,
            train_start=float(document["train_start"]),
            train_end=float(document["train_end"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ModelFormatError(f"malformed model document: {error}") from None


PathOrFile = Union[str, Path, "IO[str]"]


def save_model(model: TrainedModel, target: PathOrFile) -> None:
    """Write a trained model to a path or text file object.

    Path writes are atomic (see :func:`atomic_write_text`): a process
    killed mid-save leaves the previous model file intact.
    """
    text = model_to_json(model)
    if isinstance(target, (str, Path)):
        atomic_write_text(target, text)
    else:
        target.write(text)


def load_model(source: PathOrFile) -> TrainedModel:
    """Read a trained model from a path or text file object."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = source.read()
    return model_from_json(text)

"""Model-drift detection and rolling retraining.

A trained per-block model ages: providers renumber, resolver
deployments move, traffic engineering shifts rates.  A block whose
*current* healthy traffic no longer matches its trained model produces
either false outages (rate fell) or lost sensitivity (rate rose).
This module watches for that drift and drives rolling retraining — the
operational glue a long-running deployment needs around the paper's
train-once pipeline.

Drift is judged on *up* time only: comparing a day that contains a real
outage against the trained rate would flag every outage as drift, so
the audit first masks the detector's own down intervals.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import (Callable, Deque, Dict, List, Mapping, Optional, Tuple)

import numpy as np

from ..timeline import Timeline, total_duration
from .detector import BlockResult
from .history import BlockHistory, train_history
from .parameters import BlockParameters, ParameterPlanner
from .pipeline import TrainedModel

__all__ = ["DriftVerdict", "BlockDrift", "audit_drift", "refresh_model",
           "RollingRateAuditor", "retune_block"]


class DriftVerdict(enum.Enum):
    """Outcome of a drift audit for one block."""

    STABLE = "stable"
    RATE_ROSE = "rate-rose"
    RATE_FELL = "rate-fell"
    INSUFFICIENT = "insufficient-uptime"


@dataclass(frozen=True)
class BlockDrift:
    """One block's drift measurement."""

    key: int
    trained_rate: float
    observed_rate: float
    up_seconds: float
    verdict: DriftVerdict

    @property
    def ratio(self) -> float:
        """Observed/trained rate (inf when trained rate was zero)."""
        if self.trained_rate == 0:
            return float("inf") if self.observed_rate > 0 else 1.0
        return self.observed_rate / self.trained_rate

    @property
    def needs_retraining(self) -> bool:
        return self.verdict in (DriftVerdict.RATE_ROSE,
                                DriftVerdict.RATE_FELL)


def _observed_up_rate(times: np.ndarray,
                      timeline: Timeline) -> Tuple[float, float]:
    """Arrival rate over the block's detected-up intervals only."""
    up_intervals = timeline.up_intervals
    up_seconds = total_duration(up_intervals)
    if up_seconds <= 0:
        return 0.0, 0.0
    count = 0
    for start, end in up_intervals:
        left = int(np.searchsorted(times, start, side="left"))
        right = int(np.searchsorted(times, end, side="left"))
        count += right - left
    return count / up_seconds, up_seconds


def audit_drift(
    model: TrainedModel,
    results: Mapping[int, BlockResult],
    per_block: Mapping[int, np.ndarray],
    drift_factor: float = 2.0,
    min_up_seconds: float = 4.0 * 3600.0,
    min_arrivals: int = 20,
) -> Dict[int, BlockDrift]:
    """Compare each block's healthy-time rate against its trained rate.

    A block drifts when its observed up-time rate leaves
    ``[trained/drift_factor, trained*drift_factor]``.  The tolerance is
    deliberately wide: normal diurnal and sampling variation must not
    trigger daily retraining churn.
    """
    if drift_factor <= 1.0:
        raise ValueError("drift_factor must exceed 1")
    audits: Dict[int, BlockDrift] = {}
    for key, result in results.items():
        history = model.histories.get(key)
        if history is None:
            continue
        times = np.asarray(per_block.get(key, np.empty(0)), dtype=float)
        observed_rate, up_seconds = _observed_up_rate(times,
                                                      result.timeline)
        observed_count = observed_rate * up_seconds
        if up_seconds < min_up_seconds or observed_count < min_arrivals:
            verdict = DriftVerdict.INSUFFICIENT
        elif observed_rate > history.mean_rate * drift_factor:
            verdict = DriftVerdict.RATE_ROSE
        elif observed_rate < history.mean_rate / drift_factor:
            verdict = DriftVerdict.RATE_FELL
        else:
            verdict = DriftVerdict.STABLE
        audits[key] = BlockDrift(
            key=key,
            trained_rate=history.mean_rate,
            observed_rate=observed_rate,
            up_seconds=up_seconds,
            verdict=verdict,
        )
    return audits


def refresh_model(
    model: TrainedModel,
    audits: Mapping[int, BlockDrift],
    per_block: Mapping[int, np.ndarray],
    window_start: float,
    window_end: float,
    planner: Optional[ParameterPlanner] = None,
    learn_diurnal: bool = True,
) -> Tuple[TrainedModel, List[int]]:
    """Retrain only the drifted blocks on the new window.

    Returns ``(new_model, retrained_keys)``.  Stable blocks keep their
    existing histories and parameters, so a daily refresh touches the
    few blocks that actually moved.
    """
    planner = planner or ParameterPlanner()
    histories: Dict[int, BlockHistory] = dict(model.histories)
    parameters: Dict[int, BlockParameters] = dict(model.parameters)
    retrained: List[int] = []
    for key, audit in audits.items():
        if not audit.needs_retraining:
            continue
        times = per_block.get(key)
        if times is None:
            continue
        history = train_history(times, window_start, window_end,
                                learn_diurnal)
        histories[key] = history
        parameters[key] = planner.plan_block(history)
        retrained.append(key)
    refreshed = TrainedModel(
        family=model.family,
        histories=histories,
        parameters=parameters,
        train_start=model.train_start,
        train_end=window_end,
    )
    return refreshed, sorted(retrained)


def retune_block(times: np.ndarray, window_start: float, window_end: float,
                 planner: Optional[ParameterPlanner] = None,
                 learn_diurnal: bool = True,
                 ) -> Tuple[BlockHistory, BlockParameters]:
    """Re-estimate one block's model from a rolling arrival window.

    The incremental counterpart of :func:`refresh_model`: the live path
    retunes exactly the block that drifted, from exactly the arrivals
    its rolling auditor retained, without touching the rest of the
    population.  Raises :class:`~repro.core.health.BlockDataError` on
    poisoned arrivals, same as batch training.
    """
    planner = planner or ParameterPlanner()
    history = train_history(np.asarray(times, dtype=float),
                            window_start, window_end, learn_diurnal)
    return history, planner.plan_block(history)


class RollingRateAuditor:
    """Streaming drift audit over per-block rolling arrival windows.

    The batch audit (:func:`audit_drift`) needs a finished detection
    window; a live monitor cannot wait for one.  This auditor keeps
    each block's arrivals over the trailing ``window_seconds`` and, at
    every ``audit_every`` boundary, compares the block's rolling rate
    against its trained rate — *only* for blocks that were up for the
    whole trailing window with no transitions in it, the streaming
    analogue of the batch audit's up-time-only masking (a block in or
    near an outage would otherwise flag as drift).

    Deliberately decoupled from the detector: the caller supplies an
    eligibility predicate and the trained rates, so this class owns
    only the arrival bookkeeping and the verdict arithmetic.  State
    round-trips through :meth:`to_dict`/:meth:`from_dict` so a live
    worker's checkpoint can carry it and a restart audits identically.
    """

    def __init__(self, start: float, audit_every: float,
                 window_seconds: Optional[float] = None,
                 drift_factor: float = 2.0,
                 min_arrivals: int = 20) -> None:
        if audit_every <= 0:
            raise ValueError("audit_every must be positive")
        if drift_factor <= 1.0:
            raise ValueError("drift_factor must exceed 1")
        self.audit_every = float(audit_every)
        self.window_seconds = float(window_seconds
                                    if window_seconds else audit_every)
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.drift_factor = float(drift_factor)
        self.min_arrivals = int(min_arrivals)
        self.next_boundary = float(start) + self.audit_every
        self._arrivals: Dict[int, Deque[float]] = {}

    def note(self, key: int, time: float) -> None:
        """Record one arrival for ``key`` (monotone stream order)."""
        queue = self._arrivals.get(key)
        if queue is None:
            queue = deque()
            self._arrivals[key] = queue
        queue.append(float(time))

    def arrivals(self, key: int) -> List[float]:
        """The retained arrivals for one block, oldest first."""
        return list(self._arrivals.get(key, ()))

    def _prune(self, horizon: float) -> None:
        for key in list(self._arrivals):
            queue = self._arrivals[key]
            while queue and queue[0] < horizon:
                queue.popleft()
            if not queue:
                del self._arrivals[key]

    def audit(self, boundary: float,
              eligible: Callable[[int], bool],
              trained_rate: Callable[[int], Optional[float]],
              ) -> Dict[int, BlockDrift]:
        """Drift verdicts at ``boundary`` over ``[boundary - W, boundary)``.

        ``eligible(key)`` must return True only for blocks whose whole
        trailing window was healthy up-time (the caller reads that off
        the detector); ``trained_rate(key)`` returns the model rate or
        None for untracked blocks.  Returns only the blocks that
        *drifted* — stable and ineligible blocks are omitted, keeping
        the hot path allocation-free when nothing moved.  Keys audit in
        sorted order so retune side effects are deterministic.
        """
        window_start = boundary - self.window_seconds
        self._prune(window_start)
        drifted: Dict[int, BlockDrift] = {}
        for key in sorted(self._arrivals):
            queue = self._arrivals[key]
            count = sum(1 for t in queue if t < boundary)
            if count < self.min_arrivals or not eligible(key):
                continue
            rate = trained_rate(key)
            if rate is None or rate <= 0:
                continue
            observed = count / self.window_seconds
            if observed > rate * self.drift_factor:
                verdict = DriftVerdict.RATE_ROSE
            elif observed < rate / self.drift_factor:
                verdict = DriftVerdict.RATE_FELL
            else:
                continue
            drifted[key] = BlockDrift(
                key=key, trained_rate=rate, observed_rate=observed,
                up_seconds=self.window_seconds, verdict=verdict)
        return drifted

    # -- checkpoint support -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "audit_every": self.audit_every,
            "window_seconds": self.window_seconds,
            "drift_factor": self.drift_factor,
            "min_arrivals": self.min_arrivals,
            "next_boundary": self.next_boundary,
            "arrivals": {str(key): list(queue)
                         for key, queue in sorted(self._arrivals.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RollingRateAuditor":
        auditor = cls(
            start=0.0,
            audit_every=float(data["audit_every"]),
            window_seconds=float(data["window_seconds"]),
            drift_factor=float(data["drift_factor"]),
            min_arrivals=int(data["min_arrivals"]))
        auditor.next_boundary = float(data["next_boundary"])
        auditor._arrivals = {
            int(key): deque(float(t) for t in times)
            for key, times in dict(data.get("arrivals", {})).items()}
        return auditor

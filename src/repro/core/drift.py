"""Model-drift detection and rolling retraining.

A trained per-block model ages: providers renumber, resolver
deployments move, traffic engineering shifts rates.  A block whose
*current* healthy traffic no longer matches its trained model produces
either false outages (rate fell) or lost sensitivity (rate rose).
This module watches for that drift and drives rolling retraining — the
operational glue a long-running deployment needs around the paper's
train-once pipeline.

Drift is judged on *up* time only: comparing a day that contains a real
outage against the trained rate would flag every outage as drift, so
the audit first masks the detector's own down intervals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..timeline import Timeline, total_duration
from .detector import BlockResult
from .history import BlockHistory, train_history
from .parameters import BlockParameters, ParameterPlanner
from .pipeline import TrainedModel

__all__ = ["DriftVerdict", "BlockDrift", "audit_drift", "refresh_model"]


class DriftVerdict(enum.Enum):
    """Outcome of a drift audit for one block."""

    STABLE = "stable"
    RATE_ROSE = "rate-rose"
    RATE_FELL = "rate-fell"
    INSUFFICIENT = "insufficient-uptime"


@dataclass(frozen=True)
class BlockDrift:
    """One block's drift measurement."""

    key: int
    trained_rate: float
    observed_rate: float
    up_seconds: float
    verdict: DriftVerdict

    @property
    def ratio(self) -> float:
        """Observed/trained rate (inf when trained rate was zero)."""
        if self.trained_rate == 0:
            return float("inf") if self.observed_rate > 0 else 1.0
        return self.observed_rate / self.trained_rate

    @property
    def needs_retraining(self) -> bool:
        return self.verdict in (DriftVerdict.RATE_ROSE,
                                DriftVerdict.RATE_FELL)


def _observed_up_rate(times: np.ndarray,
                      timeline: Timeline) -> Tuple[float, float]:
    """Arrival rate over the block's detected-up intervals only."""
    up_intervals = timeline.up_intervals
    up_seconds = total_duration(up_intervals)
    if up_seconds <= 0:
        return 0.0, 0.0
    count = 0
    for start, end in up_intervals:
        left = int(np.searchsorted(times, start, side="left"))
        right = int(np.searchsorted(times, end, side="left"))
        count += right - left
    return count / up_seconds, up_seconds


def audit_drift(
    model: TrainedModel,
    results: Mapping[int, BlockResult],
    per_block: Mapping[int, np.ndarray],
    drift_factor: float = 2.0,
    min_up_seconds: float = 4.0 * 3600.0,
    min_arrivals: int = 20,
) -> Dict[int, BlockDrift]:
    """Compare each block's healthy-time rate against its trained rate.

    A block drifts when its observed up-time rate leaves
    ``[trained/drift_factor, trained*drift_factor]``.  The tolerance is
    deliberately wide: normal diurnal and sampling variation must not
    trigger daily retraining churn.
    """
    if drift_factor <= 1.0:
        raise ValueError("drift_factor must exceed 1")
    audits: Dict[int, BlockDrift] = {}
    for key, result in results.items():
        history = model.histories.get(key)
        if history is None:
            continue
        times = np.asarray(per_block.get(key, np.empty(0)), dtype=float)
        observed_rate, up_seconds = _observed_up_rate(times,
                                                      result.timeline)
        observed_count = observed_rate * up_seconds
        if up_seconds < min_up_seconds or observed_count < min_arrivals:
            verdict = DriftVerdict.INSUFFICIENT
        elif observed_rate > history.mean_rate * drift_factor:
            verdict = DriftVerdict.RATE_ROSE
        elif observed_rate < history.mean_rate / drift_factor:
            verdict = DriftVerdict.RATE_FELL
        else:
            verdict = DriftVerdict.STABLE
        audits[key] = BlockDrift(
            key=key,
            trained_rate=history.mean_rate,
            observed_rate=observed_rate,
            up_seconds=up_seconds,
            verdict=verdict,
        )
    return audits


def refresh_model(
    model: TrainedModel,
    audits: Mapping[int, BlockDrift],
    per_block: Mapping[int, np.ndarray],
    window_start: float,
    window_end: float,
    planner: Optional[ParameterPlanner] = None,
    learn_diurnal: bool = True,
) -> Tuple[TrainedModel, List[int]]:
    """Retrain only the drifted blocks on the new window.

    Returns ``(new_model, retrained_keys)``.  Stable blocks keep their
    existing histories and parameters, so a daily refresh touches the
    few blocks that actually moved.
    """
    planner = planner or ParameterPlanner()
    histories: Dict[int, BlockHistory] = dict(model.histories)
    parameters: Dict[int, BlockParameters] = dict(model.parameters)
    retrained: List[int] = []
    for key, audit in audits.items():
        if not audit.needs_retraining:
            continue
        times = per_block.get(key)
        if times is None:
            continue
        history = train_history(times, window_start, window_end,
                                learn_diurnal)
        histories[key] = history
        parameters[key] = planner.plan_block(history)
        retrained.append(key)
    refreshed = TrainedModel(
        family=model.family,
        histories=histories,
        parameters=parameters,
        train_start=model.train_start,
        train_end=window_end,
    )
    return refreshed, sorted(retrained)

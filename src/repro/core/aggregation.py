"""Spatial aggregation: trading spatial precision for coverage.

Blocks too sparse for even the coarsest time bin are not abandoned —
the paper's Figure 1 point is that precision and coverage are a dial.
The temporal half of the dial is the bin ladder
(:mod:`repro.core.parameters`); this module is the spatial half: sibling
unmeasurable blocks are merged under their common supernet (/24 -> /20
for IPv4, /48 -> /44 for IPv6 by default), their arrival streams are
summed, and the supernet is detected as a single coarser unit whose
combined rate often clears the measurability bar.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..net.addr import Family
from ..net.blocks import supernet_key
from ..telescope.aggregate import merge_block_times

__all__ = ["AggregationPlan", "plan_aggregation", "merge_streams_for_plan"]

#: Default number of prefix bits to collapse per aggregation step.
DEFAULT_LEVELS = 4


@dataclass
class AggregationPlan:
    """Mapping from supernet keys to their member (child) block keys.

    ``levels`` records how many prefix bits were collapsed, so a /24
    population with ``levels=4`` yields /20 supernets.  Only supernets
    with at least ``min_members`` children are kept — a singleton
    supernet adds no signal over its lone child.
    """

    family: Family
    child_prefix_len: int
    levels: int
    groups: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def super_prefix_len(self) -> int:
        return self.child_prefix_len - self.levels

    def children_of(self, super_key: int) -> List[int]:
        return self.groups.get(super_key, [])

    def covered_children(self) -> int:
        return sum(len(children) for children in self.groups.values())


def plan_aggregation(
    family: Family,
    keys: Sequence[int],
    levels: int = DEFAULT_LEVELS,
    min_members: int = 2,
    child_prefix_len: int = 0,
) -> AggregationPlan:
    """Group block keys by their ``levels``-bit supernet.

    ``keys`` should be the *unmeasurable* blocks; measurable blocks stay
    at full spatial precision and must not be mixed in (their strong
    signal would mask a sibling's outage).
    """
    if child_prefix_len == 0:
        child_prefix_len = family.default_block_prefix
    if levels <= 0 or levels >= child_prefix_len:
        raise ValueError(f"cannot collapse {levels} bits of a "
                         f"/{child_prefix_len}")
    groups: Dict[int, List[int]] = defaultdict(list)
    for key in keys:
        groups[supernet_key(int(key), levels)].append(int(key))
    kept = {super_key: sorted(children)
            for super_key, children in groups.items()
            if len(children) >= min_members}
    return AggregationPlan(family=family, child_prefix_len=child_prefix_len,
                           levels=levels, groups=kept)


def merge_streams_for_plan(
    plan: AggregationPlan,
    per_block: Mapping[int, np.ndarray],
) -> Dict[int, np.ndarray]:
    """Build each supernet's merged, sorted arrival stream."""
    return {
        super_key: merge_block_times(per_block, children)
        for super_key, children in plan.groups.items()
    }
